//! Deterministic fault injection for checkpoint I/O and serve connections.
//!
//! Crash-safety claims are only as good as the failure modes they were
//! tested against, so every file operation the checkpoint/rotation path
//! performs goes through the [`FileIo`] trait. Production uses [`RealIo`]
//! (plain std::fs plus fsync); tests wrap it in [`ChaosIo`], which counts
//! operations and injects one planned [`Fault`] at a chosen operation
//! index — a torn write, a failed rename, a flipped byte, a short read.
//! With `then_dead` set, every operation after the faulted one also fails,
//! which models a process killed at that exact point. The op index fully
//! determines the failure, so a test can sweep *every* index of a
//! scenario and assert the invariant (e.g. "`LATEST` always resolves to a
//! valid checkpoint") holds at each of them, reproducibly.
//!
//! The connection-side helpers ([`ChaosClient`]) live on the client end:
//! they open a real TCP connection and then misbehave on purpose — send a
//! partial line and stall, trickle bytes with injected latency, or drop
//! the connection mid-request with an RST — so server deadline/shed
//! handling is exercised against genuine socket behaviour.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Duration;

/// One injected failure mode.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Fault {
    /// A write persists only the first `keep` bytes, then errors (torn
    /// write). `keep` is clamped to the payload length.
    TornWrite {
        /// Bytes that reach the disk before the tear.
        keep: usize,
    },
    /// The operation fails cleanly with no on-disk effect.
    FailOp,
    /// The write completes and reports success, but one byte is flipped
    /// (silent corruption). `offset` wraps modulo the payload length.
    BitFlip {
        /// Byte position to corrupt.
        offset: usize,
    },
    /// A read returns only the first `keep` bytes (short read).
    ShortRead {
        /// Bytes the reader sees.
        keep: usize,
    },
}

/// Where and how to fail: the `at_op`-th operation (0-based, counted
/// across all [`FileIo`] calls on the wrapper) suffers `fault`; with
/// `then_dead` every later operation errors too, modelling a crash.
#[derive(Clone, Copy, Debug)]
pub struct FaultPlan {
    /// Operation index that faults.
    pub at_op: usize,
    /// The failure injected there.
    pub fault: Fault,
    /// Treat the fault as a process death: all subsequent ops fail.
    pub then_dead: bool,
}

impl FaultPlan {
    /// A kill at operation `at_op`: the op itself and everything after it
    /// fails with no effect.
    pub fn kill_at(at_op: usize) -> Self {
        FaultPlan {
            at_op,
            fault: Fault::FailOp,
            then_dead: true,
        }
    }

    /// A torn write at `at_op` keeping `keep` bytes, then death.
    pub fn torn_at(at_op: usize, keep: usize) -> Self {
        FaultPlan {
            at_op,
            fault: Fault::TornWrite { keep },
            then_dead: true,
        }
    }
}

/// The file operations the checkpoint path performs. Implementations must
/// make `write` durable (fsync) and `rename` atomic — that contract is
/// what the rotation logic's crash safety is built on.
pub trait FileIo: Send + Sync {
    /// Creates/overwrites `path` with `bytes`, fsynced.
    fn write(&self, path: &Path, bytes: &[u8]) -> std::io::Result<()>;
    /// Atomically renames `from` onto `to` (same directory), syncing the
    /// directory so the rename survives a crash.
    fn rename(&self, from: &Path, to: &Path) -> std::io::Result<()>;
    /// Removes a file (rotation pruning).
    fn remove(&self, path: &Path) -> std::io::Result<()>;
    /// Reads a whole file.
    fn read(&self, path: &Path) -> std::io::Result<Vec<u8>>;
    /// Appends `bytes` to `path` (creating it if absent), fsynced. The
    /// mutation WAL is built on this: a torn append may persist any prefix
    /// of `bytes`, which is exactly the tail state replay must tolerate.
    fn append(&self, path: &Path, bytes: &[u8]) -> std::io::Result<()>;
}

/// The production [`FileIo`]: std::fs with fsync on writes and a parent
/// directory sync after renames (so the new directory entry is durable).
pub struct RealIo;

fn sync_parent_dir(path: &Path) {
    // Directory fsync is best-effort: not every filesystem supports
    // opening a directory for sync (and the data fsync already happened).
    if let Some(parent) = path.parent() {
        let dir = if parent.as_os_str().is_empty() {
            Path::new(".")
        } else {
            parent
        };
        if let Ok(d) = std::fs::File::open(dir) {
            let _ = d.sync_all();
        }
    }
}

impl FileIo for RealIo {
    fn write(&self, path: &Path, bytes: &[u8]) -> std::io::Result<()> {
        let mut f = std::fs::File::create(path)?;
        f.write_all(bytes)?;
        f.sync_all()
    }

    fn rename(&self, from: &Path, to: &Path) -> std::io::Result<()> {
        std::fs::rename(from, to)?;
        sync_parent_dir(to);
        Ok(())
    }

    fn remove(&self, path: &Path) -> std::io::Result<()> {
        std::fs::remove_file(path)
    }

    fn read(&self, path: &Path) -> std::io::Result<Vec<u8>> {
        std::fs::read(path)
    }

    fn append(&self, path: &Path, bytes: &[u8]) -> std::io::Result<()> {
        let mut f = std::fs::OpenOptions::new()
            .append(true)
            .create(true)
            .open(path)?;
        f.write_all(bytes)?;
        f.sync_all()
    }
}

fn chaos_err(what: &str) -> std::io::Error {
    std::io::Error::new(std::io::ErrorKind::Interrupted, format!("chaos: {what}"))
}

enum Decision {
    Clean,
    Fault(Fault),
    Dead,
}

/// A [`FileIo`] wrapper that counts operations and injects one planned
/// fault deterministically. See the module docs for the model.
pub struct ChaosIo {
    plan: Option<FaultPlan>,
    ops: AtomicUsize,
}

impl ChaosIo {
    /// Injects `plan` over the real filesystem.
    pub fn with_plan(plan: FaultPlan) -> Self {
        ChaosIo {
            plan: Some(plan),
            ops: AtomicUsize::new(0),
        }
    }

    /// No faults — counts operations, so a clean run measures how many
    /// injection indices a sweep must cover.
    pub fn counting() -> Self {
        ChaosIo {
            plan: None,
            ops: AtomicUsize::new(0),
        }
    }

    /// Operations performed (including faulted ones) so far.
    pub fn ops(&self) -> usize {
        self.ops.load(Ordering::SeqCst)
    }

    fn decide(&self) -> Decision {
        let idx = self.ops.fetch_add(1, Ordering::SeqCst);
        match &self.plan {
            None => Decision::Clean,
            Some(p) if idx < p.at_op => Decision::Clean,
            Some(p) if idx == p.at_op => Decision::Fault(p.fault),
            Some(p) if p.then_dead => Decision::Dead,
            Some(_) => Decision::Clean,
        }
    }
}

impl FileIo for ChaosIo {
    fn write(&self, path: &Path, bytes: &[u8]) -> std::io::Result<()> {
        match self.decide() {
            Decision::Clean => RealIo.write(path, bytes),
            Decision::Dead => Err(chaos_err("dead after fault")),
            Decision::Fault(Fault::TornWrite { keep }) => {
                let keep = keep.min(bytes.len());
                // The prefix really lands on disk — that is the point.
                let _ = RealIo.write(path, &bytes[..keep]);
                Err(chaos_err("torn write"))
            }
            Decision::Fault(Fault::FailOp) => Err(chaos_err("failed write")),
            Decision::Fault(Fault::BitFlip { offset }) => {
                let mut corrupt = bytes.to_vec();
                if !corrupt.is_empty() {
                    let at = offset % corrupt.len();
                    corrupt[at] ^= 0x40;
                }
                RealIo.write(path, &corrupt)
            }
            Decision::Fault(Fault::ShortRead { .. }) => Err(chaos_err("failed write")),
        }
    }

    fn rename(&self, from: &Path, to: &Path) -> std::io::Result<()> {
        match self.decide() {
            Decision::Clean => RealIo.rename(from, to),
            Decision::Dead => Err(chaos_err("dead after fault")),
            // Rename is atomic: it either happens or it does not, so every
            // fault kind degenerates to "it did not".
            Decision::Fault(_) => Err(chaos_err("failed rename")),
        }
    }

    fn remove(&self, path: &Path) -> std::io::Result<()> {
        match self.decide() {
            Decision::Clean => RealIo.remove(path),
            Decision::Dead => Err(chaos_err("dead after fault")),
            Decision::Fault(_) => Err(chaos_err("failed remove")),
        }
    }

    fn read(&self, path: &Path) -> std::io::Result<Vec<u8>> {
        match self.decide() {
            Decision::Clean => RealIo.read(path),
            Decision::Dead => Err(chaos_err("dead after fault")),
            Decision::Fault(Fault::ShortRead { keep }) => {
                let mut data = RealIo.read(path)?;
                data.truncate(keep);
                Ok(data)
            }
            Decision::Fault(Fault::BitFlip { offset }) => {
                let mut data = RealIo.read(path)?;
                if !data.is_empty() {
                    let at = offset % data.len();
                    data[at] ^= 0x40;
                }
                Ok(data)
            }
            Decision::Fault(_) => Err(chaos_err("failed read")),
        }
    }

    fn append(&self, path: &Path, bytes: &[u8]) -> std::io::Result<()> {
        match self.decide() {
            Decision::Clean => RealIo.append(path, bytes),
            Decision::Dead => Err(chaos_err("dead after fault")),
            Decision::Fault(Fault::TornWrite { keep }) => {
                // The prefix lands at the *end* of the file — a torn tail.
                let keep = keep.min(bytes.len());
                let _ = RealIo.append(path, &bytes[..keep]);
                Err(chaos_err("torn append"))
            }
            Decision::Fault(Fault::FailOp) => Err(chaos_err("failed append")),
            Decision::Fault(Fault::BitFlip { offset }) => {
                let mut corrupt = bytes.to_vec();
                if !corrupt.is_empty() {
                    let at = offset % corrupt.len();
                    corrupt[at] ^= 0x40;
                }
                RealIo.append(path, &corrupt)
            }
            Decision::Fault(Fault::ShortRead { .. }) => Err(chaos_err("failed append")),
        }
    }
}

/// Writes `bytes` to `path` atomically through `io`: temp-file sibling,
/// fsync, rename over the target. A crash at any operation leaves either
/// the old file or the new one — never a truncated hybrid.
pub fn atomic_write_io(io: &dyn FileIo, path: &Path, bytes: &[u8]) -> std::io::Result<()> {
    let tmp = temp_sibling(path);
    if let Err(e) = io.write(&tmp, bytes) {
        // Best-effort cleanup; a crashed process would leave the temp
        // file behind, which is why readers never look at `.tmp` names.
        let _ = std::fs::remove_file(&tmp);
        return Err(e);
    }
    io.rename(&tmp, path)
}

/// Atomic write through the real filesystem.
pub fn atomic_write(path: &Path, bytes: &[u8]) -> std::io::Result<()> {
    atomic_write_io(&RealIo, path, bytes)
}

fn temp_sibling(path: &Path) -> PathBuf {
    let mut name = path.file_name().unwrap_or_default().to_os_string();
    name.push(".tmp");
    path.with_file_name(name)
}

/// A deliberately misbehaving client for exercising server resilience:
/// real TCP, scripted misbehaviour.
pub struct ChaosClient {
    stream: TcpStream,
}

impl ChaosClient {
    /// Connects to a serve TCP front end.
    pub fn connect(addr: impl std::net::ToSocketAddrs) -> std::io::Result<Self> {
        Ok(ChaosClient {
            stream: TcpStream::connect(addr)?,
        })
    }

    /// Access to the raw stream (for reading responses).
    pub fn stream(&mut self) -> &mut TcpStream {
        &mut self.stream
    }

    /// Sends only the first `keep` bytes of `line` (no newline) and keeps
    /// the connection open — a stalled, half-sent request.
    pub fn send_partial(&mut self, line: &str, keep: usize) -> std::io::Result<()> {
        let bytes = line.as_bytes();
        let keep = keep.min(bytes.len());
        self.stream.write_all(&bytes[..keep])?;
        self.stream.flush()
    }

    /// Sends a full request line one byte at a time with `delay` between
    /// bytes — injected latency on the read path.
    pub fn send_slowly(&mut self, line: &str, delay: Duration) -> std::io::Result<()> {
        for b in line.as_bytes() {
            self.stream.write_all(std::slice::from_ref(b))?;
            self.stream.flush()?;
            std::thread::sleep(delay);
        }
        self.stream.write_all(b"\n")?;
        self.stream.flush()
    }

    /// Sends a request and reads one response line.
    pub fn request(&mut self, line: &str) -> std::io::Result<String> {
        self.stream.write_all(line.as_bytes())?;
        self.stream.write_all(b"\n")?;
        self.stream.flush()?;
        self.read_line()
    }

    /// Reads one newline-terminated response.
    pub fn read_line(&mut self) -> std::io::Result<String> {
        let mut out = Vec::new();
        let mut byte = [0u8; 1];
        loop {
            let n = self.stream.read(&mut byte)?;
            if n == 0 || byte[0] == b'\n' {
                break;
            }
            out.push(byte[0]);
        }
        String::from_utf8(out).map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))
    }

    /// Sends `n` copies of a request line without ever reading a
    /// response — the *slow reader*: the server's responses pile up in
    /// socket buffers until its writes stall, pinning admission permits
    /// on an event-loop front end. Returns how many lines were fully
    /// written (the server may shed/close mid-flood).
    pub fn flood_lines(&mut self, line: &str, n: usize) -> usize {
        let mut sent = 0;
        for _ in 0..n {
            if self.stream.write_all(line.as_bytes()).is_err()
                || self.stream.write_all(b"\n").is_err()
            {
                break;
            }
            sent += 1;
        }
        let _ = self.stream.flush();
        sent
    }

    /// Classic slow loris: starts a request line and keeps the connection
    /// open by trickling one byte every `drip` without ever finishing the
    /// line, until `total` bytes were sent or the server hangs up.
    pub fn slow_loris(&mut self, drip: Duration, total: usize) -> std::io::Result<()> {
        self.stream.write_all(b"{\"op\": \"")?;
        self.stream.flush()?;
        for _ in 0..total {
            std::thread::sleep(drip);
            self.stream.write_all(b"x")?;
            self.stream.flush()?;
        }
        Ok(())
    }

    /// Drops the connection without reading pending responses. Closing a
    /// socket with unread received data makes the kernel send RST, so the
    /// server's next write fails with connection-reset/broken-pipe — the
    /// "client vanished mid-exchange" failure mode.
    pub fn hang_up(self) {
        let _ = self.stream.shutdown(std::net::Shutdown::Both);
        drop(self.stream);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chaos_kill_sweep_is_deterministic() {
        let dir = std::env::temp_dir().join(format!("prim-chaos-unit-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        // A clean atomic write costs exactly two ops (write + rename).
        let counter = ChaosIo::counting();
        atomic_write_io(&counter, &dir.join("a.bin"), b"hello").unwrap();
        assert_eq!(counter.ops(), 2);
        // Killing at either op must leave the prior contents intact.
        let target = dir.join("b.bin");
        atomic_write(&target, b"old").unwrap();
        for at in 0..2 {
            let io = ChaosIo::with_plan(FaultPlan::kill_at(at));
            assert!(atomic_write_io(&io, &target, b"new").is_err());
            assert_eq!(std::fs::read(&target).unwrap(), b"old");
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn torn_write_persists_prefix_only() {
        let dir = std::env::temp_dir().join(format!("prim-chaos-torn-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("t.bin");
        let io = ChaosIo::with_plan(FaultPlan::torn_at(0, 3));
        assert!(io.write(&path, b"abcdef").is_err());
        assert_eq!(std::fs::read(&path).unwrap(), b"abc");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn bit_flip_completes_with_corruption() {
        let dir = std::env::temp_dir().join(format!("prim-chaos-flip-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("f.bin");
        let io = ChaosIo::with_plan(FaultPlan {
            at_op: 0,
            fault: Fault::BitFlip { offset: 1 },
            then_dead: false,
        });
        io.write(&path, b"abc").unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), b"a\x22c");
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
