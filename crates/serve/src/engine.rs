//! The serving query engine: batched bitwise-faithful scoring, spatial
//! top-k, an LRU score cache and an optional micro-batcher.
//!
//! ## Bitwise contract
//!
//! Every score this engine produces has the same bit pattern as
//! [`prim_core::PrimModel::score_pair_eager`] on the same embeddings. The
//! batched kernel keeps the eager path's f32 operation order per score —
//! the projection coefficients accumulate `k`-ascending from 0.0 and the
//! final reduction multiplies `(ps · hr) · pd` left to right — while
//! restructuring *around* each score for speed: the projections `ps`/`pd`
//! are hoisted out of the per-relation loop (eager recomputes them for
//! every relation), pairs are processed four at a time so eight
//! coefficient reductions overlap in flight, and the relation reduction
//! interleaves four pairs × two relations into eight independent
//! accumulator chains over hoisted relation rows. None of those change
//! any individual f32 chain — each score is still one `k`-ascending
//! serial accumulation — so results are identical across batch sizes,
//! cache states and thread counts.

use crate::cache::{pack_key, ScoreCache};
use crate::store::EmbeddingStore;
use prim_graph::PoiId;
use prim_obs::{Counter, Phase, Recorder};
use prim_tensor::kernel;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Condvar, Mutex, RwLock};
use std::time::{Duration, Instant};

/// Pairs scored per inner block of the batched kernel. Four pairs give
/// eight interleaved coefficient chains and (with [`REL_BLOCK`]) eight
/// interleaved score chains — enough independent f32 dependency chains to
/// hide the ~4-cycle add latency that serialises the eager path.
const PAIR_BLOCK: usize = 4;

/// Relations per accumulator block in the batched kernel.
const REL_BLOCK: usize = 2;

/// Sentinel for [`EngineOpts::cache_capacity`]: size the score cache
/// proportionally to the store (`8 × n_pois`, clamped to
/// `[4096, 262144]`) instead of a fixed entry count. A fixed 1024-entry
/// cache collapsed to a 10% hit rate on 10k-POI key pools; proportional
/// sizing keeps the hit rate flat as stores grow.
pub const CACHE_AUTO: usize = usize::MAX;

/// ANN dispatch knobs for [`ServeEngine::top_k_related_ann`]. The engine
/// picks one of three regimes per query from the grid's cell-population
/// estimate: tiny candidate sets go straight to the exact path (the scan
/// setup would cost more than it saves), mid-size sets take a quantized
/// SIMD scan over the in-radius candidates, and broad-radius queries walk
/// the HNSW beam. Every regime rescores its survivors through the exact
/// f32 kernel, so returned scores are always bitwise-exact.
#[derive(Clone, Copy, Debug)]
pub struct AnnOpts {
    /// Serve the approximate path at all (`false` = `top_k_related_ann`
    /// is the exact path with a `"exact"` mode tag).
    pub enabled: bool,
    /// Cell-population estimate at or below which the exact path wins
    /// outright and the ANN layer steps aside.
    pub min_exact: usize,
    /// Cell-population estimate above which the quantized scan *may*
    /// yield to the HNSW beam (the scan is O(candidates); the beam is
    /// ~O(ef·m·log n) regardless of how many POIs the radius covers). The
    /// beam additionally requires the radius to cover ≥ ¼ of the store —
    /// an unfiltered walk under a low-selectivity keep-filter starves its
    /// result set, so low-selectivity queries stay on the scan no matter
    /// how many candidates the radius holds.
    pub beam_cutoff: usize,
    /// Serve-time beam width / rescore-set size; 0 inherits the index's
    /// construction-time `ef_search`. Raised to `k × oversample` when a
    /// query asks for more.
    pub ef_search: usize,
    /// Minimum rescore-set size as a multiple of `k`.
    pub oversample: usize,
    /// Beam similarity-evaluation budget as a multiple of the effective
    /// `ef` (hard cap on work when the radius filter rejects almost
    /// everything).
    pub budget_mult: usize,
}

impl Default for AnnOpts {
    fn default() -> Self {
        AnnOpts {
            enabled: true,
            min_exact: 64,
            beam_cutoff: 4096,
            ef_search: 0,
            oversample: 4,
            budget_mult: 8,
        }
    }
}

/// Tuning knobs for [`ServeEngine`].
#[derive(Clone, Debug)]
pub struct EngineOpts {
    /// Score-vector cache capacity (entries); 0 disables caching,
    /// [`CACHE_AUTO`] (the default) sizes it to the store.
    pub cache_capacity: usize,
    /// Micro-batcher: flush once this many pairs are queued.
    pub batch_max_pairs: usize,
    /// Micro-batcher: flush a non-empty queue after this long even if it
    /// has not reached `batch_max_pairs`.
    pub batch_max_wait: Duration,
    /// ANN dispatch configuration for approximate top-k.
    pub ann: AnnOpts,
}

impl Default for EngineOpts {
    fn default() -> Self {
        EngineOpts {
            cache_capacity: CACHE_AUTO,
            batch_max_pairs: 64,
            batch_max_wait: Duration::from_micros(200),
            ann: AnnOpts::default(),
        }
    }
}

/// Resolves [`CACHE_AUTO`] against a store size.
fn resolve_cache_capacity(requested: usize, n_pois: usize) -> usize {
    if requested == CACHE_AUTO {
        (n_pois * 8).clamp(4096, 1 << 18)
    } else {
        requested
    }
}

/// Scores for one POI pair across the full relation set `R ∪ {φ}`.
///
/// The score vector is a view into shared storage: results of one
/// [`ServeEngine::batch`] call share a single allocation, and cache hits
/// share the cached vector. A `PairScores` therefore keeps its source
/// batch's score block alive until dropped — fine for the serve loop,
/// which serialises and drops results immediately.
#[derive(Clone, Debug)]
pub struct PairScores {
    /// Source POI id.
    pub src: u32,
    /// Destination POI id.
    pub dst: u32,
    /// Distance bin the pair fell into.
    pub bin: usize,
    all: Arc<[f32]>,
    offset: usize,
    n_rel: usize,
    /// Arg-max relation index.
    pub best: usize,
    /// Score of the arg-max relation.
    pub best_score: f32,
    /// Whether the vector came from the cache.
    pub cached: bool,
}

impl PairScores {
    /// One score per relation, φ last (`scores().len() == n_relations + 1`).
    pub fn scores(&self) -> &[f32] {
        &self.all[self.offset..self.offset + self.n_rel]
    }

    fn new(
        src: u32,
        dst: u32,
        bin: usize,
        all: Arc<[f32]>,
        offset: usize,
        n_rel: usize,
        cached: bool,
    ) -> Self {
        // Strict > keeps the first maximum, matching predict_pairs.
        let mut best = 0usize;
        let mut best_score = f32::NEG_INFINITY;
        for (r, &s) in all[offset..offset + n_rel].iter().enumerate() {
            if s > best_score {
                best_score = s;
                best = r;
            }
        }
        PairScores {
            src,
            dst,
            bin,
            all,
            offset,
            n_rel,
            best,
            best_score,
            cached,
        }
    }
}

/// One result of a spatial top-k query.
#[derive(Clone, Debug)]
pub struct Neighbor {
    /// Candidate POI id.
    pub poi: u32,
    /// Distance from the query POI in km.
    pub distance_km: f64,
    /// Score under the requested relation.
    pub score: f32,
    /// Whether the relation scored here is also the pair's arg-max.
    pub is_best: bool,
}

/// Online inference engine over a frozen [`EmbeddingStore`].
pub struct ServeEngine {
    store: EmbeddingStore,
    cache: ScoreCache,
    cache_capacity: usize,
    ann_opts: AnnOpts,
    recorder: Recorder,
}

impl ServeEngine {
    /// Builds an engine. POI/bin counts must fit the packed cache key
    /// (24/8 bits); real city graphs are far below both limits.
    pub fn new(store: EmbeddingStore, opts: &EngineOpts, recorder: Recorder) -> Self {
        assert!(store.n_pois() < (1 << 24), "cache key packs 24-bit POI ids");
        assert!(store.bins.len() < (1 << 8), "cache key packs 8-bit bins");
        let cache_capacity = resolve_cache_capacity(opts.cache_capacity, store.n_pois());
        ServeEngine {
            store,
            cache: ScoreCache::new(cache_capacity),
            cache_capacity,
            ann_opts: opts.ann,
            recorder,
        }
    }

    /// The underlying store.
    pub fn store(&self) -> &EmbeddingStore {
        &self.store
    }

    /// The resolved score-cache capacity ([`CACHE_AUTO`] already applied).
    pub fn cache_capacity(&self) -> usize {
        self.cache_capacity
    }

    /// The engine's telemetry recorder.
    pub fn recorder(&self) -> &Recorder {
        &self.recorder
    }

    /// Scores one pair across all relations, consulting the cache first.
    pub fn score(&self, src: u32, dst: u32) -> PairScores {
        let _serve = self.recorder.phase(Phase::Serve);
        self.recorder.add(Counter::ServeRequests, 1);
        self.recorder.add(Counter::ServePairs, 1);
        self.score_uncounted(src, dst)
    }

    /// Scores a batch of pairs in one kernel invocation. Cached pairs are
    /// answered from the cache; the rest go through the batched kernel
    /// together. Results come back in input order.
    pub fn batch(&self, pairs: &[(u32, u32)]) -> Vec<PairScores> {
        let _serve = self.recorder.phase(Phase::Serve);
        self.recorder.add(Counter::ServeRequests, 1);
        self.recorder.add(Counter::ServePairs, pairs.len() as u64);
        self.recorder.add(Counter::ServeBatches, 1);

        let bins: Vec<usize> = pairs
            .iter()
            .map(|&(a, b)| self.store.pair_bin(PoiId(a), PoiId(b)))
            .collect();

        // Cache disabled: straight through the kernel, no per-pair probes
        // or allocations — the whole batch shares one score block.
        if !self.cache.is_enabled() {
            self.recorder
                .add(Counter::ServeCacheMisses, pairs.len() as u64);
            let all: Arc<[f32]> = score_pairs_all(&self.store, pairs, &bins).into();
            let n_rel = self.store.phi() + 1;
            return pairs
                .iter()
                .zip(&bins)
                .enumerate()
                .map(|(i, (&(a, b), &bin))| {
                    PairScores::new(a, b, bin, Arc::clone(&all), i * n_rel, n_rel, false)
                })
                .collect();
        }

        // Cache pass: collect the misses, remember where each came from.
        let mut out: Vec<Option<PairScores>> = Vec::with_capacity(pairs.len());
        let mut miss_idx: Vec<usize> = Vec::new();
        for (i, (&(a, b), &bin)) in pairs.iter().zip(&bins).enumerate() {
            match self.cache.get(pack_key(a, b, bin)) {
                Some(v) => {
                    let n_rel = v.len();
                    out.push(Some(PairScores::new(a, b, bin, v, 0, n_rel, true)));
                }
                None => {
                    miss_idx.push(i);
                    out.push(None);
                }
            }
        }
        let hits = (pairs.len() - miss_idx.len()) as u64;
        self.recorder.add(Counter::ServeCacheHits, hits);
        self.recorder
            .add(Counter::ServeCacheMisses, miss_idx.len() as u64);

        if !miss_idx.is_empty() {
            let miss_pairs: Vec<(u32, u32)> = miss_idx.iter().map(|&i| pairs[i]).collect();
            let miss_bins: Vec<usize> = miss_idx.iter().map(|&i| bins[i]).collect();
            let flat = score_pairs_all(&self.store, &miss_pairs, &miss_bins);
            let n_rel = self.store.phi() + 1;
            for (j, &i) in miss_idx.iter().enumerate() {
                // One allocation per miss, shared between the cache entry
                // and the returned result.
                let scores: Arc<[f32]> = flat[j * n_rel..(j + 1) * n_rel].into();
                let (a, b) = pairs[i];
                self.cache
                    .insert(pack_key(a, b, bins[i]), Arc::clone(&scores));
                out[i] = Some(PairScores::new(a, b, bins[i], scores, 0, n_rel, false));
            }
        }
        out.into_iter()
            .map(|o| o.expect("every slot filled"))
            .collect()
    }

    /// Scores the pairs of `src` against every POI within `radius_km`,
    /// returning the `k` highest-scoring under `relation`. Candidates come
    /// from the grid index (deterministic `(distance, index)` order);
    /// ranking ties break on candidate index, so the result is fully
    /// deterministic.
    pub fn top_k_related(
        &self,
        src: u32,
        radius_km: f64,
        k: usize,
        relation: usize,
    ) -> Vec<Neighbor> {
        let _serve = self.recorder.phase(Phase::Serve);
        self.recorder.add(Counter::ServeRequests, 1);
        assert!(relation <= self.store.phi(), "relation out of range");
        let candidates = self.store.within_radius(PoiId(src), radius_km);
        if candidates.is_empty() || k == 0 {
            return Vec::new();
        }
        self.recorder
            .add(Counter::ServePairs, candidates.len() as u64);
        self.recorder.add(Counter::ServeBatches, 1);

        let pairs: Vec<(u32, u32)> = candidates.iter().map(|&(j, _)| (src, j as u32)).collect();
        let scored = self.batch_uncounted(&pairs);
        let mut ranked: Vec<Neighbor> = scored
            .iter()
            .zip(&candidates)
            .map(|(s, &(j, d))| Neighbor {
                poi: j as u32,
                distance_km: d,
                score: s.scores()[relation],
                is_best: s.best == relation,
            })
            .collect();
        ranked.sort_by(|a, b| b.score.total_cmp(&a.score).then(a.poi.cmp(&b.poi)));
        ranked.truncate(k);
        ranked
    }

    /// [`Self::top_k_related`] with a mode switch: `exact` forces the
    /// brute-force path; otherwise the ANN dispatch decides. Returns the
    /// ranked neighbors plus the mode actually served (`"exact"` /
    /// `"ann"`), which the protocol layer reports per response.
    pub fn top_k_related_mode(
        &self,
        src: u32,
        radius_km: f64,
        k: usize,
        relation: usize,
        exact: bool,
    ) -> (Vec<Neighbor>, &'static str) {
        if exact || !self.ann_opts.enabled || self.store.ann.is_none() {
            return (self.top_k_related(src, radius_km, k, relation), "exact");
        }
        self.top_k_related_ann(src, radius_km, k, relation)
    }

    /// ANN-accelerated top-k: candidates = ANN ∩ spatial radius, exact
    /// rescoring of the survivors (DESIGN.md §11).
    ///
    /// Three regimes, chosen from the grid's O(cells) population estimate:
    ///
    /// 1. **exact** — at or below `min_exact` candidates the setup cost of
    ///    anything approximate exceeds the full scan it replaces.
    /// 2. **quantized scan** — enumerate the in-radius candidates
    ///    (unsorted), score each with one int8/f16 SIMD dot against the
    ///    relation-linearised query, keep the `ef` best.
    /// 3. **HNSW beam** — above `beam_cutoff` *and* with the radius
    ///    covering most of the store, the candidate set is too big to
    ///    touch and the keep-filter passes often enough to converge; walk
    ///    the graph under the quantized similarity with the radius as the
    ///    keep-filter and a hard visit budget.
    ///
    /// Regimes 2 and 3 re-score their kept set through the exact f32
    /// kernel, so every score (and therefore every tie-break) in the
    /// response is bitwise identical to the exact path's — approximation
    /// can only cost recall, never score fidelity.
    fn top_k_related_ann(
        &self,
        src: u32,
        radius_km: f64,
        k: usize,
        relation: usize,
    ) -> (Vec<Neighbor>, &'static str) {
        assert!(relation <= self.store.phi(), "relation out of range");
        let opts = &self.ann_opts;
        let est = self
            .store
            .grid
            .count_in_cells_around(src as usize, radius_km);
        if est <= opts.min_exact || k == 0 {
            return (self.top_k_related(src, radius_km, k, relation), "exact");
        }
        let index = self.store.ann.as_ref().expect("checked by caller");
        let _serve = self.recorder.phase(Phase::Serve);
        self.recorder.add(Counter::ServeRequests, 1);

        let base_ef = if opts.ef_search == 0 {
            index.graph.params.ef_search
        } else {
            opts.ef_search
        };
        let ef = base_ef.max(k.saturating_mul(opts.oversample)).max(1);
        let (queries, n_query_rows) = self.ann_query_rows(src, relation);
        let d = self.store.dim();
        let tier = index.graph.params.tier;
        // Query-row selection bins the *grid's* projected distance — the
        // value the radius filter already computed — rather than re-running
        // the per-pair equirectangular projection `pair_bin` does. The two
        // can disagree right at a bin edge, which only moves that
        // candidate's approximate ranking row; the exact rescore below
        // always uses `pair_bin`'s bin, bitwise like the exact path.
        let query_row = |dist: f64| -> &[f32] {
            let row = if n_query_rows == 1 {
                0
            } else {
                self.store.bins.bin(dist)
            };
            &queries[row * d..(row + 1) * d]
        };

        // The beam walks the similarity graph *unfiltered* and only keeps
        // in-radius results, so it pays for every visit whether or not the
        // radius accepts it. With embeddings uncorrelated with geography
        // that only converges when the radius already covers a large share
        // of the store — below ~25% selectivity the walk's kept set
        // starves and recall collapses, so those queries stay on the
        // quantized scan (linear in candidates, but with a ~20× cheaper
        // constant than the exact kernel).
        let beam_viable = est > opts.beam_cutoff && est.saturating_mul(4) >= self.store.n_pois();

        // (quantized score, id), ordered (score desc, id asc) — the same
        // shape as the final ranking so quantization ties stay
        // deterministic too.
        let kept: Vec<(f32, u32)> = if !beam_viable {
            // Quantized scan over the exact candidate set.
            let candidates = self
                .store
                .grid
                .within_radius_unsorted(src as usize, radius_km);
            self.recorder
                .add(Counter::AnnNodesVisited, candidates.len() as u64);
            self.recorder
                .add(Counter::AnnCandidates, candidates.len() as u64);
            self.recorder.add(
                Counter::AnnRadiusPruned,
                est.saturating_sub(candidates.len() + 1) as u64,
            );
            let mut scored: Vec<(f32, u32)> = candidates
                .into_iter()
                .map(|(j, dist)| (index.quant.dot(tier, j, query_row(dist)), j as u32))
                .collect();
            // Keep the top `ef` under the (score desc, id asc) total order.
            // A partition suffices — the order is total, so the kept *set*
            // is unique, and the exact rescore re-ranks it anyway.
            if scored.len() > ef {
                scored
                    .select_nth_unstable_by(ef - 1, |a, b| b.0.total_cmp(&a.0).then(a.1.cmp(&b.1)));
                scored.truncate(ef);
            }
            scored
        } else {
            // Broad radius: HNSW beam with the radius as the keep-filter.
            let budget = ef.saturating_mul(opts.budget_mult);
            let (mut kept, stats) = index.graph.hnsw.search(
                |id| {
                    let dist = self.store.grid.distance_km(src as usize, id as usize);
                    index.quant.dot(tier, id as usize, query_row(dist))
                },
                |id| {
                    id != src && self.store.grid.distance_km(src as usize, id as usize) < radius_km
                },
                ef,
                budget,
            );
            self.recorder.add(Counter::AnnNodesVisited, stats.visited);
            self.recorder.add(Counter::AnnRadiusPruned, stats.pruned);
            // Delta segment: POIs onboarded since the HNSW graph was
            // sealed (rows `index.len()..n_pois`) are not in the graph, so
            // the beam can never surface them. They are scanned linearly
            // under the same radius filter and quantized similarity, then
            // merged into the beam's kept set before the exact rescore.
            // The ingest pipeline re-seals the graph once this segment
            // grows past a fixed share of the sealed size, so the scan
            // stays O(recent onboards). Retired POIs sit at NaN in the
            // grid, which fails `< radius_km` and drops them here too.
            let delta = index.len() as u32..self.store.n_pois() as u32;
            let delta_len = delta.len() as u64;
            self.recorder.add(Counter::AnnNodesVisited, delta_len);
            for id in delta {
                if id == src {
                    continue;
                }
                let dist = self.store.grid.distance_km(src as usize, id as usize);
                if dist < radius_km {
                    kept.push((index.quant.dot(tier, id as usize, query_row(dist)), id));
                }
            }
            if delta_len > 0 {
                kept.sort_by(|a, b| b.0.total_cmp(&a.0).then(a.1.cmp(&b.1)));
                kept.truncate(ef);
            }
            self.recorder
                .add(Counter::AnnCandidates, kept.len() as u64 + stats.pruned);
            kept
        };
        if kept.is_empty() {
            return (Vec::new(), "ann");
        }

        // Exact rescore: bitwise the same scores the exact path computes,
        // so ranking and tie-breaking agree wherever the sets overlap.
        self.recorder.add(Counter::AnnRescored, kept.len() as u64);
        self.recorder.add(Counter::ServePairs, kept.len() as u64);
        self.recorder.add(Counter::ServeBatches, 1);
        let pairs: Vec<(u32, u32)> = kept.iter().map(|&(_, id)| (src, id)).collect();
        let scored = self.batch_uncounted(&pairs);
        let mut ranked: Vec<Neighbor> = scored
            .iter()
            .zip(&kept)
            .map(|(s, &(_, id))| Neighbor {
                poi: id,
                distance_km: self.store.grid.distance_km(src as usize, id as usize),
                score: s.scores()[relation],
                is_best: s.best == relation,
            })
            .collect();
        ranked.sort_by(|a, b| b.score.total_cmp(&a.score).then(a.poi.cmp(&b.poi)));
        ranked.truncate(k);
        (ranked, "ann")
    }

    /// The per-bin query vectors the quantized kernels score candidates
    /// against. For a fixed source POI, relation and distance bin, the
    /// exact score is *linear* in the candidate embedding:
    /// `score = u_b · h_dst` with
    /// `u_b = a − (a·w_b)·w_b`, `a = (h_src − (h_src·w_b)·w_b) ⊙ h_rel`
    /// (and simply `u = h_src ⊙ h_rel` without distance scoring). One
    /// quantized dot per candidate therefore approximates the exact score
    /// itself — not a proxy metric — which is what makes recall@k high at
    /// int8 precision. Returns `(rows, n_rows)` with `rows` holding
    /// `n_rows × dim` f32s (one row per bin, or a single row when
    /// distance scoring is off).
    fn ann_query_rows(&self, src: u32, relation: usize) -> (Vec<f32>, usize) {
        let d = self.store.dim();
        let hs = self.store.pois.row(src as usize);
        let hr = self.store.relations.row(relation);
        if !self.store.use_distance_scoring {
            let u: Vec<f32> = hs.iter().zip(hr).map(|(&a, &b)| a * b).collect();
            return (u, 1);
        }
        let n_bins = self.store.bins.len();
        let mut out = vec![0.0f32; n_bins * d];
        for b in 0..n_bins {
            let w = self.store.bin_normals.row(b);
            let ds: f32 = hs.iter().zip(w).map(|(&x, &y)| x * y).sum();
            let row = &mut out[b * d..(b + 1) * d];
            for k in 0..d {
                row[k] = (hs[k] - ds * w[k]) * hr[k];
            }
            let aw: f32 = row.iter().zip(w).map(|(&x, &y)| x * y).sum();
            for k in 0..d {
                row[k] -= aw * w[k];
            }
        }
        (out, n_bins)
    }

    /// [`Self::score`] without the request/pair counters (shared by paths
    /// that already counted their work).
    fn score_uncounted(&self, src: u32, dst: u32) -> PairScores {
        let bin = self.store.pair_bin(PoiId(src), PoiId(dst));
        let key = pack_key(src, dst, bin);
        if let Some(v) = self.cache.get(key) {
            self.recorder.add(Counter::ServeCacheHits, 1);
            let n_rel = v.len();
            return PairScores::new(src, dst, bin, v, 0, n_rel, true);
        }
        self.recorder.add(Counter::ServeCacheMisses, 1);
        let n_rel = self.store.phi() + 1;
        let scores: Arc<[f32]> = score_pairs_all(&self.store, &[(src, dst)], &[bin]).into();
        self.cache.insert(key, Arc::clone(&scores));
        PairScores::new(src, dst, bin, scores, 0, n_rel, false)
    }

    /// Degraded `top_k`: the `k` nearest POIs within `radius_km` straight
    /// from the grid index, no scoring at all. This is the fallback the
    /// protocol layer switches to when a request's deadline no longer
    /// leaves room for the batched scoring pass — spatial candidates are
    /// O(grid cells) while scoring is O(candidates × relations × dim).
    pub fn top_k_nearest(&self, src: u32, radius_km: f64, k: usize) -> Vec<(u32, f64)> {
        let _serve = self.recorder.phase(Phase::Serve);
        self.recorder.add(Counter::ServeRequests, 1);
        let mut candidates = self.store.within_radius(PoiId(src), radius_km);
        candidates.sort_by(|a, b| a.1.total_cmp(&b.1).then(a.0.cmp(&b.0)));
        candidates.truncate(k);
        candidates.into_iter().map(|(j, d)| (j as u32, d)).collect()
    }

    /// [`Self::batch`] without request counters or cache traffic: used by
    /// `top_k_related`, which counts its own pairs. Radius scans rarely
    /// repeat a specific pair, so probing or populating the point cache
    /// would mostly churn it.
    fn batch_uncounted(&self, pairs: &[(u32, u32)]) -> Vec<PairScores> {
        let bins: Vec<usize> = pairs
            .iter()
            .map(|&(a, b)| self.store.pair_bin(PoiId(a), PoiId(b)))
            .collect();
        let all: Arc<[f32]> = score_pairs_all(&self.store, pairs, &bins).into();
        let n_rel = self.store.phi() + 1;
        pairs
            .iter()
            .zip(&bins)
            .enumerate()
            .map(|(i, (&(a, b), &bin))| {
                PairScores::new(a, b, bin, Arc::clone(&all), i * n_rel, n_rel, false)
            })
            .collect()
    }
}

/// Scores every `(src, dst)` pair against every relation in `R ∪ {φ}`,
/// returning an `n_pairs × (n_relations + 1)` row-major table. Each
/// individual score is bitwise [`prim_core::PrimModel::score_pair_eager`];
/// see the module docs for why the restructuring preserves that.
pub fn score_pairs_all(store: &EmbeddingStore, pairs: &[(u32, u32)], bins: &[usize]) -> Vec<f32> {
    assert_eq!(pairs.len(), bins.len());
    let d = store.dim();
    let n_rel = store.phi() + 1;
    let mut out = vec![0.0f32; pairs.len() * n_rel];
    if pairs.is_empty() {
        return out;
    }
    // Rows are pairs: chunks split between pairs only, so chunking cannot
    // change any per-score arithmetic.
    let per_pair = n_rel * d.max(1) * 3;
    let grain = (kernel::PAR_ELEM_CUTOFF / per_pair.max(1)).max(1);
    kernel::par_row_chunks(&mut out, n_rel, grain, |row0, chunk| {
        let n = chunk.len() / n_rel;
        let mut scratch = Scratch::new(d);
        let mut i = 0usize;
        // Four pairs per iteration: their (independent) coefficient and
        // relation chains interleave, covering each other's add latency.
        while i + PAIR_BLOCK <= n {
            let p = [
                pairs[row0 + i],
                pairs[row0 + i + 1],
                pairs[row0 + i + 2],
                pairs[row0 + i + 3],
            ];
            let b = [
                bins[row0 + i],
                bins[row0 + i + 1],
                bins[row0 + i + 2],
                bins[row0 + i + 3],
            ];
            let outs = &mut chunk[i * n_rel..(i + PAIR_BLOCK) * n_rel];
            score_four(store, p, b, outs, &mut scratch);
            i += PAIR_BLOCK;
        }
        while i < n {
            let p = pairs[row0 + i];
            score_one(
                store,
                p,
                bins[row0 + i],
                &mut chunk[i * n_rel..(i + 1) * n_rel],
                &mut scratch,
            );
            i += 1;
        }
    });
    out
}

/// Reusable per-chunk projection buffers: contiguous `ps`/`pd` per pair
/// for the scalar paths, plus pair-interleaved ("transposed", `[4k + j]`
/// layout) buffers for the SIMD block kernel.
struct Scratch {
    ps: [Vec<f32>; PAIR_BLOCK],
    pd: [Vec<f32>; PAIR_BLOCK],
    #[cfg(target_arch = "x86_64")]
    simd: SimdBufs,
}

#[cfg(target_arch = "x86_64")]
struct SimdBufs {
    hst: Vec<f32>,
    hdt: Vec<f32>,
    wt: Vec<f32>,
    pst: Vec<f32>,
    pdt: Vec<f32>,
}

impl Scratch {
    fn new(d: usize) -> Self {
        Scratch {
            ps: std::array::from_fn(|_| vec![0.0; d]),
            pd: std::array::from_fn(|_| vec![0.0; d]),
            #[cfg(target_arch = "x86_64")]
            simd: SimdBufs {
                hst: vec![0.0; PAIR_BLOCK * d],
                hdt: vec![0.0; PAIR_BLOCK * d],
                wt: vec![0.0; PAIR_BLOCK * d],
                pst: vec![0.0; PAIR_BLOCK * d],
                pdt: vec![0.0; PAIR_BLOCK * d],
            },
        }
    }
}

/// Eager-faithful coefficient reduction: `Σ_k a[k]·w[k]` accumulated
/// `k`-ascending from 0.0, exactly `iter().zip(w).map(..).sum()`.
#[inline]
fn coeff(a: &[f32], w: &[f32]) -> f32 {
    let mut acc = 0.0f32;
    for (&x, &y) in a.iter().zip(w) {
        acc += x * y;
    }
    acc
}

/// Interleaved eight-way coefficient reduction for four pairs. Eight
/// independent accumulator chains; each chain is element-for-element the
/// serial [`coeff`] order, so the results are bitwise identical — the
/// interleaving only overlaps their latencies. Explicit scalar
/// accumulators and `..d` re-slicing keep everything in registers with
/// no bounds checks in the loop.
#[cfg(not(target_arch = "x86_64"))]
#[inline]
fn coeff8(
    hs: [&[f32]; PAIR_BLOCK],
    hd: [&[f32]; PAIR_BLOCK],
    w: [&[f32]; PAIR_BLOCK],
) -> ([f32; PAIR_BLOCK], [f32; PAIR_BLOCK]) {
    let d = hs[0].len();
    let (hs0, hs1, hs2, hs3) = (&hs[0][..d], &hs[1][..d], &hs[2][..d], &hs[3][..d]);
    let (hd0, hd1, hd2, hd3) = (&hd[0][..d], &hd[1][..d], &hd[2][..d], &hd[3][..d]);
    let (w0, w1, w2, w3) = (&w[0][..d], &w[1][..d], &w[2][..d], &w[3][..d]);
    let (mut ds0, mut ds1, mut ds2, mut ds3) = (0.0f32, 0.0f32, 0.0f32, 0.0f32);
    let (mut dd0, mut dd1, mut dd2, mut dd3) = (0.0f32, 0.0f32, 0.0f32, 0.0f32);
    for k in 0..d {
        ds0 += hs0[k] * w0[k];
        dd0 += hd0[k] * w0[k];
        ds1 += hs1[k] * w1[k];
        dd1 += hd1[k] * w1[k];
        ds2 += hs2[k] * w2[k];
        dd2 += hd2[k] * w2[k];
        ds3 += hs3[k] * w3[k];
        dd3 += hd3[k] * w3[k];
    }
    ([ds0, ds1, ds2, ds3], [dd0, dd1, dd2, dd3])
}

/// Fills `ps[k] = hs[k] − ds·w[k]` (the projected embedding). Identical
/// per-element arithmetic to the eager loop body.
#[inline]
fn project(ps: &mut [f32], h: &[f32], dcoef: f32, w: &[f32]) {
    let d = ps.len();
    let (h, w) = (&h[..d], &w[..d]);
    for k in 0..d {
        ps[k] = h[k] - dcoef * w[k];
    }
}

/// Scores one (projected or raw) pair against all relations, two
/// relations per pass over hoisted relation rows. Each relation's
/// accumulator runs `k`-ascending from 0.0 with `(ps[k] · hr[k]) · pd[k]`
/// terms — the eager loop's exact chain (with `ps = hs`, `pd = hd` this
/// is also the eager no-projection branch).
#[inline]
fn reduce_relations(store: &EmbeddingStore, ps: &[f32], pd: &[f32], out: &mut [f32]) {
    let d = ps.len();
    let pd = &pd[..d];
    let n_rel = out.len();
    let mut r0 = 0usize;
    while r0 + REL_BLOCK <= n_rel {
        let h0 = &store.relations.row(r0)[..d];
        let h1 = &store.relations.row(r0 + 1)[..d];
        let (mut a0, mut a1) = (0.0f32, 0.0f32);
        for k in 0..d {
            let (p, q) = (ps[k], pd[k]);
            a0 += p * h0[k] * q;
            a1 += p * h1[k] * q;
        }
        out[r0] = a0;
        out[r0 + 1] = a1;
        r0 += REL_BLOCK;
    }
    if r0 < n_rel {
        let h0 = &store.relations.row(r0)[..d];
        let mut a0 = 0.0f32;
        for k in 0..d {
            a0 += ps[k] * h0[k] * pd[k];
        }
        out[r0] = a0;
    }
}

/// Scores four (projected or raw) pairs against all relations, two
/// relations × four pairs = eight independent accumulator chains per pass
/// over hoisted relation rows. `outs` holds the four pairs' score rows
/// contiguously (`PAIR_BLOCK × n_rel`). Per-score arithmetic is the same
/// chain as [`reduce_relations`].
#[cfg(not(target_arch = "x86_64"))]
#[inline]
fn reduce_relations4(
    store: &EmbeddingStore,
    ps: [&[f32]; PAIR_BLOCK],
    pd: [&[f32]; PAIR_BLOCK],
    outs: &mut [f32],
) {
    let d = ps[0].len();
    let (p0, p1, p2, p3) = (&ps[0][..d], &ps[1][..d], &ps[2][..d], &ps[3][..d]);
    let (q0, q1, q2, q3) = (&pd[0][..d], &pd[1][..d], &pd[2][..d], &pd[3][..d]);
    let n_rel = outs.len() / PAIR_BLOCK;
    let mut r0 = 0usize;
    while r0 + REL_BLOCK <= n_rel {
        let h0 = &store.relations.row(r0)[..d];
        let h1 = &store.relations.row(r0 + 1)[..d];
        let (mut a00, mut a01, mut a10, mut a11) = (0.0f32, 0.0f32, 0.0f32, 0.0f32);
        let (mut a20, mut a21, mut a30, mut a31) = (0.0f32, 0.0f32, 0.0f32, 0.0f32);
        for k in 0..d {
            let (t0, t1) = (h0[k], h1[k]);
            a00 += p0[k] * t0 * q0[k];
            a01 += p0[k] * t1 * q0[k];
            a10 += p1[k] * t0 * q1[k];
            a11 += p1[k] * t1 * q1[k];
            a20 += p2[k] * t0 * q2[k];
            a21 += p2[k] * t1 * q2[k];
            a30 += p3[k] * t0 * q3[k];
            a31 += p3[k] * t1 * q3[k];
        }
        outs[r0] = a00;
        outs[r0 + 1] = a01;
        outs[n_rel + r0] = a10;
        outs[n_rel + r0 + 1] = a11;
        outs[2 * n_rel + r0] = a20;
        outs[2 * n_rel + r0 + 1] = a21;
        outs[3 * n_rel + r0] = a30;
        outs[3 * n_rel + r0 + 1] = a31;
        r0 += REL_BLOCK;
    }
    if r0 < n_rel {
        let h0 = &store.relations.row(r0)[..d];
        let (mut a0, mut a1, mut a2, mut a3) = (0.0f32, 0.0f32, 0.0f32, 0.0f32);
        for k in 0..d {
            let t0 = h0[k];
            a0 += p0[k] * t0 * q0[k];
            a1 += p1[k] * t0 * q1[k];
            a2 += p2[k] * t0 * q2[k];
            a3 += p3[k] * t0 * q3[k];
        }
        outs[r0] = a0;
        outs[n_rel + r0] = a1;
        outs[2 * n_rel + r0] = a2;
        outs[3 * n_rel + r0] = a3;
    }
}

fn score_one(
    store: &EmbeddingStore,
    (src, dst): (u32, u32),
    bin: usize,
    out: &mut [f32],
    scratch: &mut Scratch,
) {
    let hs = store.pois.row(src as usize);
    let hd = store.pois.row(dst as usize);
    if store.use_distance_scoring {
        let w = store.bin_normals.row(bin);
        let ds = coeff(hs, w);
        let dd = coeff(hd, w);
        project(&mut scratch.ps[0], hs, ds, w);
        project(&mut scratch.pd[0], hd, dd, w);
        reduce_relations(store, &scratch.ps[0], &scratch.pd[0], out);
    } else {
        reduce_relations(store, hs, hd, out);
    }
}

fn score_four(
    store: &EmbeddingStore,
    pairs: [(u32, u32); PAIR_BLOCK],
    bins: [usize; PAIR_BLOCK],
    outs: &mut [f32],
    scratch: &mut Scratch,
) {
    #[cfg(target_arch = "x86_64")]
    // SAFETY: SSE is part of the x86_64 baseline.
    unsafe {
        score_four_sse(store, pairs, bins, outs, scratch)
    }
    #[cfg(not(target_arch = "x86_64"))]
    score_four_scalar(store, pairs, bins, outs, scratch)
}

#[cfg(not(target_arch = "x86_64"))]
fn score_four_scalar(
    store: &EmbeddingStore,
    pairs: [(u32, u32); PAIR_BLOCK],
    bins: [usize; PAIR_BLOCK],
    outs: &mut [f32],
    scratch: &mut Scratch,
) {
    let hs: [&[f32]; PAIR_BLOCK] = std::array::from_fn(|j| store.pois.row(pairs[j].0 as usize));
    let hd: [&[f32]; PAIR_BLOCK] = std::array::from_fn(|j| store.pois.row(pairs[j].1 as usize));
    if store.use_distance_scoring {
        let w: [&[f32]; PAIR_BLOCK] = std::array::from_fn(|j| store.bin_normals.row(bins[j]));
        let (ds, dd) = coeff8(hs, hd, w);
        for j in 0..PAIR_BLOCK {
            project(&mut scratch.ps[j], hs[j], ds[j], w[j]);
            project(&mut scratch.pd[j], hd[j], dd[j], w[j]);
        }
        let ps: [&[f32]; PAIR_BLOCK] = std::array::from_fn(|j| scratch.ps[j].as_slice());
        let pd: [&[f32]; PAIR_BLOCK] = std::array::from_fn(|j| scratch.pd[j].as_slice());
        reduce_relations4(store, ps, pd, outs);
    } else {
        let _ = &mut scratch.ps; // scratch unused on the raw branch
        reduce_relations4(store, hs, hd, outs);
    }
}

/// SIMD (SSE) variant of the four-pair block: one lane per pair. Every
/// vector op is lane-wise IEEE single arithmetic, and each lane performs
/// the same `k`-ascending serial chain as the scalar code — only *across*
/// lanes does anything run in parallel — so every score is still bitwise
/// [`prim_core::PrimModel::score_pair_eager`]. Rust never contracts
/// explicit mul/add intrinsics into FMA, so the chains stay exact.
///
/// Embedding rows are transposed into pair-interleaved buffers
/// (`buf[4k + j]` = pair `j`, component `k`) so each `k` step is one
/// contiguous 4-lane load. A `d % 4` tail is handled in scalar, continuing
/// each lane's chain in the same order.
#[cfg(target_arch = "x86_64")]
unsafe fn score_four_sse(
    store: &EmbeddingStore,
    pairs: [(u32, u32); PAIR_BLOCK],
    bins: [usize; PAIR_BLOCK],
    outs: &mut [f32],
    scratch: &mut Scratch,
) {
    use std::arch::x86_64::*;
    let d = store.dim();
    let d4 = d & !3;
    let hs: [&[f32]; PAIR_BLOCK] = std::array::from_fn(|j| store.pois.row(pairs[j].0 as usize));
    let hd: [&[f32]; PAIR_BLOCK] = std::array::from_fn(|j| store.pois.row(pairs[j].1 as usize));
    let bufs = &mut scratch.simd;

    if store.use_distance_scoring {
        let w: [&[f32]; PAIR_BLOCK] = std::array::from_fn(|j| store.bin_normals.row(bins[j]));
        transpose4(hs, &mut bufs.hst, d4);
        transpose4(hd, &mut bufs.hdt, d4);
        transpose4(w, &mut bufs.wt, d4);

        // Coefficients: lane j accumulates `Σ_k h[j][k]·w[j][k]`
        // k-ascending — the exact `coeff` chain — then the scalar tail
        // continues each lane's sum.
        let hst = bufs.hst.as_ptr();
        let hdt = bufs.hdt.as_ptr();
        let wt = bufs.wt.as_ptr();
        let mut dsv = _mm_setzero_ps();
        let mut ddv = _mm_setzero_ps();
        for k in 0..d4 {
            let wv = _mm_loadu_ps(wt.add(4 * k));
            dsv = _mm_add_ps(dsv, _mm_mul_ps(_mm_loadu_ps(hst.add(4 * k)), wv));
            ddv = _mm_add_ps(ddv, _mm_mul_ps(_mm_loadu_ps(hdt.add(4 * k)), wv));
        }
        let mut ds = [0.0f32; PAIR_BLOCK];
        let mut dd = [0.0f32; PAIR_BLOCK];
        _mm_storeu_ps(ds.as_mut_ptr(), dsv);
        _mm_storeu_ps(dd.as_mut_ptr(), ddv);
        for j in 0..PAIR_BLOCK {
            for k in d4..d {
                ds[j] += hs[j][k] * w[j][k];
                dd[j] += hd[j][k] * w[j][k];
            }
        }

        // Projection: `ps[k] = hs[k] − ds·w[k]`, straight into the
        // interleaved layout (vector head + scalar tail).
        let dsvv = _mm_loadu_ps(ds.as_ptr());
        let ddvv = _mm_loadu_ps(dd.as_ptr());
        let pst = bufs.pst.as_mut_ptr();
        let pdt = bufs.pdt.as_mut_ptr();
        for k in 0..d4 {
            let wv = _mm_loadu_ps(wt.add(4 * k));
            let hsv = _mm_loadu_ps(hst.add(4 * k));
            let hdv = _mm_loadu_ps(hdt.add(4 * k));
            _mm_storeu_ps(pst.add(4 * k), _mm_sub_ps(hsv, _mm_mul_ps(dsvv, wv)));
            _mm_storeu_ps(pdt.add(4 * k), _mm_sub_ps(hdv, _mm_mul_ps(ddvv, wv)));
        }
        for j in 0..PAIR_BLOCK {
            for k in d4..d {
                bufs.pst[4 * k + j] = hs[j][k] - ds[j] * w[j][k];
                bufs.pdt[4 * k + j] = hd[j][k] - dd[j] * w[j][k];
            }
        }
    } else {
        // Raw branch: ps = hs, pd = hd.
        transpose4(hs, &mut bufs.pst, d4);
        transpose4(hd, &mut bufs.pdt, d4);
        for j in 0..PAIR_BLOCK {
            for k in d4..d {
                bufs.pst[4 * k + j] = hs[j][k];
                bufs.pdt[4 * k + j] = hd[j][k];
            }
        }
    }
    reduce_relations4_sse(store, &bufs.pst, &bufs.pdt, d, outs);
}

/// Transposes four `d4`-prefix rows into the pair-interleaved layout
/// (`out[4k + j] = rows[j][k]`) with 4×4 SSE block transposes.
#[cfg(target_arch = "x86_64")]
unsafe fn transpose4(rows: [&[f32]; PAIR_BLOCK], out: &mut [f32], d4: usize) {
    use std::arch::x86_64::*;
    let o = out.as_mut_ptr();
    for k0 in (0..d4).step_by(4) {
        let mut r0 = _mm_loadu_ps(rows[0].as_ptr().add(k0));
        let mut r1 = _mm_loadu_ps(rows[1].as_ptr().add(k0));
        let mut r2 = _mm_loadu_ps(rows[2].as_ptr().add(k0));
        let mut r3 = _mm_loadu_ps(rows[3].as_ptr().add(k0));
        _MM_TRANSPOSE4_PS(&mut r0, &mut r1, &mut r2, &mut r3);
        _mm_storeu_ps(o.add(4 * k0), r0);
        _mm_storeu_ps(o.add(4 * k0 + 4), r1);
        _mm_storeu_ps(o.add(4 * k0 + 8), r2);
        _mm_storeu_ps(o.add(4 * k0 + 12), r3);
    }
}

/// Vector relation reduction over pair-interleaved `ps`/`pd`: for each
/// relation, lane j runs the `k`-ascending `acc += (ps·hr)·pd` chain.
/// Relations share one pass over `k` so their chains overlap in flight.
#[cfg(target_arch = "x86_64")]
unsafe fn reduce_relations4_sse(
    store: &EmbeddingStore,
    pst: &[f32],
    pdt: &[f32],
    d: usize,
    outs: &mut [f32],
) {
    use std::arch::x86_64::*;
    let d4 = d & !3;
    let n_rel = outs.len() / PAIR_BLOCK;
    let psp = pst.as_ptr();
    let pdp = pdt.as_ptr();
    let mut r0 = 0usize;
    while r0 < n_rel {
        let rn = (n_rel - r0).min(PAIR_BLOCK);
        let rows: [&[f32]; PAIR_BLOCK] =
            std::array::from_fn(|t| store.relations.row(r0 + t.min(rn - 1)));
        let mut acc = [_mm_setzero_ps(); PAIR_BLOCK];
        // `k` also strides the raw `psp`/`pdp` pointers, so a range loop
        // is the honest shape here.
        #[allow(clippy::needless_range_loop)]
        for k in 0..d4 {
            let psv = _mm_loadu_ps(psp.add(4 * k));
            let pdv = _mm_loadu_ps(pdp.add(4 * k));
            for (t, a) in acc[..rn].iter_mut().enumerate() {
                let hv = _mm_set1_ps(rows[t][k]);
                *a = _mm_add_ps(*a, _mm_mul_ps(_mm_mul_ps(psv, hv), pdv));
            }
        }
        for (t, a) in acc[..rn].iter().enumerate() {
            let mut lanes = [0.0f32; PAIR_BLOCK];
            _mm_storeu_ps(lanes.as_mut_ptr(), *a);
            for k in d4..d {
                let hrk = rows[t][k];
                for (j, lane) in lanes.iter_mut().enumerate() {
                    *lane += pst[4 * k + j] * hrk * pdt[4 * k + j];
                }
            }
            for (j, &lane) in lanes.iter().enumerate() {
                outs[j * n_rel + r0 + t] = lane;
            }
        }
        r0 += rn;
    }
}

// ---------------------------------------------------------------------------
// Hot reload
// ---------------------------------------------------------------------------

/// An atomically swappable engine reference — the hot-reload seam.
///
/// Every request path resolves its engine through a slot: [`EngineSlot::get`]
/// clones the current `Arc` under a read lock (a few nanoseconds, never
/// blocked by queries), and [`EngineSlot::swap`] installs a freshly loaded
/// checkpoint's engine under the write lock. Requests already holding the
/// old `Arc` finish against the old tables — nothing in flight is ever
/// invalidated, which is what makes reload zero-failure.
pub struct EngineSlot {
    current: RwLock<Arc<ServeEngine>>,
    reloads: AtomicU64,
}

impl EngineSlot {
    /// Wraps an engine in a slot.
    pub fn new(engine: Arc<ServeEngine>) -> Arc<Self> {
        Arc::new(EngineSlot {
            current: RwLock::new(engine),
            reloads: AtomicU64::new(0),
        })
    }

    /// The current engine (cheap: read lock + `Arc` clone).
    pub fn get(&self) -> Arc<ServeEngine> {
        Arc::clone(&self.current.read().unwrap())
    }

    /// Installs a new engine, returning the previous one. In-flight
    /// requests keep scoring against the engine they already resolved.
    pub fn swap(&self, engine: Arc<ServeEngine>) -> Arc<ServeEngine> {
        let mut cur = self.current.write().unwrap();
        self.reloads.fetch_add(1, Ordering::SeqCst);
        std::mem::replace(&mut *cur, engine)
    }

    /// Number of swaps performed (surfaced by the `health` op).
    pub fn reloads(&self) -> u64 {
        self.reloads.load(Ordering::SeqCst)
    }
}

// ---------------------------------------------------------------------------
// Micro-batching
// ---------------------------------------------------------------------------

type Waiter = mpsc::Sender<PairScores>;

struct BatcherState {
    queue: Vec<(u32, u32, Waiter)>,
    shutdown: bool,
}

struct BatcherInner {
    slot: Arc<EngineSlot>,
    state: Mutex<BatcherState>,
    cv: Condvar,
    max_pairs: usize,
    max_wait: Duration,
}

/// Collects concurrent single-pair requests into one batched kernel call.
///
/// Callers block in [`Batcher::submit`]; a dedicated worker thread drains
/// the queue once it reaches `batch_max_pairs` or the oldest request has
/// waited `batch_max_wait`, whichever comes first, and fans the per-pair
/// results back out. Under a concurrent front end this turns many
/// simultaneous point lookups into a few kernel invocations.
///
/// The batcher *degrades, never panics*: `batch_max_pairs == 0` skips the
/// worker thread entirely and scores inline, a failed worker spawn logs a
/// structured `batcher_spawn_failed` event and falls back to the same
/// inline path, and a worker that dies mid-flight turns subsequent
/// submissions inline instead of poisoning every connection.
pub struct Batcher {
    inner: Arc<BatcherInner>,
    worker: Option<std::thread::JoinHandle<()>>,
}

impl Batcher {
    /// Starts the worker thread over a private slot (no hot reload).
    pub fn new(engine: Arc<ServeEngine>, opts: &EngineOpts) -> Self {
        Self::over_slot(EngineSlot::new(engine), opts)
    }

    /// Starts the worker thread over a shared [`EngineSlot`], so a hot
    /// reload retargets queued *and* future submissions.
    pub fn over_slot(slot: Arc<EngineSlot>, opts: &EngineOpts) -> Self {
        let inner = Arc::new(BatcherInner {
            slot,
            state: Mutex::new(BatcherState {
                queue: Vec::new(),
                shutdown: false,
            }),
            cv: Condvar::new(),
            max_pairs: opts.batch_max_pairs.max(1),
            max_wait: opts.batch_max_wait,
        });
        if opts.batch_max_pairs == 0 {
            // Zero capacity: a batch of one is just an inline call; no
            // thread to spawn, no channel round-trip to pay.
            return Batcher {
                inner,
                worker: None,
            };
        }
        let worker_inner = Arc::clone(&inner);
        let worker = match std::thread::Builder::new()
            .name("prim-serve-batcher".into())
            .spawn(move || Self::run(worker_inner))
        {
            Ok(w) => Some(w),
            Err(e) => {
                // Structured serve error + inline fallback, not a panic:
                // a box that cannot spawn threads can still score.
                eprintln!(
                    "{}",
                    prim_obs::json::obj(&[
                        ("event", prim_obs::json::str("batcher_spawn_failed")),
                        ("error", prim_obs::json::str(&e.to_string())),
                    ])
                );
                None
            }
        };
        Batcher { inner, worker }
    }

    /// True when submissions score inline (zero capacity, failed spawn).
    pub fn is_inline(&self) -> bool {
        self.worker.is_none()
    }

    /// Scores one pair exactly as the worker would: a batch of one
    /// through the shared slot (cache, counters and kernels included).
    fn score_inline(&self, src: u32, dst: u32) -> PairScores {
        self.inner
            .slot
            .get()
            .batch(&[(src, dst)])
            .pop()
            .expect("batch of one returns one result")
    }

    fn run(inner: Arc<BatcherInner>) {
        loop {
            let drained: Vec<(u32, u32, Waiter)> = {
                let mut st = inner.state.lock().unwrap();
                // Sleep until there is work (or shutdown).
                while st.queue.is_empty() && !st.shutdown {
                    st = inner.cv.wait(st).unwrap();
                }
                if st.queue.is_empty() && st.shutdown {
                    return;
                }
                // Linger briefly for stragglers to form a real batch.
                let deadline = std::time::Instant::now() + inner.max_wait;
                while st.queue.len() < inner.max_pairs && !st.shutdown {
                    let now = std::time::Instant::now();
                    if now >= deadline {
                        break;
                    }
                    let (next, timeout) = inner.cv.wait_timeout(st, deadline - now).unwrap();
                    st = next;
                    if timeout.timed_out() {
                        break;
                    }
                }
                std::mem::take(&mut st.queue)
            };
            if drained.is_empty() {
                continue;
            }
            let pairs: Vec<(u32, u32)> = drained.iter().map(|&(a, b, _)| (a, b)).collect();
            let results = inner.slot.get().batch(&pairs);
            for ((_, _, tx), result) in drained.into_iter().zip(results) {
                // A dropped receiver just means the caller gave up waiting.
                let _ = tx.send(result);
            }
        }
    }

    /// Scores one pair through the micro-batch queue, blocking until the
    /// worker flushes. Inline mode (and a worker that died mid-request)
    /// scores directly instead of panicking.
    pub fn submit(&self, src: u32, dst: u32) -> PairScores {
        if self.worker.is_none() {
            return self.score_inline(src, dst);
        }
        let (tx, rx) = mpsc::channel();
        {
            let mut st = self.inner.state.lock().unwrap();
            st.queue.push((src, dst, tx));
            self.inner.cv.notify_all();
        }
        match rx.recv() {
            Ok(s) => s,
            // The worker dropped our sender without answering (it died or
            // is shutting down): degrade to the inline path.
            Err(_) => self.score_inline(src, dst),
        }
    }

    /// [`Batcher::submit`] bounded by a deadline: returns `None` when the
    /// worker has not flushed this pair's batch by then (the caller turns
    /// that into a structured `deadline_exceeded` error). The result, when
    /// it does arrive late, is dropped with the channel. Inline mode (and
    /// a dead worker) scores directly when budget remains.
    pub fn submit_deadline(&self, src: u32, dst: u32, deadline: Instant) -> Option<PairScores> {
        let inline_within_budget = || {
            if Instant::now() >= deadline {
                None
            } else {
                Some(self.score_inline(src, dst))
            }
        };
        if self.worker.is_none() {
            return inline_within_budget();
        }
        let (tx, rx) = mpsc::channel();
        {
            let mut st = self.inner.state.lock().unwrap();
            st.queue.push((src, dst, tx));
            self.inner.cv.notify_all();
        }
        let budget = deadline.saturating_duration_since(Instant::now());
        match rx.recv_timeout(budget) {
            Ok(s) => Some(s),
            Err(mpsc::RecvTimeoutError::Timeout) => None,
            Err(mpsc::RecvTimeoutError::Disconnected) => inline_within_budget(),
        }
    }

    /// The slot this batcher resolves its engine through.
    pub fn slot(&self) -> Arc<EngineSlot> {
        Arc::clone(&self.inner.slot)
    }

    /// The engine this batcher currently feeds.
    pub fn engine(&self) -> Arc<ServeEngine> {
        self.inner.slot.get()
    }
}

impl Drop for Batcher {
    fn drop(&mut self) {
        {
            let mut st = self.inner.state.lock().unwrap();
            st.shutdown = true;
            self.inner.cv.notify_all();
        }
        if let Some(w) = self.worker.take() {
            let _ = w.join();
        }
    }
}
