//! Checkpoint persistence and online inference for the PRIM reproduction.
//!
//! Training (`prim-core`) produces a model; this crate turns it into a
//! *service*. The pipeline is:
//!
//! 1. **Persist** — [`ckpt::save_checkpoint`] writes the versioned,
//!    checksummed `prim-ckpt/v1` file: config, every parameter, and the
//!    graph metadata (locations, categories, taxonomy, relation names,
//!    distance-bin edges, attributes, training edges) scoring needs, so a
//!    serving process never touches the original dataset.
//! 2. **Materialise** — [`store::EmbeddingStore`] runs the forward pass
//!    once at load time and freezes the POI/relation/bin-normal tables
//!    next to a [`prim_geo::GridIndex`]; queries never touch the autograd
//!    tape.
//! 3. **Query** — [`engine::ServeEngine`] answers point scores, batched
//!    scores and spatial top-k over the frozen tables, with a sharded LRU
//!    score cache, optional micro-batching ([`engine::Batcher`]) and
//!    `prim-obs` telemetry.
//! 4. **Speak** — [`proto`] defines a JSON-lines request/response
//!    protocol; [`server`] runs it over stdin/stdout or a TCP listener.
//!
//! Every scoring path here reproduces
//! [`prim_core::PrimModel::score_pair_eager`] *bitwise*: same operation
//! order, same f32 accumulation, independent of batch size, cache state or
//! thread count.

pub mod ann;
pub mod cache;
pub mod chaos;
pub mod ckpt;
pub mod engine;
pub mod poll;
pub mod proto;
pub mod resume;
pub mod rotate;
pub mod server;
pub mod store;

pub use ann::{AnnGraph, AnnIndex, AnnParams, Hnsw, QuantStore, QuantTier, SearchStats};
pub use cache::ScoreCache;
pub use chaos::{atomic_write, ChaosClient, ChaosIo, Fault, FaultPlan, FileIo, RealIo};
pub use ckpt::{
    checksum, decode_bytes, decode_checkpoint, encode_checkpoint, encode_checkpoint_ingest,
    load_checkpoint, load_pair_model, load_params, load_params_into, load_raw, save_checkpoint,
    save_checkpoint_indexed, save_checkpoint_with_state, save_pair_model, save_params, CkptError,
    IngestSnapshotState, ParamsCheckpoint, PrimCheckpoint, RawCheckpoint, FLAG_NO_DECAY, MAGIC,
    VERSION,
};
pub use engine::{
    score_pairs_all, AnnOpts, Batcher, EngineOpts, EngineSlot, Neighbor, PairScores, ServeEngine,
    CACHE_AUTO,
};
pub use poll::{Event, Interest, Poller};
pub use proto::{
    handle_line, handle_request, handle_request_gated, oversized_line_error, AdmissionGate,
    AdmissionPermit, GatePermit, GatedHandled, Handled, IngestBackend, ServeCtx, ServeLimits,
    Tenant, TenantSpec, DEFAULT_TENANT,
};
pub use resume::{fit_resumable, fit_resumable_hooked, ResilienceOpts, ResumableRun, ResumeError};
pub use rotate::{CkptRotator, LATEST};
pub use server::{serve_stdin, LineEvent, LineFramer, TcpServer};
pub use store::EmbeddingStore;
