//! The frozen embedding store behind every serving query.
//!
//! [`EmbeddingStore::from_model`] runs the model's forward pass exactly
//! once and snapshots the three tables eager scoring reads — POI
//! embeddings, relation-score embeddings and the normalised distance-bin
//! hyperplanes — together with the geometry needed to bin pairs and answer
//! spatial candidate queries. After construction nothing references the
//! model or the autograd tape: scoring is pure table lookups.

use crate::ann::{AnnGraph, AnnIndex, AnnParams};
use crate::ckpt::{CkptError, PrimCheckpoint};
use prim_core::{ModelInputs, PrimConfig, PrimModel};
use prim_geo::{DistanceBins, GridIndex, Location};
use prim_graph::PoiId;
use prim_tensor::Matrix;

/// Immutable, query-ready snapshot of a trained PRIM model.
#[derive(Clone)]
pub struct EmbeddingStore {
    /// `n_pois × dim` final POI embeddings (`h_final`).
    pub pois: Matrix,
    /// `(n_relations + 1) × dim` relation scoring embeddings (φ last).
    pub relations: Matrix,
    /// `n_bins × dim` unit-normalised hyperplane normals.
    pub bin_normals: Matrix,
    /// Relation vocabulary, index order matching relation ids.
    pub relation_names: Vec<String>,
    /// POI coordinates in id order.
    pub locations: Vec<Location>,
    /// Distance bins, bit-identical to the training configuration's.
    pub bins: DistanceBins,
    /// Whether scores use the distance-specific hyperplane projection.
    pub use_distance_scoring: bool,
    /// Spatial index over `locations` for radius candidate generation.
    pub grid: GridIndex,
    /// ANN index over `pois` for approximate top-k candidate generation
    /// (`None` = exact-only store; the engine scores every spatial
    /// candidate through the brute-force path).
    pub ann: Option<AnnIndex>,
}

impl EmbeddingStore {
    /// Materialises the store from a trained model. The single
    /// [`PrimModel::embed`] call here is the last time the tape runs;
    /// its output is bitwise the table that `score_pair_eager` reads.
    pub fn from_model(
        model: &PrimModel,
        inputs: &ModelInputs,
        relation_names: Vec<String>,
    ) -> Self {
        let seed = model.config().seed;
        let mut store = Self::from_model_unindexed(model, inputs, relation_names);
        store.build_ann(AnnParams {
            seed,
            ..AnnParams::default()
        });
        store
    }

    /// [`from_model`] without the ANN construction — the exact-only
    /// store the parity oracle and the fastest-loading paths use.
    pub fn from_model_unindexed(
        model: &PrimModel,
        inputs: &ModelInputs,
        relation_names: Vec<String>,
    ) -> Self {
        let cfg: &PrimConfig = model.config();
        assert_eq!(
            relation_names.len(),
            model.phi(),
            "one name per relation (φ is implicit)"
        );
        let table = model.embed(inputs);
        let locations = inputs.locations().to_vec();
        let grid = GridIndex::build(&locations, cfg.spatial_radius_km.max(0.1));
        EmbeddingStore {
            pois: table.pois,
            relations: table.relations,
            bin_normals: table.bin_normals,
            relation_names,
            locations,
            bins: cfg.bins.clone(),
            use_distance_scoring: cfg.use_distance_scoring,
            grid,
            ann: None,
        }
    }

    /// [`from_model`] reusing a persisted [`AnnGraph`] instead of
    /// reconstructing it (the quantized tier is rebuilt from the — bitwise
    /// reproduced — embeddings, which is cheap).
    pub fn from_model_with_graph(
        model: &PrimModel,
        inputs: &ModelInputs,
        relation_names: Vec<String>,
        graph: AnnGraph,
    ) -> Self {
        let mut store = Self::from_model_unindexed(model, inputs, relation_names);
        store.ann = Some(AnnIndex::from_graph(graph, &store.pois));
        store
    }

    /// Materialises a serving store straight from a decoded checkpoint:
    /// rebuild the model, embed once, and either adopt the persisted
    /// `ann.*` graph or construct a fresh index seeded from the config.
    /// This is the one loading path `prim_serve` and hot `reload` share,
    /// so the ANN index can never be stale relative to the store it is
    /// swapped in with.
    pub fn from_checkpoint(ckpt: &PrimCheckpoint) -> Result<Self, CkptError> {
        let (model, inputs) = ckpt.rebuild()?;
        let mut store = match &ckpt.ann_graph {
            Some(graph) => Self::from_model_with_graph(
                &model,
                &inputs,
                ckpt.relation_names.clone(),
                graph.clone(),
            ),
            None => Self::from_model(&model, &inputs, ckpt.relation_names.clone()),
        };
        // Ingest snapshots: the serving grid must be the *frozen*
        // projection with retirements tombstoned, not a fresh build over
        // the mutated coordinates — otherwise a recovered or promoted
        // store would resurrect retired POIs as spatial candidates (and
        // shift every within-radius distance via a recomputed ref_lat).
        if let Some(st) = &ckpt.ingest_state {
            store.grid =
                st.frozen_grid(&store.locations, model.config().spatial_radius_km.max(0.1));
        }
        Ok(store)
    }

    /// (Re)builds the ANN index over the current embedding table.
    pub fn build_ann(&mut self, params: AnnParams) {
        self.ann = Some(AnnIndex::build(&self.pois, params));
    }

    /// A fresh store for an ingest publish: scalar tables (relations, bin
    /// normals, names, bins) are shared with `self` bitwise, while the POI
    /// tables are replaced by the mutated `pois`/`locations`/`grid` and the
    /// ANN tier is brought up to date incrementally ([`AnnIndex::extended`]
    /// — sealed graph kept, quant rows in `touched` restaged, new rows
    /// appended). `touched` must not include appended rows.
    pub fn published(
        &self,
        pois: Matrix,
        locations: Vec<Location>,
        grid: GridIndex,
        touched: &[usize],
    ) -> EmbeddingStore {
        assert_eq!(pois.rows(), locations.len(), "one location per POI row");
        assert_eq!(grid.len(), locations.len(), "grid must cover every POI");
        assert_eq!(pois.cols(), self.dim(), "embedding width is fixed");
        let ann = self
            .ann
            .as_ref()
            .map(|index| index.extended(&pois, touched));
        EmbeddingStore {
            pois,
            relations: self.relations.clone(),
            bin_normals: self.bin_normals.clone(),
            relation_names: self.relation_names.clone(),
            locations,
            bins: self.bins.clone(),
            use_distance_scoring: self.use_distance_scoring,
            grid,
            ann,
        }
    }

    /// Number of POIs.
    pub fn n_pois(&self) -> usize {
        self.pois.rows()
    }

    /// Number of real relations (φ excluded).
    pub fn n_relations(&self) -> usize {
        self.relations.rows() - 1
    }

    /// Index of the no-relation class φ (always the last relation row).
    pub fn phi(&self) -> usize {
        self.n_relations()
    }

    /// Embedding width.
    pub fn dim(&self) -> usize {
        self.pois.cols()
    }

    /// Distance bin of a pair — same computation as
    /// [`ModelInputs::pair_bin`], reproduced from the snapshotted
    /// coordinates and bin edges.
    pub fn pair_bin(&self, a: PoiId, b: PoiId) -> usize {
        let d = self.locations[a.0 as usize].equirect_km(&self.locations[b.0 as usize]);
        self.bins.bin(d)
    }

    /// Relation id for a name, if it is in the vocabulary. `"phi"` and
    /// `"none"` map to the no-relation class.
    pub fn relation_index(&self, name: &str) -> Option<usize> {
        if name == "phi" || name == "none" {
            return Some(self.phi());
        }
        self.relation_names.iter().position(|n| n == name)
    }

    /// Name for a relation id (φ reads back as `"phi"`).
    pub fn relation_name(&self, rel: usize) -> &str {
        if rel == self.phi() {
            "phi"
        } else {
            &self.relation_names[rel]
        }
    }

    /// Spatial candidates within `radius_km` of a POI, nearest first with
    /// deterministic `(distance, index)` ordering.
    pub fn within_radius(&self, poi: PoiId, radius_km: f64) -> Vec<(usize, f64)> {
        self.grid.within_radius(poi.0 as usize, radius_km)
    }
}
