//! The `prim-ckpt/v1` checkpoint format.
//!
//! A checkpoint is a single binary file that carries everything scoring
//! needs and nothing training needs: the model configuration, the full
//! [`ParamStore`] contents, and (for PRIM checkpoints) enough graph
//! metadata — POI locations and categories, taxonomy structure, relation
//! vocabulary, distance-bin edges, attribute features, training edges — to
//! rebuild [`ModelInputs`] bitwise and re-materialise embeddings without
//! the original dataset object.
//!
//! ## Byte layout (all integers little-endian)
//!
//! ```text
//! offset 0   magic            8 bytes, b"PRIMCKPT"
//! offset 8   format version   u32 (currently 1)
//! offset 12  header length    u32
//! offset 16  header           UTF-8 JSON, strings and counts only
//! ...        tensor count     u64
//! per tensor:
//!            name length      u32, then the UTF-8 name
//!            flags            u8  (bit 0: excluded from weight decay)
//!            rows, cols       u64 each
//!            values           rows·cols f64, row-major
//! trailer:   checksum         u64, FNV-1a 64 over every preceding byte
//! ```
//!
//! Every floating-point quantity whose exact value matters (parameters,
//! coordinates, bin edges, config scalars) travels through the f64 tensor
//! table; the JSON header holds only strings and integer counts, so the
//! six-digit JSON number formatting can never round anything that feeds
//! scoring. `f32` parameters widen to f64 losslessly and narrow back with
//! `as f32`, which is exact for values that originated as f32 — the
//! round-trip is bitwise.

use crate::ann::{hnsw::Layer, AnnGraph, AnnParams, Hnsw, QuantTier};
use crate::chaos::atomic_write;
use prim_core::config::{GammaOp, PrimConfig, TaxonomyMode};
use prim_core::{ModelInputs, PrimModel, ResumeState};
use prim_geo::{DistanceBins, GridIndex, Location};
use prim_graph::{Edge, HeteroGraph, Poi, PoiId, RelationId, Taxonomy, TaxonomyNodeId};
use prim_nn::{AdamState, ParamStore};
use prim_obs::json;
use prim_tensor::Matrix;
use std::path::Path;

/// File magic, first 8 bytes of every checkpoint.
pub const MAGIC: &[u8; 8] = b"PRIMCKPT";

/// Current (and only) format version.
pub const VERSION: u32 = 1;

/// Structured checkpoint errors. Corrupt files surface as values, never
/// panics: the serving layer must be able to reject a bad checkpoint and
/// keep running.
#[derive(Debug)]
pub enum CkptError {
    /// Underlying filesystem error.
    Io(std::io::Error),
    /// The file ends before a section it promises; `needed` bytes were
    /// required at the point named by `context` but only `available`
    /// remained.
    Truncated {
        /// Which section the reader was decoding.
        context: &'static str,
        /// Bytes the section needed.
        needed: u64,
        /// Bytes left in the file.
        available: u64,
    },
    /// The first 8 bytes are not `b"PRIMCKPT"` — not a checkpoint at all.
    BadMagic,
    /// The file is a checkpoint, but from an unsupported format version.
    VersionSkew {
        /// Version recorded in the file.
        found: u32,
        /// Version this reader supports.
        supported: u32,
    },
    /// The trailing FNV-1a checksum does not match the file contents.
    ChecksumMismatch {
        /// Checksum stored in the trailer.
        stored: u64,
        /// Checksum recomputed over the file.
        computed: u64,
    },
    /// The bytes are intact (checksum passed) but their structure is not a
    /// valid checkpoint (bad header JSON, inconsistent tensor table, …).
    Malformed(String),
    /// The checkpoint is valid but does not fit the target model
    /// (parameter name/shape/count mismatches, wrong model kind).
    Incompatible(String),
}

impl std::fmt::Display for CkptError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CkptError::Io(e) => write!(f, "checkpoint io error: {e}"),
            CkptError::Truncated {
                context,
                needed,
                available,
            } => write!(
                f,
                "truncated checkpoint: {context} needs {needed} bytes, {available} available"
            ),
            CkptError::BadMagic => write!(f, "not a prim-ckpt file (bad magic)"),
            CkptError::VersionSkew { found, supported } => write!(
                f,
                "checkpoint version skew: file is v{found}, reader supports v{supported}"
            ),
            CkptError::ChecksumMismatch { stored, computed } => write!(
                f,
                "checkpoint checksum mismatch: stored {stored:#018x}, computed {computed:#018x}"
            ),
            CkptError::Malformed(msg) => write!(f, "malformed checkpoint: {msg}"),
            CkptError::Incompatible(msg) => write!(f, "incompatible checkpoint: {msg}"),
        }
    }
}

impl std::error::Error for CkptError {}

impl From<std::io::Error> for CkptError {
    fn from(e: std::io::Error) -> Self {
        CkptError::Io(e)
    }
}

/// FNV-1a 64-bit hash — the integrity checksum in the trailer. Exposed so
/// tests (and external tooling) can re-seal a deliberately edited file.
pub fn checksum(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// One named tensor from the checkpoint's tensor table.
#[derive(Clone, Debug)]
pub struct NamedTensor {
    /// Tensor name (parameters are prefixed `param.`).
    pub name: String,
    /// Bit 0: excluded from weight decay.
    pub flags: u8,
    /// Row count.
    pub rows: usize,
    /// Column count.
    pub cols: usize,
    /// Row-major values.
    pub values: Vec<f64>,
}

impl NamedTensor {
    fn matrix_f32(&self) -> Matrix {
        Matrix::from_vec(
            self.rows,
            self.cols,
            self.values.iter().map(|&v| v as f32).collect(),
        )
    }
}

// ---------------------------------------------------------------------------
// Low-level writer / reader
// ---------------------------------------------------------------------------

struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    fn new(header_json: &str) -> Self {
        let mut buf = Vec::with_capacity(4096);
        buf.extend_from_slice(MAGIC);
        buf.extend_from_slice(&VERSION.to_le_bytes());
        buf.extend_from_slice(&(header_json.len() as u32).to_le_bytes());
        buf.extend_from_slice(header_json.as_bytes());
        Writer { buf }
    }

    fn tensor_count(&mut self, n: usize) {
        self.buf.extend_from_slice(&(n as u64).to_le_bytes());
    }

    fn tensor(&mut self, name: &str, flags: u8, rows: usize, cols: usize, values: &[f64]) {
        assert_eq!(values.len(), rows * cols, "tensor {name} shape mismatch");
        self.buf
            .extend_from_slice(&(name.len() as u32).to_le_bytes());
        self.buf.extend_from_slice(name.as_bytes());
        self.buf.push(flags);
        self.buf.extend_from_slice(&(rows as u64).to_le_bytes());
        self.buf.extend_from_slice(&(cols as u64).to_le_bytes());
        for &v in values {
            self.buf.extend_from_slice(&v.to_le_bytes());
        }
    }

    fn seal(mut self) -> Vec<u8> {
        let sum = checksum(&self.buf);
        self.buf.extend_from_slice(&sum.to_le_bytes());
        self.buf
    }
}

struct Reader<'a> {
    data: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize, context: &'static str) -> Result<&'a [u8], CkptError> {
        if self.data.len() - self.pos < n {
            return Err(CkptError::Truncated {
                context,
                needed: n as u64,
                available: (self.data.len() - self.pos) as u64,
            });
        }
        let out = &self.data[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    fn u32(&mut self, context: &'static str) -> Result<u32, CkptError> {
        Ok(u32::from_le_bytes(
            self.take(4, context)?.try_into().unwrap(),
        ))
    }

    fn u64(&mut self, context: &'static str) -> Result<u64, CkptError> {
        Ok(u64::from_le_bytes(
            self.take(8, context)?.try_into().unwrap(),
        ))
    }
}

/// The decoded raw contents of a checkpoint file: header JSON + tensor
/// table. Both [`load_checkpoint`] and [`load_params`] build on this.
pub struct RawCheckpoint {
    /// Parsed header.
    pub header: json::Value,
    /// All tensors, in file order.
    pub tensors: Vec<NamedTensor>,
}

impl RawCheckpoint {
    /// Header string field, or a malformed-checkpoint error naming the key.
    pub fn header_str(&self, key: &str) -> Result<&str, CkptError> {
        self.header
            .get(key)
            .and_then(|v| v.as_str())
            .ok_or_else(|| CkptError::Malformed(format!("header field {key:?} missing")))
    }

    fn header_usize(&self, key: &str) -> Result<usize, CkptError> {
        self.header
            .get(key)
            .and_then(|v| v.as_f64())
            .filter(|v| v.fract() == 0.0 && *v >= 0.0)
            .map(|v| v as usize)
            .ok_or_else(|| CkptError::Malformed(format!("header count {key:?} missing")))
    }

    fn header_strings(&self, key: &str) -> Result<Vec<String>, CkptError> {
        let arr = self
            .header
            .get(key)
            .and_then(|v| v.as_arr())
            .ok_or_else(|| CkptError::Malformed(format!("header array {key:?} missing")))?;
        arr.iter()
            .map(|v| {
                v.as_str()
                    .map(str::to_string)
                    .ok_or_else(|| CkptError::Malformed(format!("non-string entry in {key:?}")))
            })
            .collect()
    }

    /// Tensor lookup by exact name.
    pub fn tensor(&self, name: &str) -> Result<&NamedTensor, CkptError> {
        self.tensors
            .iter()
            .find(|t| t.name == name)
            .ok_or_else(|| CkptError::Malformed(format!("tensor {name:?} missing")))
    }

    /// All tensors whose name starts with `param.`, prefix stripped, as
    /// `(name, value, no_decay)` in file order.
    pub fn params(&self) -> Vec<(String, Matrix, bool)> {
        self.tensors
            .iter()
            .filter_map(|t| {
                t.name
                    .strip_prefix("param.")
                    .map(|n| (n.to_string(), t.matrix_f32(), t.flags & FLAG_NO_DECAY != 0))
            })
            .collect()
    }
}

/// Flag bit: the tensor is a parameter excluded from weight decay.
pub const FLAG_NO_DECAY: u8 = 1;

/// Decodes checkpoint bytes without touching the filesystem. Exposed so
/// the fault-injection suite can decode exactly what a torn write left
/// behind, and so fuzzing can hit the decoder directly.
pub fn decode_bytes(data: &[u8]) -> Result<RawCheckpoint, CkptError> {
    decode(data)
}

fn decode(data: &[u8]) -> Result<RawCheckpoint, CkptError> {
    // Fixed prologue: magic + version. Checked before the checksum so a
    // wrong file type or a future version reads as what it is, not as
    // corruption.
    if data.len() < 8 {
        return Err(CkptError::Truncated {
            context: "magic",
            needed: 8,
            available: data.len() as u64,
        });
    }
    if &data[..8] != MAGIC {
        return Err(CkptError::BadMagic);
    }
    if data.len() < 16 {
        return Err(CkptError::Truncated {
            context: "fixed header",
            needed: 16,
            available: data.len() as u64,
        });
    }
    let version = u32::from_le_bytes(data[8..12].try_into().unwrap());
    if version != VERSION {
        return Err(CkptError::VersionSkew {
            found: version,
            supported: VERSION,
        });
    }
    // Integrity next: the trailer checksum covers everything before it.
    if data.len() < 16 + 8 {
        return Err(CkptError::Truncated {
            context: "checksum trailer",
            needed: 24,
            available: data.len() as u64,
        });
    }
    let (body, trailer) = data.split_at(data.len() - 8);
    let stored = u64::from_le_bytes(trailer.try_into().unwrap());
    let computed = checksum(body);
    if stored != computed {
        return Err(CkptError::ChecksumMismatch { stored, computed });
    }

    let mut r = Reader {
        data: body,
        pos: 12,
    };
    let header_len = r.u32("header length")? as usize;
    let header_bytes = r.take(header_len, "header")?;
    let header_text = std::str::from_utf8(header_bytes)
        .map_err(|e| CkptError::Malformed(format!("header is not UTF-8: {e}")))?;
    let header =
        json::parse(header_text).map_err(|e| CkptError::Malformed(format!("header JSON: {e}")))?;

    let n_tensors = r.u64("tensor count")? as usize;
    let mut tensors = Vec::with_capacity(n_tensors);
    for _ in 0..n_tensors {
        let name_len = r.u32("tensor name length")? as usize;
        let name = std::str::from_utf8(r.take(name_len, "tensor name")?)
            .map_err(|e| CkptError::Malformed(format!("tensor name is not UTF-8: {e}")))?
            .to_string();
        let flags = r.take(1, "tensor flags")?[0];
        let rows = r.u64("tensor rows")? as usize;
        let cols = r.u64("tensor cols")? as usize;
        let n = rows
            .checked_mul(cols)
            .ok_or_else(|| CkptError::Malformed(format!("tensor {name:?} shape overflows")))?;
        let bytes = r.take(n * 8, "tensor values")?;
        let values = bytes
            .chunks_exact(8)
            .map(|c| f64::from_le_bytes(c.try_into().unwrap()))
            .collect();
        tensors.push(NamedTensor {
            name,
            flags,
            rows,
            cols,
            values,
        });
    }
    if r.pos != body.len() {
        return Err(CkptError::Malformed(format!(
            "{} trailing bytes after tensor table",
            body.len() - r.pos
        )));
    }
    Ok(RawCheckpoint { header, tensors })
}

/// Reads and decodes a checkpoint file without interpreting its contents.
pub fn load_raw(path: impl AsRef<Path>) -> Result<RawCheckpoint, CkptError> {
    let data = std::fs::read(path)?;
    decode(&data)
}

// ---------------------------------------------------------------------------
// Config <-> tensor encoding
// ---------------------------------------------------------------------------

// `meta.config` layout, one f64 per slot. usize fields are exact below
// 2^53; f32 fields widen exactly; the u64 seed splits into two 32-bit
// halves so it survives the f64 round-trip regardless of magnitude.
const CFG_SLOTS: usize = 22;

fn encode_config(cfg: &PrimConfig) -> Vec<f64> {
    vec![
        cfg.dim as f64,
        cfg.cat_dim as f64,
        cfg.n_layers as f64,
        cfg.n_heads as f64,
        cfg.dist_feat_dim as f64,
        cfg.spatial_radius_km,
        cfg.rbf_theta,
        cfg.max_spatial_neighbors as f64,
        cfg.omega as f64,
        cfg.lr as f64,
        cfg.weight_decay as f64,
        cfg.val_check_every as f64,
        cfg.epochs as f64,
        cfg.batch_size.map_or(-1.0, |b| b as f64),
        cfg.grad_clip as f64,
        match cfg.gamma {
            GammaOp::Multiply => 0.0,
            GammaOp::Subtract => 1.0,
            GammaOp::CircularCorrelation => 2.0,
        },
        match cfg.taxonomy {
            TaxonomyMode::PathSum => 0.0,
            TaxonomyMode::Independent => 1.0,
        },
        cfg.use_spatial_context as u8 as f64,
        cfg.use_distance_scoring as u8 as f64,
        cfg.use_node_embeddings as u8 as f64,
        (cfg.seed >> 32) as f64,
        (cfg.seed & 0xffff_ffff) as f64,
    ]
}

fn decode_config(slots: &[f64], bin_edges: &[f64]) -> Result<PrimConfig, CkptError> {
    if slots.len() != CFG_SLOTS {
        return Err(CkptError::Malformed(format!(
            "meta.config has {} slots, expected {CFG_SLOTS}",
            slots.len()
        )));
    }
    let us = |i: usize| slots[i] as usize;
    Ok(PrimConfig {
        dim: us(0),
        cat_dim: us(1),
        n_layers: us(2),
        n_heads: us(3),
        dist_feat_dim: us(4),
        spatial_radius_km: slots[5],
        rbf_theta: slots[6],
        max_spatial_neighbors: us(7),
        bins: DistanceBins::new(bin_edges.to_vec()),
        omega: us(8),
        lr: slots[9] as f32,
        weight_decay: slots[10] as f32,
        val_check_every: us(11),
        epochs: us(12),
        batch_size: if slots[13] < 0.0 {
            None
        } else {
            Some(slots[13] as usize)
        },
        grad_clip: slots[14] as f32,
        gamma: match slots[15] as i64 {
            0 => GammaOp::Multiply,
            1 => GammaOp::Subtract,
            2 => GammaOp::CircularCorrelation,
            other => {
                return Err(CkptError::Malformed(format!("unknown gamma code {other}")));
            }
        },
        taxonomy: match slots[16] as i64 {
            0 => TaxonomyMode::PathSum,
            1 => TaxonomyMode::Independent,
            other => {
                return Err(CkptError::Malformed(format!(
                    "unknown taxonomy code {other}"
                )));
            }
        },
        use_spatial_context: slots[17] != 0.0,
        use_distance_scoring: slots[18] != 0.0,
        use_node_embeddings: slots[19] != 0.0,
        seed: ((slots[20] as u64) << 32) | (slots[21] as u64),
    })
}

fn push_params(w: &mut Writer, store: &ParamStore) {
    for (name, value, decays) in store.entries() {
        let flags = if decays { 0 } else { FLAG_NO_DECAY };
        let values: Vec<f64> = value.data().iter().map(|&v| v as f64).collect();
        w.tensor(
            &format!("param.{name}"),
            flags,
            value.rows(),
            value.cols(),
            &values,
        );
    }
}

// ---------------------------------------------------------------------------
// Training-state <-> tensor encoding (resumable checkpoints)
// ---------------------------------------------------------------------------

// u64 values survive the f64 tensor table by splitting into two 32-bit
// halves (same trick the config seed uses); each half is exact in f64.
fn split_u64(x: u64) -> [f64; 2] {
    [(x >> 32) as f64, (x & 0xffff_ffff) as f64]
}

fn join_u64(hi: f64, lo: f64) -> u64 {
    ((hi as u64) << 32) | (lo as u64)
}

fn widen(m: &Matrix) -> Vec<f64> {
    m.data().iter().map(|&v| v as f64).collect()
}

fn count_train_tensors(state: &ResumeState) -> usize {
    let mut n = 4 + 2 * state.adam.moments.len(); // progress, rng, adam.meta, losses
    if let Some(snap) = &state.best_snapshot {
        n += 1 + snap.len(); // best_val + snapshot matrices
    }
    n
}

fn push_train_state(w: &mut Writer, state: &ResumeState) {
    let has_best = state.best_snapshot.is_some();
    let [gs_hi, gs_lo] = split_u64(state.global_step);
    w.tensor(
        "train.progress",
        0,
        1,
        4,
        &[state.next_epoch as f64, gs_hi, gs_lo, has_best as u8 as f64],
    );
    let mut rng = Vec::with_capacity(8);
    for word in state.rng {
        rng.extend_from_slice(&split_u64(word));
    }
    w.tensor("train.rng", 0, 1, 8, &rng);
    let [t_hi, t_lo] = split_u64(state.adam.t);
    w.tensor(
        "train.adam.meta",
        0,
        1,
        3,
        &[t_hi, t_lo, state.adam.lr as f64],
    );
    let losses: Vec<f64> = state.losses.iter().map(|&l| l as f64).collect();
    w.tensor("train.losses", 0, 1, losses.len(), &losses);
    for (i, (m, v)) in state.adam.moments.iter().enumerate() {
        w.tensor(
            &format!("train.adam.m.{i:04}"),
            0,
            m.rows(),
            m.cols(),
            &widen(m),
        );
        w.tensor(
            &format!("train.adam.v.{i:04}"),
            0,
            v.rows(),
            v.cols(),
            &widen(v),
        );
    }
    if let Some(snap) = &state.best_snapshot {
        w.tensor(
            "train.best_val",
            0,
            1,
            1,
            &[state.best_val.unwrap_or(f64::NEG_INFINITY)],
        );
        for (i, m) in snap.iter().enumerate() {
            w.tensor(
                &format!("train.best.{i:04}"),
                0,
                m.rows(),
                m.cols(),
                &widen(m),
            );
        }
    }
}

// ---------------------------------------------------------------------------
// ANN graph <-> tensor encoding
// ---------------------------------------------------------------------------

// `ann.meta` layout, one f64 per slot.
const ANN_META_SLOTS: usize = 8;

fn count_ann_tensors(graph: &AnnGraph) -> usize {
    // meta + levels + (offsets, targets) per layer.
    2 + 2 * graph.hnsw.layers.len()
}

fn push_ann_graph(w: &mut Writer, graph: &AnnGraph) {
    let p = &graph.params;
    let h = &graph.hnsw;
    let [seed_hi, seed_lo] = split_u64(p.seed);
    w.tensor(
        "ann.meta",
        0,
        1,
        ANN_META_SLOTS,
        &[
            p.m as f64,
            p.ef_construction as f64,
            p.ef_search as f64,
            seed_hi,
            seed_lo,
            match p.tier {
                QuantTier::Int8 => 0.0,
                QuantTier::F16 => 1.0,
            },
            h.entry as f64,
            h.layers.len() as f64,
        ],
    );
    let levels: Vec<f64> = h.levels.iter().map(|&l| l as f64).collect();
    w.tensor("ann.levels", 0, levels.len(), 1, &levels);
    for (l, layer) in h.layers.iter().enumerate() {
        let offsets: Vec<f64> = layer.offsets.iter().map(|&o| o as f64).collect();
        w.tensor(
            &format!("ann.layer.{l}.offsets"),
            0,
            1,
            offsets.len(),
            &offsets,
        );
        let targets: Vec<f64> = layer.targets.iter().map(|&t| t as f64).collect();
        w.tensor(
            &format!("ann.layer.{l}.targets"),
            0,
            1,
            targets.len(),
            &targets,
        );
    }
}

fn decode_ann_graph(raw: &RawCheckpoint) -> Result<Option<AnnGraph>, CkptError> {
    let Some(meta) = raw.tensors.iter().find(|t| t.name == "ann.meta") else {
        return Ok(None);
    };
    if meta.values.len() != ANN_META_SLOTS {
        return Err(CkptError::Malformed(format!(
            "ann.meta has {} slots, expected {ANN_META_SLOTS}",
            meta.values.len()
        )));
    }
    let params = AnnParams {
        m: meta.values[0] as usize,
        ef_construction: meta.values[1] as usize,
        ef_search: meta.values[2] as usize,
        seed: join_u64(meta.values[3], meta.values[4]),
        tier: match meta.values[5] as i64 {
            0 => QuantTier::Int8,
            1 => QuantTier::F16,
            other => {
                return Err(CkptError::Malformed(format!(
                    "unknown ann quant tier code {other}"
                )));
            }
        },
    };
    let entry = meta.values[6] as u32;
    let n_layers = meta.values[7] as usize;

    let levels_t = raw.tensor("ann.levels")?;
    let levels: Vec<u8> = levels_t.values.iter().map(|&v| v as u8).collect();
    let n = levels.len();

    let mut layers = Vec::with_capacity(n_layers);
    for l in 0..n_layers {
        let name_off = format!("ann.layer.{l}.offsets");
        let off_t = raw
            .tensors
            .iter()
            .find(|t| t.name == name_off)
            .ok_or_else(|| CkptError::Malformed(format!("missing tensor {name_off:?}")))?;
        if off_t.values.len() != n + 1 {
            return Err(CkptError::Malformed(format!(
                "{name_off} has {} slots for {n} nodes",
                off_t.values.len()
            )));
        }
        let offsets: Vec<u32> = off_t.values.iter().map(|&v| v as u32).collect();
        let name_tgt = format!("ann.layer.{l}.targets");
        let tgt_t = raw
            .tensors
            .iter()
            .find(|t| t.name == name_tgt)
            .ok_or_else(|| CkptError::Malformed(format!("missing tensor {name_tgt:?}")))?;
        let targets: Vec<u32> = tgt_t.values.iter().map(|&v| v as u32).collect();
        let end = *offsets.last().unwrap_or(&0) as usize;
        if end != targets.len() || !offsets.windows(2).all(|w| w[0] <= w[1]) {
            return Err(CkptError::Malformed(format!(
                "ann layer {l} CSR is inconsistent ({} targets, final offset {end})",
                targets.len()
            )));
        }
        if targets.iter().any(|&t| t as usize >= n.max(1)) {
            return Err(CkptError::Malformed(format!(
                "ann layer {l} links past the {n}-node table"
            )));
        }
        layers.push(Layer { offsets, targets });
    }
    if n > 0 && entry as usize >= n {
        return Err(CkptError::Malformed(format!(
            "ann entry {entry} past the {n}-node table"
        )));
    }
    Ok(Some(AnnGraph {
        params,
        hnsw: Hnsw {
            m: params.m.max(2) as u32,
            entry,
            levels,
            layers,
        },
    }))
}

fn decode_train_state(raw: &RawCheckpoint) -> Result<Option<ResumeState>, CkptError> {
    let Some(progress) = raw.tensors.iter().find(|t| t.name == "train.progress") else {
        return Ok(None);
    };
    if progress.values.len() != 4 {
        return Err(CkptError::Malformed(format!(
            "train.progress has {} slots, expected 4",
            progress.values.len()
        )));
    }
    let next_epoch = progress.values[0] as usize;
    let global_step = join_u64(progress.values[1], progress.values[2]);
    let has_best = progress.values[3] != 0.0;

    let rng_t = raw.tensor("train.rng")?;
    if rng_t.values.len() != 8 {
        return Err(CkptError::Malformed(format!(
            "train.rng has {} slots, expected 8",
            rng_t.values.len()
        )));
    }
    let mut rng = [0u64; 4];
    for (i, word) in rng.iter_mut().enumerate() {
        *word = join_u64(rng_t.values[2 * i], rng_t.values[2 * i + 1]);
    }

    let meta = raw.tensor("train.adam.meta")?;
    if meta.values.len() != 3 {
        return Err(CkptError::Malformed(format!(
            "train.adam.meta has {} slots, expected 3",
            meta.values.len()
        )));
    }
    let t = join_u64(meta.values[0], meta.values[1]);
    let lr = meta.values[2] as f32;

    let losses: Vec<f32> = raw
        .tensor("train.losses")?
        .values
        .iter()
        .map(|&l| l as f32)
        .collect();

    let collect_indexed = |prefix: &str| -> Vec<Matrix> {
        let mut out = Vec::new();
        loop {
            let name = format!("{prefix}{:04}", out.len());
            match raw.tensors.iter().find(|t| t.name == name) {
                Some(t) => out.push(t.matrix_f32()),
                None => break,
            }
        }
        out
    };
    let ms = collect_indexed("train.adam.m.");
    let vs = collect_indexed("train.adam.v.");
    if ms.len() != vs.len() {
        return Err(CkptError::Malformed(format!(
            "{} first moments but {} second moments",
            ms.len(),
            vs.len()
        )));
    }
    let moments: Vec<(Matrix, Matrix)> = ms.into_iter().zip(vs).collect();

    let (best_val, best_snapshot) = if has_best {
        let bv = raw.tensor("train.best_val")?;
        if bv.values.len() != 1 {
            return Err(CkptError::Malformed("train.best_val must be 1x1".into()));
        }
        let snap = collect_indexed("train.best.");
        if snap.is_empty() {
            return Err(CkptError::Malformed(
                "best snapshot flagged but no train.best tensors".into(),
            ));
        }
        (Some(bv.values[0]), Some(snap))
    } else {
        (None, None)
    };

    Ok(Some(ResumeState {
        next_epoch,
        global_step,
        rng,
        adam: AdamState { t, lr, moments },
        losses,
        best_val,
        best_snapshot,
    }))
}

// ---------------------------------------------------------------------------
// Ingest snapshot state (the `ingest.*` section)
// ---------------------------------------------------------------------------

/// `[seq_hi, seq_lo, base_hi, base_lo, n_retired]`.
const INGEST_META_SLOTS: usize = 5;

/// Ingest continuation state carried by snapshot checkpoints: the WAL
/// high-water sequence number the snapshot covers (every mutation with
/// seq ≤ `snapshot_seq` is baked into the stored graph), plus the
/// provenance needed to reconstruct the *frozen-projection* spatial grid
/// bitwise — the grid's equirectangular reference latitude is anchored at
/// the original `base_pois` training population, later POIs were
/// [`GridIndex::insert`]ed under that frozen projection, and `retired`
/// ids were tombstoned.
#[derive(Clone, Debug, PartialEq)]
pub struct IngestSnapshotState {
    /// Highest WAL seq whose effect is baked into this checkpoint.
    pub snapshot_seq: u64,
    /// POI count of the original training population (grid build set).
    pub base_pois: u64,
    /// Retired POI ids, ascending.
    pub retired: Vec<u32>,
}

impl IngestSnapshotState {
    /// Reconstructs the frozen-projection grid over `locations`: build
    /// over the first `base_pois` coordinates (fixing the reference
    /// latitude exactly as the live pipeline did), insert the rest in id
    /// order, then tombstone the retired ids. Insert and retire commute,
    /// so this is bitwise the grid the saving process was serving from.
    pub fn frozen_grid(&self, locations: &[Location], cell_km: f64) -> GridIndex {
        let base = (self.base_pois as usize).min(locations.len());
        let mut grid = GridIndex::build(&locations[..base], cell_km);
        for loc in &locations[base..] {
            grid.insert(*loc);
        }
        for &p in &self.retired {
            grid.retire(p as usize);
        }
        grid
    }
}

fn count_ingest_tensors(state: &IngestSnapshotState) -> usize {
    1 + usize::from(!state.retired.is_empty())
}

fn push_ingest_state(w: &mut Writer, state: &IngestSnapshotState) {
    let [seq_hi, seq_lo] = split_u64(state.snapshot_seq);
    let [base_hi, base_lo] = split_u64(state.base_pois);
    let meta = [seq_hi, seq_lo, base_hi, base_lo, state.retired.len() as f64];
    w.tensor("ingest.meta", 0, 1, INGEST_META_SLOTS, &meta);
    if !state.retired.is_empty() {
        let ids: Vec<f64> = state.retired.iter().map(|&p| p as f64).collect();
        w.tensor("ingest.retired", 0, 1, ids.len(), &ids);
    }
}

fn decode_ingest_state(
    raw: &RawCheckpoint,
    n_pois: usize,
) -> Result<Option<IngestSnapshotState>, CkptError> {
    let Ok(meta) = raw.tensor("ingest.meta") else {
        return Ok(None);
    };
    if meta.values.len() != INGEST_META_SLOTS {
        return Err(CkptError::Malformed(format!(
            "ingest.meta has {} slots, expected {INGEST_META_SLOTS}",
            meta.values.len()
        )));
    }
    let snapshot_seq = join_u64(meta.values[0], meta.values[1]);
    let base_pois = join_u64(meta.values[2], meta.values[3]);
    let n_retired = meta.values[4];
    if n_retired < 0.0 || n_retired.fract() != 0.0 || n_retired as usize > n_pois {
        return Err(CkptError::Malformed(format!(
            "ingest.meta retired count {n_retired} is not a valid POI count"
        )));
    }
    if base_pois as usize > n_pois {
        return Err(CkptError::Malformed(format!(
            "ingest.meta base_pois {base_pois} exceeds n_pois {n_pois}"
        )));
    }
    let n_retired = n_retired as usize;
    let mut retired = Vec::with_capacity(n_retired);
    if n_retired > 0 {
        let t = raw.tensor("ingest.retired")?;
        if t.values.len() != n_retired {
            return Err(CkptError::Malformed(format!(
                "ingest.retired holds {} ids, ingest.meta promised {n_retired}",
                t.values.len()
            )));
        }
        let mut prev: i64 = -1;
        for &v in &t.values {
            if v < 0.0 || v.fract() != 0.0 || v as usize >= n_pois {
                return Err(CkptError::Malformed(format!(
                    "ingest.retired id {v} out of range for {n_pois} POIs"
                )));
            }
            if (v as i64) <= prev {
                return Err(CkptError::Malformed(
                    "ingest.retired ids must be strictly ascending".into(),
                ));
            }
            prev = v as i64;
            retired.push(v as u32);
        }
    }
    Ok(Some(IngestSnapshotState {
        snapshot_seq,
        base_pois,
        retired,
    }))
}

// ---------------------------------------------------------------------------
// PRIM checkpoints
// ---------------------------------------------------------------------------

/// A fully decoded PRIM checkpoint: configuration, rebuilt graph metadata
/// and the parameter table, ready to be turned back into a scoring model
/// with [`PrimCheckpoint::rebuild`].
pub struct PrimCheckpoint {
    /// Run label recorded at save time.
    pub run: String,
    /// Model configuration (bins included, bit-exact).
    pub config: PrimConfig,
    /// Relation vocabulary, index order matching relation ids.
    pub relation_names: Vec<String>,
    /// The graph whose edges were visible at save time (the training
    /// edges), rebuilt POI-for-POI.
    pub graph: HeteroGraph,
    /// The category taxonomy, rebuilt node-for-node.
    pub taxonomy: Taxonomy,
    /// POI attribute features.
    pub attrs: Matrix,
    /// `(name, value)` parameter pairs in registration order.
    pub params: Vec<(String, Matrix)>,
    /// Mid-run training state, present when the checkpoint was written by
    /// the resumable trainer (absent in scoring-only checkpoints).
    pub train_state: Option<ResumeState>,
    /// Persisted ANN graph (`ann.*` tensors), present when the checkpoint
    /// was written by [`save_checkpoint_indexed`] — serving loads it
    /// instead of rebuilding the index.
    pub ann_graph: Option<AnnGraph>,
    /// Ingest continuation state (`ingest.*` tensors), present when the
    /// checkpoint is a streaming-ingest snapshot: the WAL high-water seq
    /// it covers plus the frozen-projection grid provenance. Loaders that
    /// predate streaming ingest ignore the extra tensors.
    pub ingest_state: Option<IngestSnapshotState>,
}

impl PrimCheckpoint {
    /// Rebuilds a scoring-ready model: deterministic [`ModelInputs`] from
    /// the stored graph metadata plus a [`PrimModel`] whose parameters are
    /// the checkpointed values. With the same binary on the same hardware,
    /// `rebuild` followed by `embed` is bitwise identical to the saving
    /// process's embeddings.
    ///
    /// For ingest snapshots the spatial structure is rebuilt over the
    /// snapshot's *frozen* grid — projection anchored at the original
    /// (train-time) POI population, retirements tombstoned — instead of
    /// re-deriving a projection from the mutated coordinates, so the
    /// bitwise guarantee extends to stores that grew after training.
    pub fn rebuild(&self) -> Result<(PrimModel, ModelInputs), CkptError> {
        let inputs = match &self.ingest_state {
            Some(st) => {
                let locations: Vec<Location> =
                    self.graph.pois().iter().map(|p| p.location).collect();
                let grid = st.frozen_grid(&locations, self.config.spatial_radius_km.max(1e-6));
                ModelInputs::build_with_grid(
                    &self.graph,
                    &self.taxonomy,
                    &self.attrs,
                    self.graph.edges(),
                    &grid,
                    &self.config,
                )
            }
            None => ModelInputs::build(
                &self.graph,
                &self.taxonomy,
                &self.attrs,
                self.graph.edges(),
                None,
                &self.config,
            ),
        };
        let mut model = PrimModel::new(self.config.clone(), &inputs);
        model
            .params_mut()
            .import_named(&self.params)
            .map_err(CkptError::Incompatible)?;
        Ok((model, inputs))
    }
}

/// Serialises a trained PRIM model plus the graph metadata scoring needs.
///
/// `graph` must be the graph the model was trained against (its edge list
/// is stored as the serving-time message-passing structure); `taxonomy`,
/// `attrs` and `relation_names` come from the same dataset. The write is
/// atomic (temp sibling + rename), so a crash mid-save can never leave a
/// truncated checkpoint at `path`.
pub fn save_checkpoint(
    path: impl AsRef<Path>,
    run: &str,
    model: &PrimModel,
    graph: &HeteroGraph,
    taxonomy: &Taxonomy,
    attrs: &Matrix,
    relation_names: &[String],
) -> Result<(), CkptError> {
    let bytes = encode_checkpoint(
        run,
        model,
        graph,
        taxonomy,
        attrs,
        relation_names,
        None,
        None,
    );
    atomic_write(path.as_ref(), &bytes)?;
    Ok(())
}

/// [`save_checkpoint`] carrying a prebuilt ANN graph as `ann.*` tensors,
/// so serving processes load the index instead of paying the O(n·ef)
/// construction again. Loaders that predate the ANN layer ignore the
/// extra tensors (same pattern as `train.*`).
#[allow(clippy::too_many_arguments)] // full model + persistence context
pub fn save_checkpoint_indexed(
    path: impl AsRef<Path>,
    run: &str,
    model: &PrimModel,
    graph: &HeteroGraph,
    taxonomy: &Taxonomy,
    attrs: &Matrix,
    relation_names: &[String],
    ann: &AnnGraph,
) -> Result<(), CkptError> {
    let bytes = encode_checkpoint(
        run,
        model,
        graph,
        taxonomy,
        attrs,
        relation_names,
        None,
        Some(ann),
    );
    atomic_write(path.as_ref(), &bytes)?;
    Ok(())
}

/// [`save_checkpoint`] carrying a mid-run [`ResumeState`] (optimiser
/// moments, RNG, epoch bookkeeping) so training can continue
/// bitwise-identically from the file. Scoring-side loaders ignore the
/// extra `train.*` tensors.
#[allow(clippy::too_many_arguments)] // full training + persistence context
pub fn save_checkpoint_with_state(
    path: impl AsRef<Path>,
    run: &str,
    model: &PrimModel,
    graph: &HeteroGraph,
    taxonomy: &Taxonomy,
    attrs: &Matrix,
    relation_names: &[String],
    state: &ResumeState,
) -> Result<(), CkptError> {
    let bytes = encode_checkpoint(
        run,
        model,
        graph,
        taxonomy,
        attrs,
        relation_names,
        Some(state),
        None,
    );
    atomic_write(path.as_ref(), &bytes)?;
    Ok(())
}

/// Encodes a PRIM checkpoint (optionally resumable, optionally carrying a
/// prebuilt ANN graph) to bytes without touching the filesystem — the
/// rotation layer owns how bytes land on disk.
#[allow(clippy::too_many_arguments)] // full model + persistence context
pub fn encode_checkpoint(
    run: &str,
    model: &PrimModel,
    graph: &HeteroGraph,
    taxonomy: &Taxonomy,
    attrs: &Matrix,
    relation_names: &[String],
    train_state: Option<&ResumeState>,
    ann: Option<&AnnGraph>,
) -> Vec<u8> {
    encode_checkpoint_ingest(
        run,
        model,
        graph,
        taxonomy,
        attrs,
        relation_names,
        train_state,
        ann,
        None,
    )
}

/// [`encode_checkpoint`] additionally carrying ingest continuation state
/// as `ingest.*` tensors — the snapshot format streaming ingest persists
/// on every flush and replication bootstraps followers from.
#[allow(clippy::too_many_arguments)] // full model + persistence context
pub fn encode_checkpoint_ingest(
    run: &str,
    model: &PrimModel,
    graph: &HeteroGraph,
    taxonomy: &Taxonomy,
    attrs: &Matrix,
    relation_names: &[String],
    train_state: Option<&ResumeState>,
    ann: Option<&AnnGraph>,
    ingest: Option<&IngestSnapshotState>,
) -> Vec<u8> {
    let cfg = model.config();
    let names: Vec<String> = relation_names.iter().map(|n| json::str(n)).collect();
    let tax_names: Vec<String> = (0..taxonomy.num_nodes())
        .map(|i| json::str(taxonomy.name(TaxonomyNodeId(i as u32))))
        .collect();
    let header = json::obj(&[
        ("format", json::str("prim-ckpt")),
        ("kind", json::str("prim")),
        ("run", json::str(run)),
        ("n_pois", json::int(graph.num_pois() as u64)),
        ("n_relations", json::int(graph.num_relations() as u64)),
        ("n_taxonomy_nodes", json::int(taxonomy.num_nodes() as u64)),
        ("n_categories", json::int(taxonomy.num_categories() as u64)),
        ("relations", json::arr(&names)),
        ("taxonomy_names", json::arr(&tax_names)),
    ]);

    let mut w = Writer::new(&header);
    let train_tensors = train_state.map_or(0, count_train_tensors);
    let ann_tensors = ann.map_or(0, count_ann_tensors);
    let ingest_tensors = ingest.map_or(0, count_ingest_tensors);
    w.tensor_count(8 + model.params().len() + train_tensors + ann_tensors + ingest_tensors);
    w.tensor("meta.config", 0, 1, CFG_SLOTS, &encode_config(cfg));
    w.tensor(
        "meta.bin_edges",
        0,
        1,
        cfg.bins.edges().len(),
        cfg.bins.edges(),
    );

    let n = graph.num_pois();
    let mut loc = Vec::with_capacity(n * 2);
    let mut cat = Vec::with_capacity(n);
    for p in graph.pois() {
        loc.push(p.location.lon);
        loc.push(p.location.lat);
        cat.push(p.category.0 as f64);
    }
    w.tensor("graph.locations", 0, n, 2, &loc);
    w.tensor("graph.category", 0, n, 1, &cat);

    let parents: Vec<f64> = (0..taxonomy.num_nodes())
        .map(|i| {
            taxonomy
                .parent(TaxonomyNodeId(i as u32))
                .map_or(-1.0, |p| p.0 as f64)
        })
        .collect();
    w.tensor("graph.tax_parent", 0, taxonomy.num_nodes(), 1, &parents);
    let leaves: Vec<f64> = (0..taxonomy.num_categories())
        .map(|c| taxonomy.leaf_node(prim_graph::CategoryId(c as u32)).0 as f64)
        .collect();
    w.tensor("graph.tax_leaf", 0, taxonomy.num_categories(), 1, &leaves);

    let mut edges = Vec::with_capacity(graph.num_edges() * 3);
    for e in graph.edges() {
        edges.push(e.src.0 as f64);
        edges.push(e.dst.0 as f64);
        edges.push(e.rel.0 as f64);
    }
    w.tensor("graph.edges", 0, graph.num_edges(), 3, &edges);

    let attr_vals: Vec<f64> = attrs.data().iter().map(|&v| v as f64).collect();
    w.tensor("graph.attrs", 0, attrs.rows(), attrs.cols(), &attr_vals);

    push_params(&mut w, model.params());
    if let Some(state) = train_state {
        push_train_state(&mut w, state);
    }
    if let Some(graph) = ann {
        push_ann_graph(&mut w, graph);
    }
    if let Some(state) = ingest {
        push_ingest_state(&mut w, state);
    }
    w.seal()
}

/// Loads and fully decodes a PRIM checkpoint written by
/// [`save_checkpoint`].
pub fn load_checkpoint(path: impl AsRef<Path>) -> Result<PrimCheckpoint, CkptError> {
    decode_checkpoint(load_raw(path)?)
}

/// Interprets an already-decoded [`RawCheckpoint`] as a PRIM checkpoint —
/// the second half of [`load_checkpoint`], split out so callers that got
/// their bytes elsewhere (rotation recovery, fault-injection tests) share
/// the exact same validation.
pub fn decode_checkpoint(raw: RawCheckpoint) -> Result<PrimCheckpoint, CkptError> {
    if raw.header_str("kind")? != "prim" {
        return Err(CkptError::Incompatible(format!(
            "expected a prim checkpoint, found kind {:?}",
            raw.header_str("kind")?
        )));
    }
    let run = raw.header_str("run")?.to_string();
    let n_pois = raw.header_usize("n_pois")?;
    let n_relations = raw.header_usize("n_relations")?;
    let n_nodes = raw.header_usize("n_taxonomy_nodes")?;
    let n_categories = raw.header_usize("n_categories")?;
    let relation_names = raw.header_strings("relations")?;
    let tax_names = raw.header_strings("taxonomy_names")?;
    if relation_names.len() != n_relations {
        return Err(CkptError::Malformed(format!(
            "{} relation names for {n_relations} relations",
            relation_names.len()
        )));
    }
    if tax_names.len() != n_nodes {
        return Err(CkptError::Malformed(format!(
            "{} taxonomy names for {n_nodes} nodes",
            tax_names.len()
        )));
    }

    let config = decode_config(
        &raw.tensor("meta.config")?.values,
        &raw.tensor("meta.bin_edges")?.values,
    )?;

    // Taxonomy: node ids are assigned sequentially by add_* calls and
    // leaf ids in add_category order, so replaying the parent array in
    // ascending node order reproduces both id spaces exactly.
    let parents = &raw.tensor("graph.tax_parent")?.values;
    let leaves = &raw.tensor("graph.tax_leaf")?.values;
    if parents.len() != n_nodes || leaves.len() != n_categories {
        return Err(CkptError::Malformed(
            "taxonomy tensor sizes disagree with header counts".into(),
        ));
    }
    let leaf_set: std::collections::HashSet<u32> = leaves.iter().map(|&v| v as u32).collect();
    let mut taxonomy = Taxonomy::new(tax_names[0].clone());
    for (id, name) in tax_names.iter().enumerate().skip(1) {
        let parent = parents[id];
        if parent < 0.0 || parent as usize >= id {
            return Err(CkptError::Malformed(format!(
                "taxonomy node {id} has invalid parent {parent}"
            )));
        }
        let parent = TaxonomyNodeId(parent as u32);
        if leaf_set.contains(&(id as u32)) {
            taxonomy.add_category(parent, name.clone());
        } else {
            taxonomy.add_hypernym(parent, name.clone());
        }
    }
    for (c, &node) in leaves.iter().enumerate() {
        if taxonomy.leaf_node(prim_graph::CategoryId(c as u32)).0 != node as u32 {
            return Err(CkptError::Malformed(format!(
                "taxonomy leaf {c} did not rebuild to node {node}"
            )));
        }
    }

    let loc = raw.tensor("graph.locations")?;
    let cat = raw.tensor("graph.category")?;
    if loc.rows != n_pois || loc.cols != 2 || cat.rows != n_pois {
        return Err(CkptError::Malformed(
            "location/category tensor sizes disagree with header counts".into(),
        ));
    }
    let pois: Vec<Poi> = (0..n_pois)
        .map(|i| Poi {
            location: Location::new(loc.values[2 * i], loc.values[2 * i + 1]),
            category: prim_graph::CategoryId(cat.values[i] as u32),
        })
        .collect();
    let mut graph = HeteroGraph::new(pois, n_relations);
    let et = raw.tensor("graph.edges")?;
    if et.cols != 3 {
        return Err(CkptError::Malformed(
            "graph.edges must have 3 columns".into(),
        ));
    }
    graph.add_edges(et.values.chunks_exact(3).map(|c| {
        Edge::new(
            PoiId(c[0] as u32),
            PoiId(c[1] as u32),
            RelationId(c[2] as u8),
        )
    }));

    let at = raw.tensor("graph.attrs")?;
    if at.rows != n_pois {
        return Err(CkptError::Malformed(
            "graph.attrs row count disagrees with n_pois".into(),
        ));
    }
    let attrs = at.matrix_f32();

    let params: Vec<(String, Matrix)> = raw.params().into_iter().map(|(n, m, _)| (n, m)).collect();
    if params.is_empty() {
        return Err(CkptError::Malformed(
            "checkpoint holds no parameters".into(),
        ));
    }

    let train_state = decode_train_state(&raw)?;
    let ann_graph = decode_ann_graph(&raw)?;
    let ingest_state = decode_ingest_state(&raw, n_pois)?;

    Ok(PrimCheckpoint {
        run,
        config,
        relation_names,
        graph,
        taxonomy,
        attrs,
        params,
        train_state,
        ann_graph,
        ingest_state,
    })
}

// ---------------------------------------------------------------------------
// Generic parameter checkpoints (the baselines' model families)
// ---------------------------------------------------------------------------

/// A decoded parameter-only checkpoint (`kind = "params"`).
pub struct ParamsCheckpoint {
    /// Model family name recorded at save time (e.g. `"GCN"`).
    pub model: String,
    /// Run label recorded at save time.
    pub run: String,
    /// `(name, value, no_decay)` entries in registration order.
    pub entries: Vec<(String, Matrix, bool)>,
}

/// Serialises any [`ParamStore`] — the persistence half every baseline
/// model family shares (they all train through the same store).
pub fn save_params(
    path: impl AsRef<Path>,
    model: &str,
    run: &str,
    store: &ParamStore,
) -> Result<(), CkptError> {
    let header = json::obj(&[
        ("format", json::str("prim-ckpt")),
        ("kind", json::str("params")),
        ("model", json::str(model)),
        ("run", json::str(run)),
    ]);
    let mut w = Writer::new(&header);
    w.tensor_count(store.len());
    push_params(&mut w, store);
    atomic_write(path.as_ref(), &w.seal())?;
    Ok(())
}

/// Loads a parameter-only checkpoint written by [`save_params`].
pub fn load_params(path: impl AsRef<Path>) -> Result<ParamsCheckpoint, CkptError> {
    let raw = load_raw(path)?;
    if raw.header_str("kind")? != "params" {
        return Err(CkptError::Incompatible(format!(
            "expected a params checkpoint, found kind {:?}",
            raw.header_str("kind")?
        )));
    }
    Ok(ParamsCheckpoint {
        model: raw.header_str("model")?.to_string(),
        run: raw.header_str("run")?.to_string(),
        entries: raw.params(),
    })
}

/// Restores a parameter-only checkpoint into an existing store. The store
/// must already have the model's registration structure (same names,
/// shapes and order) — construct the model first, then load into it.
pub fn load_params_into(
    path: impl AsRef<Path>,
    expect_model: &str,
    store: &mut ParamStore,
) -> Result<(), CkptError> {
    let ckpt = load_params(path)?;
    if ckpt.model != expect_model {
        return Err(CkptError::Incompatible(format!(
            "checkpoint is for model {:?}, expected {expect_model:?}",
            ckpt.model
        )));
    }
    let entries: Vec<(String, Matrix)> = ckpt.entries.into_iter().map(|(n, m, _)| (n, m)).collect();
    store
        .import_named(&entries)
        .map_err(CkptError::Incompatible)
}

/// Persists any baseline [`prim_baselines::PairModel`] — the same API the
/// shared trainer's models flow through, so every family checkpoints
/// identically.
pub fn save_pair_model<M: prim_baselines::PairModel>(
    path: impl AsRef<Path>,
    run: &str,
    model: &M,
) -> Result<(), CkptError> {
    save_params(path, model.name(), run, model.store())
}

/// Restores a baseline [`prim_baselines::PairModel`] saved with
/// [`save_pair_model`], verifying the model family matches.
pub fn load_pair_model<M: prim_baselines::PairModel>(
    path: impl AsRef<Path>,
    model: &mut M,
) -> Result<(), CkptError> {
    let name = model.name();
    load_params_into(path, name, model.store_mut())
}
