//! Checkpoint robustness: bitwise round-trips and structured corruption
//! errors (truncation, flipped bytes, version skew) — never panics.

use prim_baselines::encoders::{EncoderModel, GcnEncoder};
use prim_baselines::{BaselineConfig, PairModel};
use prim_core::{fit, ModelInputs, PrimConfig, PrimModel};
use prim_data::{Dataset, Scale};
use prim_graph::PoiId;
use prim_serve::{
    checksum, load_checkpoint, load_pair_model, load_raw, save_checkpoint, save_pair_model,
    save_params, CkptError,
};

fn tmp(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join("prim_serve_ckpt_tests");
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(name)
}

fn tiny_trained() -> (Dataset, PrimConfig, ModelInputs, PrimModel) {
    let ds = Dataset::beijing(Scale::Quick).subsample(0.12, 7);
    let cfg = PrimConfig {
        dim: 8,
        cat_dim: 4,
        epochs: 4,
        val_check_every: 0,
        ..PrimConfig::quick()
    };
    let inputs = ModelInputs::build(
        &ds.graph,
        &ds.taxonomy,
        &ds.attrs,
        ds.graph.edges(),
        None,
        &cfg,
    );
    let mut model = PrimModel::new(cfg.clone(), &inputs);
    fit(&mut model, &inputs, &ds.graph, ds.graph.edges(), None, None);
    (ds, cfg, inputs, model)
}

fn save_tiny(
    name: &str,
) -> (
    Dataset,
    PrimConfig,
    ModelInputs,
    PrimModel,
    std::path::PathBuf,
) {
    let (ds, cfg, inputs, model) = tiny_trained();
    let path = tmp(name);
    save_checkpoint(
        &path,
        "test-run",
        &model,
        &ds.graph,
        &ds.taxonomy,
        &ds.attrs,
        &ds.relation_names,
    )
    .unwrap();
    (ds, cfg, inputs, model, path)
}

#[test]
fn round_trip_is_bitwise_per_parameter() {
    let (ds, cfg, _inputs, model, path) = save_tiny("roundtrip.ckpt");
    let ckpt = load_checkpoint(&path).unwrap();

    assert_eq!(ckpt.run, "test-run");
    assert_eq!(ckpt.relation_names, ds.relation_names);
    assert_eq!(ckpt.graph.num_pois(), ds.graph.num_pois());
    assert_eq!(ckpt.graph.num_edges(), ds.graph.num_edges());
    assert_eq!(ckpt.graph.edges(), ds.graph.edges());
    assert_eq!(ckpt.taxonomy.num_nodes(), ds.taxonomy.num_nodes());
    assert_eq!(ckpt.taxonomy.num_categories(), ds.taxonomy.num_categories());
    assert_eq!(ckpt.config.seed, cfg.seed);
    assert_eq!(ckpt.config.bins.edges(), cfg.bins.edges());
    assert_eq!(ckpt.config.dim, cfg.dim);
    assert_eq!(ckpt.config.lr.to_bits(), cfg.lr.to_bits());
    assert_eq!(
        ckpt.config.weight_decay.to_bits(),
        cfg.weight_decay.to_bits()
    );

    // Locations must survive exactly: binning is threshold-sensitive.
    for (a, b) in ckpt.graph.pois().iter().zip(ds.graph.pois()) {
        assert_eq!(a.location.lon.to_bits(), b.location.lon.to_bits());
        assert_eq!(a.location.lat.to_bits(), b.location.lat.to_bits());
        assert_eq!(a.category, b.category);
    }

    // Every parameter group, bitwise, in registration order.
    let saved: Vec<(&str, &prim_tensor::Matrix, bool)> = model.params().entries().collect();
    assert_eq!(saved.len(), ckpt.params.len());
    for ((name, value, _decays), (l_name, l_value)) in saved.iter().zip(&ckpt.params) {
        assert_eq!(name, l_name, "parameter order must be preserved");
        assert_eq!(value.shape(), l_value.shape(), "{name}");
        for (x, y) in value.data().iter().zip(l_value.data()) {
            assert_eq!(x.to_bits(), y.to_bits(), "{name} must round-trip bitwise");
        }
    }

    // And the rebuilt model scores identically to the original.
    let (rebuilt, re_inputs) = ckpt.rebuild().unwrap();
    let t0 = model.embed(&_inputs);
    let t1 = rebuilt.embed(&re_inputs);
    for (x, y) in t0.pois.data().iter().zip(t1.pois.data()) {
        assert_eq!(x.to_bits(), y.to_bits(), "embeddings must rebuild bitwise");
    }
    let pairs = [(PoiId(0), PoiId(1)), (PoiId(3), PoiId(2))];
    assert_eq!(
        model.predict_pairs(&t0, &_inputs, &pairs),
        rebuilt.predict_pairs(&t1, &re_inputs, &pairs)
    );
}

#[test]
fn no_decay_flags_survive() {
    let (_, _, _, model, path) = save_tiny("flags.ckpt");
    let raw = load_raw(&path).unwrap();
    let loaded = raw.params();
    for ((name, _, decays), (l_name, _, l_no_decay)) in model.params().entries().zip(&loaded) {
        assert_eq!(name, l_name);
        assert_eq!(
            !decays, *l_no_decay,
            "{name}: the no-decay flag must round-trip"
        );
    }
}

#[test]
fn short_file_reports_truncated() {
    let (_, _, _, _, path) = save_tiny("trunc_short.ckpt");
    let bytes = std::fs::read(&path).unwrap();
    for cut in [0usize, 4, 10, 20] {
        let short = tmp(&format!("trunc_short_{cut}.ckpt"));
        std::fs::write(&short, &bytes[..cut]).unwrap();
        match load_checkpoint(&short) {
            Err(CkptError::Truncated { available, .. }) => {
                assert_eq!(available, cut as u64);
            }
            other => panic!(
                "cut at {cut}: expected Truncated, got {other:?}",
                other = other.map(|_| "Ok")
            ),
        }
    }
}

#[test]
fn mid_file_cut_reports_checksum_mismatch() {
    // Anything past the fixed prologue is covered by the trailing
    // checksum, so a mid-tensor cut surfaces as integrity loss (the
    // trailer bytes are now tensor data, not the real checksum).
    let (_, _, _, _, path) = save_tiny("trunc_mid.ckpt");
    let bytes = std::fs::read(&path).unwrap();
    let cut = bytes.len() / 2;
    let p = tmp("trunc_mid_cut.ckpt");
    std::fs::write(&p, &bytes[..cut]).unwrap();
    match load_checkpoint(&p) {
        Err(CkptError::ChecksumMismatch { stored, computed }) => {
            assert_ne!(stored, computed);
        }
        other => panic!("expected ChecksumMismatch, got {:?}", other.map(|_| "Ok")),
    }
}

#[test]
fn flipped_byte_reports_checksum_mismatch() {
    let (_, _, _, _, path) = save_tiny("flip.ckpt");
    let mut bytes = std::fs::read(&path).unwrap();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x40;
    let p = tmp("flip_corrupt.ckpt");
    std::fs::write(&p, &bytes).unwrap();
    match load_checkpoint(&p) {
        Err(CkptError::ChecksumMismatch { .. }) => {}
        other => panic!("expected ChecksumMismatch, got {:?}", other.map(|_| "Ok")),
    }
}

#[test]
fn wrong_version_reports_skew() {
    let (_, _, _, _, path) = save_tiny("skew.ckpt");
    let mut bytes = std::fs::read(&path).unwrap();
    // Bump the version *and* re-seal the checksum: version skew must be
    // reported as such even on an internally consistent file.
    bytes[8..12].copy_from_slice(&99u32.to_le_bytes());
    let body_len = bytes.len() - 8;
    let sum = checksum(&bytes[..body_len]);
    bytes[body_len..].copy_from_slice(&sum.to_le_bytes());
    let p = tmp("skew_v99.ckpt");
    std::fs::write(&p, &bytes).unwrap();
    match load_checkpoint(&p) {
        Err(CkptError::VersionSkew { found, supported }) => {
            assert_eq!(found, 99);
            assert_eq!(supported, prim_serve::VERSION);
        }
        other => panic!("expected VersionSkew, got {:?}", other.map(|_| "Ok")),
    }
}

#[test]
fn wrong_magic_reports_bad_magic() {
    let p = tmp("not_a_ckpt.bin");
    std::fs::write(
        &p,
        b"GIF89a......plenty of bytes here to pass length checks",
    )
    .unwrap();
    match load_checkpoint(&p) {
        Err(CkptError::BadMagic) => {}
        other => panic!("expected BadMagic, got {:?}", other.map(|_| "Ok")),
    }
}

#[test]
fn pair_model_round_trip_is_bitwise() {
    // The baselines' shared-trainer models persist through the same API.
    let ds = Dataset::beijing(Scale::Quick).subsample(0.12, 9);
    let cfg = BaselineConfig {
        dim: 8,
        epochs: 3,
        ..BaselineConfig::quick()
    };
    let inputs = ModelInputs::build(
        &ds.graph,
        &ds.taxonomy,
        &ds.attrs,
        ds.graph.edges(),
        None,
        &PrimConfig::quick(),
    );
    let mut model = EncoderModel::<GcnEncoder>::new(cfg.clone(), &inputs);
    prim_baselines::train_pair_model(&mut model, &inputs, &ds.graph, ds.graph.edges(), None, None);

    let path = tmp("gcn.ckpt");
    save_pair_model(&path, "baseline-run", &model).unwrap();

    let mut fresh = EncoderModel::<GcnEncoder>::new(cfg, &inputs);
    load_pair_model(&path, &mut fresh).unwrap();
    for ((name, a, _), (_, b, _)) in model.store().entries().zip(fresh.store().entries()) {
        for (x, y) in a.data().iter().zip(b.data()) {
            assert_eq!(x.to_bits(), y.to_bits(), "{name}");
        }
    }
    let pairs = [(PoiId(0), PoiId(1)), (PoiId(2), PoiId(4))];
    assert_eq!(
        prim_baselines::common::predict_pairs(&model, &inputs, &pairs),
        prim_baselines::common::predict_pairs(&fresh, &inputs, &pairs)
    );
}

#[test]
fn pair_model_rejects_wrong_family() {
    let ds = Dataset::beijing(Scale::Quick).subsample(0.12, 9);
    let cfg = BaselineConfig {
        dim: 8,
        epochs: 1,
        ..BaselineConfig::quick()
    };
    let inputs = ModelInputs::build(
        &ds.graph,
        &ds.taxonomy,
        &ds.attrs,
        ds.graph.edges(),
        None,
        &PrimConfig::quick(),
    );
    let model = EncoderModel::<GcnEncoder>::new(cfg.clone(), &inputs);
    let path = tmp("family.ckpt");
    save_params(&path, "SomeOtherModel", "run", model.store()).unwrap();
    let mut fresh = EncoderModel::<GcnEncoder>::new(cfg, &inputs);
    match load_pair_model(&path, &mut fresh) {
        Err(CkptError::Incompatible(msg)) => {
            assert!(msg.contains("SomeOtherModel"), "{msg}");
        }
        other => panic!("expected Incompatible, got {:?}", other.map(|_| "Ok")),
    }
}

/// Ingest snapshots carry a `snapshot_seq` + frozen-grid section; it
/// must round-trip exactly, and a store loaded from such a checkpoint
/// must keep retired POIs out of the spatial candidate set (a promoted
/// follower or recovered primary serves from exactly this path).
#[test]
fn ingest_state_round_trips_and_retires_stay_tombstoned() {
    use prim_serve::{
        decode_bytes, decode_checkpoint, encode_checkpoint_ingest, EmbeddingStore,
        IngestSnapshotState,
    };
    let (ds, _cfg, _inputs, model) = tiny_trained();
    let n = ds.graph.num_pois();
    let retired: Vec<u32> = vec![2, 5];
    let state = IngestSnapshotState {
        snapshot_seq: 42,
        base_pois: n as u64,
        retired: retired.clone(),
    };
    let bytes = encode_checkpoint_ingest(
        "ingest-run",
        &model,
        &ds.graph,
        &ds.taxonomy,
        &ds.attrs,
        &ds.relation_names,
        None,
        None,
        Some(&state),
    );
    let ckpt = decode_checkpoint(decode_bytes(&bytes).unwrap()).unwrap();
    let got = ckpt.ingest_state.as_ref().expect("ingest section lost");
    assert_eq!(got.snapshot_seq, 42);
    assert_eq!(got.base_pois, n as u64);
    assert_eq!(got.retired, retired);

    // Without the section, the same encode yields a plain checkpoint.
    let plain = encode_checkpoint_ingest(
        "plain-run",
        &model,
        &ds.graph,
        &ds.taxonomy,
        &ds.attrs,
        &ds.relation_names,
        None,
        None,
        None,
    );
    let plain = decode_checkpoint(decode_bytes(&plain).unwrap()).unwrap();
    assert!(plain.ingest_state.is_none());

    // The loaded store must tombstone retirements in its grid: retired
    // ids never appear as spatial candidates, from any query point, at
    // any radius — while every live POI is still reachable.
    let store = EmbeddingStore::from_checkpoint(&ckpt).unwrap();
    let live = EmbeddingStore::from_checkpoint(&plain).unwrap();
    let mut saw_live = 0usize;
    for src in 0..n {
        for (j, _) in store.within_radius(PoiId(src as u32), 1.0e4) {
            assert!(
                !retired.contains(&(j as u32)),
                "retired poi {j} served as a candidate of {src}"
            );
        }
        // The plain store *does* surface the retired ids (the test would
        // be vacuous otherwise).
        saw_live += live
            .within_radius(PoiId(src as u32), 1.0e4)
            .iter()
            .filter(|(j, _)| retired.contains(&(*j as u32)))
            .count();
    }
    assert!(saw_live > 0, "retired ids never candidates even when live");
}
