//! The checkpoint decode taxonomy is *total*: any truncation or byte flip
//! of a valid `prim-ckpt/v1` file must produce a structured [`CkptError`]
//! — never a panic and never a silent success. The on-disk format is the
//! crash-recovery trust boundary, so these properties are what lets
//! `latest_valid` treat "decodes" as "safe to resume from".

use prim_core::{ModelInputs, PrimConfig, PrimModel};
use prim_data::{Dataset, Scale};
use prim_serve::{decode_bytes, encode_checkpoint, CkptError};
use proptest::prelude::*;
use std::sync::OnceLock;

/// One small, fully valid checkpoint shared by every property below.
fn valid() -> &'static [u8] {
    static BYTES: OnceLock<Vec<u8>> = OnceLock::new();
    BYTES.get_or_init(|| {
        let ds = Dataset::beijing(Scale::Quick).subsample(0.1, 3);
        let cfg = PrimConfig {
            dim: 8,
            cat_dim: 4,
            epochs: 1,
            val_check_every: 0,
            ..PrimConfig::quick()
        };
        let inputs = ModelInputs::build(
            &ds.graph,
            &ds.taxonomy,
            &ds.attrs,
            ds.graph.edges(),
            None,
            &cfg,
        );
        let model = PrimModel::new(cfg, &inputs);
        encode_checkpoint(
            "fuzz",
            &model,
            &ds.graph,
            &ds.taxonomy,
            &ds.attrs,
            &ds.relation_names,
            None,
            None,
        )
    })
}

#[test]
fn the_fixture_itself_decodes() {
    let raw = decode_bytes(valid()).expect("pristine checkpoint decodes");
    assert_eq!(raw.header_str("run").unwrap(), "fuzz");
}

#[test]
fn empty_input_is_a_truncation_error() {
    match decode_bytes(&[]) {
        Err(CkptError::Truncated { .. }) => {}
        Err(e) => panic!("empty input must be Truncated, got {e:?}"),
        Ok(_) => panic!("empty input decoded"),
    }
}

#[test]
fn foreign_bytes_are_bad_magic() {
    match decode_bytes(b"definitely not a checkpoint file at all") {
        Err(CkptError::BadMagic) => {}
        Err(e) => panic!("foreign bytes must be BadMagic, got {e:?}"),
        Ok(_) => panic!("foreign bytes decoded"),
    }
}

#[test]
fn future_version_is_a_version_skew_error() {
    let mut bytes = valid().to_vec();
    // Magic is 8 bytes; the version u32 follows it.
    bytes[8..12].copy_from_slice(&99u32.to_le_bytes());
    match decode_bytes(&bytes) {
        Err(CkptError::VersionSkew { found, .. }) => assert_eq!(found, 99),
        Err(e) => panic!("future version must be VersionSkew, got {e:?}"),
        Ok(_) => panic!("future version decoded"),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Every proper prefix of a valid checkpoint fails with a structured
    /// error — a torn write can never be mistaken for a complete file.
    #[test]
    fn any_truncation_is_a_structured_error(raw_cut in 0usize..1_000_000) {
        let bytes = valid();
        let cut = raw_cut % bytes.len(); // 0 <= cut < len: always a proper prefix
        let result = decode_bytes(&bytes[..cut]);
        prop_assert!(
            result.is_err(),
            "truncation at {cut}/{} decoded successfully",
            bytes.len()
        );
    }

    /// Every single-byte corruption of a valid checkpoint fails with a
    /// structured error — the checksum (or an earlier field check) catches
    /// silent bit rot anywhere in the file.
    #[test]
    fn any_byte_flip_is_a_structured_error(
        raw_at in 0usize..1_000_000,
        mask in 1u8..=255,
    ) {
        let mut bytes = valid().to_vec();
        let at = raw_at % bytes.len();
        bytes[at] ^= mask;
        let result = decode_bytes(&bytes);
        prop_assert!(
            result.is_err(),
            "flip of byte {at} (mask {mask:#04x}) decoded successfully"
        );
    }

    /// Arbitrary garbage never panics the decoder (errors are fine; a
    /// crash is not — the server's `reload` op feeds it untrusted paths).
    #[test]
    fn arbitrary_bytes_never_panic(data in prop::collection::vec(0u8..=255, 0..256)) {
        let _ = decode_bytes(&data);
    }
}
