//! Property tests for the quantized embedding tiers: encode→decode error
//! stays inside the format's bound, the SIMD dot kernels are bitwise the
//! scalar references, and f16 conversion round-trips exactly on values
//! f16 can represent.

use prim_serve::ann::quant::{
    dot_f16, dot_f16_scalar, dot_i8, dot_i8_scalar, f16_to_f32, f32_to_f16, QuantStore, QuantTier,
};
use prim_tensor::Matrix;
use proptest::prelude::*;

/// A finite f32 comfortably inside f16's normal range, mixing magnitudes
/// from the full normal span down through subnormals and zero.
fn half_range() -> impl Strategy<Value = f32> {
    ((0u32..5), (-1.0f32..1.0)).prop_map(|(pick, u)| match pick {
        0 => u * 60000.0,
        1 => u,
        2 => u * 1e-3,
        3 => u * 1e-6, // f16-subnormal territory
        _ => 0.0,
    })
}

fn vector(max_len: usize) -> impl Strategy<Value = Vec<f32>> {
    prop::collection::vec(-8.0f32..8.0, 0..max_len)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// f16 rounding: relative error ≤ 2⁻¹¹ in the normal range plus an
    /// absolute floor of 2⁻²⁴ in the subnormal range.
    #[test]
    fn f16_round_trip_error_in_bound(x in half_range()) {
        let back = f16_to_f32(f32_to_f16(x));
        let bound = x.abs() * (1.0 / 2048.0) + 1.0 / 16_777_216.0;
        prop_assert!(
            (back - x).abs() <= bound,
            "{x} -> {back}, err {} > bound {bound}", (back - x).abs()
        );
    }

    /// Values f16 represents exactly survive the f32→f16→f32 round trip
    /// with identical bits (modulo the -0.0 they started with).
    #[test]
    fn f16_exact_values_are_fixed_points(h in 0u16..=u16::MAX) {
        // Skip NaN/inf payloads: NaN bits legitimately canonicalise.
        prop_assume!((h & 0x7C00) != 0x7C00);
        let x = f16_to_f32(h);
        prop_assert_eq!(f32_to_f16(x), h);
    }

    /// int8 tier: every decoded component is within half a quantization
    /// step of the original (scale = max|v| / 127).
    #[test]
    fn i8_encode_decode_error_in_bound(v in prop::collection::vec(-8.0f32..8.0, 1..64)) {
        let m = Matrix::from_vec(1, v.len(), v.clone());
        let q = QuantStore::build(&m);
        let dec = q.decode_row(QuantTier::Int8, 0);
        let max_abs = v.iter().fold(0.0f32, |a, &x| a.max(x.abs()));
        let step = max_abs / 127.0;
        for (i, (&orig, &d)) in v.iter().zip(&dec).enumerate() {
            prop_assert!(
                (orig - d).abs() <= step * 0.5 + 1e-6,
                "component {i}: {orig} -> {d}, step {step}"
            );
        }
    }

    /// f16 tier decodes to the per-component f16 rounding of the input.
    #[test]
    fn f16_tier_decodes_to_componentwise_rounding(v in vector(64)) {
        prop_assume!(!v.is_empty());
        let m = Matrix::from_vec(1, v.len(), v.clone());
        let q = QuantStore::build(&m);
        let dec = q.decode_row(QuantTier::F16, 0);
        for (&orig, &d) in v.iter().zip(&dec) {
            prop_assert_eq!(d.to_bits(), f16_to_f32(f32_to_f16(orig)).to_bits());
        }
    }

    /// The SIMD int8 dot kernel is bitwise the scalar reference on every
    /// length (vector body + scalar tail) and scale.
    #[test]
    fn i8_simd_dot_matches_scalar_bitwise(
        v in vector(70),
        q in vector(70),
        scale in 1e-6f32..4.0,
    ) {
        let n = v.len().min(q.len());
        let codes: Vec<i8> = v[..n].iter().map(|&x| (x * 15.0) as i8).collect();
        let simd = dot_i8(&codes, scale, &q[..n]);
        let scalar = dot_i8_scalar(&codes, scale, &q[..n]);
        prop_assert_eq!(simd.to_bits(), scalar.to_bits());
    }

    /// Same for the f16 kernel.
    #[test]
    fn f16_simd_dot_matches_scalar_bitwise(v in vector(70), q in vector(70)) {
        let n = v.len().min(q.len());
        let codes: Vec<u16> = v[..n].iter().map(|&x| f32_to_f16(x)).collect();
        let simd = dot_f16(&codes, &q[..n]);
        let scalar = dot_f16_scalar(&codes, &q[..n]);
        prop_assert_eq!(simd.to_bits(), scalar.to_bits());
    }

    /// `QuantStore::dot` agrees bitwise with the scalar kernel over the
    /// decoded row it stores — the engine-facing entry point adds nothing.
    #[test]
    fn store_dot_is_the_scalar_kernel(rows in 1usize..8, dim in 1usize..48, seed in 0u32..=u32::MAX) {
        let mut s = seed as u64 | 1;
        let mut next = move || {
            // Tiny xorshift: deterministic, no rand dependency on values.
            s ^= s << 13; s ^= s >> 7; s ^= s << 17;
            ((s % 2048) as f32 - 1024.0) / 256.0
        };
        let data: Vec<f32> = (0..rows * dim).map(|_| next()).collect();
        let query: Vec<f32> = (0..dim).map(|_| next()).collect();
        let m = Matrix::from_vec(rows, dim, data);
        let store = QuantStore::build(&m);
        for r in 0..rows {
            let (codes, scale) = store.row_i8(r);
            prop_assert_eq!(
                store.dot(QuantTier::Int8, r, &query).to_bits(),
                dot_i8_scalar(codes, scale, &query).to_bits()
            );
            prop_assert_eq!(
                store.dot(QuantTier::F16, r, &query).to_bits(),
                dot_f16_scalar(store.row_f16(r), &query).to_bits()
            );
        }
    }
}
