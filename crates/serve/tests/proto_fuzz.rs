//! The serve protocol boundary is *total*: whatever bytes a client sends
//! — garbage, truncated JSON, oversized lines, frames split anywhere by
//! the transport — the server must answer every complete line with exactly
//! one well-formed JSON response and never panic. These properties are
//! what lets the event loop handle requests inline on its shard threads:
//! a panic there would take down every connection the shard owns.

use prim_core::{ModelInputs, PrimConfig, PrimModel};
use prim_data::{Dataset, Scale};
use prim_obs::json::{self, Value};
use prim_obs::Recorder;
use prim_serve::{
    handle_line, handle_request, EmbeddingStore, EngineOpts, LineEvent, LineFramer, ServeCtx,
    ServeEngine,
};
use proptest::prelude::*;
use std::sync::{Arc, OnceLock};
use std::time::Instant;

/// One small engine context shared by every property below.
fn ctx() -> &'static ServeCtx {
    static CTX: OnceLock<ServeCtx> = OnceLock::new();
    CTX.get_or_init(|| {
        let ds = Dataset::beijing(Scale::Quick).subsample(0.1, 3);
        let cfg = PrimConfig {
            dim: 8,
            cat_dim: 4,
            epochs: 1,
            val_check_every: 0,
            ..PrimConfig::quick()
        };
        let inputs = ModelInputs::build(
            &ds.graph,
            &ds.taxonomy,
            &ds.attrs,
            ds.graph.edges(),
            None,
            &cfg,
        );
        let model = PrimModel::new(cfg, &inputs);
        let store = EmbeddingStore::from_model(&model, &inputs, ds.relation_names.clone());
        let engine = Arc::new(ServeEngine::new(
            store,
            &EngineOpts::default(),
            Recorder::enabled("proto-fuzz"),
        ));
        ServeCtx::direct(engine)
    })
}

/// Every response must be one line of valid JSON carrying a boolean "ok".
fn assert_well_formed(input: &str, response: &str) {
    assert!(
        !response.contains('\n'),
        "response to {input:?} spans lines: {response:?}"
    );
    let v = json::parse(response)
        .unwrap_or_else(|e| panic!("response to {input:?} is not JSON ({e}): {response:?}"));
    match v.get("ok") {
        Some(Value::Bool(_)) => {}
        other => panic!("response to {input:?} lacks boolean \"ok\": {other:?}"),
    }
}

/// A pool of realistic request fragments so truncation/splitting hits the
/// interesting parse paths, not just instant `bad_request`.
const SEEDS: &[&str] = &[
    r#"{"op": "health"}"#,
    r#"{"op": "score", "src": 0, "dst": 1}"#,
    r#"{"op": "batch", "pairs": [[0, 1], [1, 2]]}"#,
    r#"{"op": "top_k", "src": 0, "k": 3, "radius_km": 0.5}"#,
    r#"{"op": "reload", "path": "/nonexistent/ckpt.prim"}"#,
    r#"{"op": "score", "src": 0, "dst": 1, "city": "beijing"}"#,
    r#"{"op": 42, "src": []}"#,
];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Arbitrary byte soup (lossily decoded, as the framer would) never
    /// panics the handler and always yields one well-formed response.
    #[test]
    fn byte_soup_gets_a_structured_response(
        data in prop::collection::vec(0u8..=255, 0..256),
    ) {
        let line = String::from_utf8_lossy(&data);
        if line.trim().is_empty() {
            return Ok(()); // the front ends skip blank lines before handling
        }
        let h = handle_line(ctx(), &line);
        assert_well_formed(&line, &h.response);
        prop_assert!(!h.shutdown || line.contains("shutdown"));
    }

    /// Any prefix of a realistic request — a frame truncated by a vanishing
    /// client — is answered with structured JSON, never a panic.
    #[test]
    fn truncated_requests_get_structured_errors(
        seed in 0..SEEDS.len(),
        raw_cut in 0usize..1_000_000,
    ) {
        let full = SEEDS[seed];
        let cut = raw_cut % full.len();
        // Cutting can land mid-UTF-8 only for ASCII seeds; all seeds are
        // ASCII so any cut is a valid str boundary.
        let line = &full[..cut];
        if line.trim().is_empty() {
            return Ok(());
        }
        let h = handle_line(ctx(), line);
        assert_well_formed(line, &h.response);
        prop_assert!(!h.shutdown);
    }

    /// An already-expired deadline still produces a well-formed response
    /// (the structured `deadline_exceeded` path) for any seed request.
    #[test]
    fn expired_deadlines_stay_structured(seed in 0..SEEDS.len()) {
        let h = handle_request(ctx(), SEEDS[seed], Some(Instant::now()));
        assert_well_formed(SEEDS[seed], &h.response);
    }

    /// Framing is chunk-invariant: however the transport splits the byte
    /// stream across reads, the framer emits the identical event sequence.
    /// This is the property that makes request handling independent of
    /// TCP segmentation.
    #[test]
    fn framer_is_split_invariant(
        lines in prop::collection::vec(
            prop::collection::vec(0u8..=255, 0..64), 0..8),
        splits in prop::collection::vec(0usize..1_000, 0..8),
        max_sel in 0usize..3,
    ) {
        let max = [0usize, 16, 48][max_sel];
        let mut stream = Vec::new();
        for l in &lines {
            stream.extend_from_slice(l);
            stream.push(b'\n');
        }

        let mut one_shot = Vec::new();
        let mut f = LineFramer::new(max);
        f.push(&stream, &mut |e| one_shot.push(e));

        let mut chunked = Vec::new();
        let mut f = LineFramer::new(max);
        let mut rest: &[u8] = &stream;
        for s in &splits {
            if rest.is_empty() {
                break;
            }
            let cut = s % (rest.len() + 1);
            f.push(&rest[..cut], &mut |e| chunked.push(e));
            rest = &rest[cut..];
        }
        f.push(rest, &mut |e| chunked.push(e));

        prop_assert_eq!(&one_shot, &chunked);
        // Complete (non-oversized) lines round-trip through the handler
        // without panicking, whatever bytes they held.
        for ev in &one_shot {
            match ev {
                LineEvent::Line(line) => {
                    let h = handle_line(ctx(), line);
                    assert_well_formed(line, &h.response);
                }
                LineEvent::Oversized(len) => prop_assert!(max > 0 && *len > max),
            }
        }
    }

    /// Oversized lines are rejected at the bound and the framer resyncs:
    /// a request after the junk parses normally.
    #[test]
    fn oversized_lines_reject_then_resync(
        extra in 1usize..512,
        max in 16usize..64, // the health probe itself is 16 bytes
    ) {
        let junk_len = max + extra;
        let mut f = LineFramer::new(max);
        let mut events = Vec::new();
        f.push(&vec![b'x'; junk_len], &mut |e| events.push(e));
        f.push(b"\n", &mut |e| events.push(e));
        f.push(b"{\"op\": \"health\"}\n", &mut |e| events.push(e));
        prop_assert_eq!(events.len(), 2, "{:?}", events);
        prop_assert!(matches!(events[0], LineEvent::Oversized(_)));
        prop_assert_eq!(&events[1], &LineEvent::Line("{\"op\": \"health\"}".into()));
    }
}
