//! Deterministic fault-injection over the checkpoint rotation layer.
//!
//! The crash model: every file operation the rotation performs is counted
//! by [`ChaosIo`], and a [`FaultPlan`] kills (or corrupts) the sequence at
//! one chosen operation index. The central invariant — *kill-anywhere
//! safety* — is swept exhaustively: at **every** injection index of a
//! multi-save scenario, the directory must still resolve to a complete,
//! checksummed checkpoint whenever any save ever completed.

use prim_core::{ModelInputs, PrimConfig, PrimModel};
use prim_data::{Dataset, Scale};
use prim_serve::{encode_checkpoint, ChaosIo, CkptRotator, Fault, FaultPlan, FileIo, LATEST};
use std::path::PathBuf;
use std::sync::OnceLock;

/// A small valid checkpoint payload shared by every scenario.
fn payload() -> &'static [u8] {
    static BYTES: OnceLock<Vec<u8>> = OnceLock::new();
    BYTES.get_or_init(|| {
        let ds = Dataset::beijing(Scale::Quick).subsample(0.1, 3);
        let cfg = PrimConfig {
            dim: 8,
            cat_dim: 4,
            epochs: 1,
            val_check_every: 0,
            ..PrimConfig::quick()
        };
        let inputs = ModelInputs::build(
            &ds.graph,
            &ds.taxonomy,
            &ds.attrs,
            ds.graph.edges(),
            None,
            &cfg,
        );
        let model = PrimModel::new(cfg, &inputs);
        encode_checkpoint(
            "chaos",
            &model,
            &ds.graph,
            &ds.taxonomy,
            &ds.attrs,
            &ds.relation_names,
            None,
            None,
        )
    })
}

fn tmpdir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("prim-chaos-tests-{}-{name}", std::process::id()));
    if dir.exists() {
        std::fs::remove_dir_all(&dir).unwrap();
    }
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Kill-anywhere sweep: run a four-save rotation scenario, killing the
/// process at every single file-operation index in turn. After each kill,
/// `latest_valid` must return a decodable checkpoint whenever at least one
/// save fully completed — and when it returns one, the checkpoint must
/// decode end to end.
#[test]
fn kill_at_every_op_index_leaves_a_valid_latest() {
    let bytes = payload();

    // Clean run first: measure how many operation indices the sweep must
    // cover, and sanity-check the happy path.
    let base = tmpdir("sweep-clean");
    let rot = CkptRotator::new(&base, 2).unwrap();
    let counter = ChaosIo::counting();
    for epoch in 0..4 {
        rot.save(&counter, epoch, bytes).unwrap();
    }
    let total_ops = counter.ops();
    assert!(
        total_ops >= 16,
        "4 saves must cost >= 16 ops, got {total_ops}"
    );
    let (path, ckpt) = rot.latest_valid().expect("clean run resolves");
    assert_eq!(path, rot.slot_path(3));
    assert_eq!(ckpt.run, "chaos");
    assert_eq!(
        std::fs::read_to_string(base.join(LATEST)).unwrap().trim(),
        "ckpt-000003.prim"
    );
    std::fs::remove_dir_all(&base).unwrap();

    for at in 0..total_ops {
        let dir = tmpdir(&format!("sweep-{at}"));
        let rot = CkptRotator::new(&dir, 2).unwrap();
        let io = ChaosIo::with_plan(FaultPlan::kill_at(at));
        let mut completed = 0usize;
        for epoch in 0..4 {
            match rot.save(&io, epoch, bytes) {
                Ok(_) => completed += 1,
                Err(_) => break,
            }
        }
        assert!(completed < 4, "kill at op {at} must interrupt the scenario");
        match rot.latest_valid() {
            Some((path, ckpt)) => {
                // Whatever survives must be a *complete* checkpoint.
                assert_eq!(ckpt.run, "chaos", "kill at op {at}");
                assert!(path.exists(), "kill at op {at}");
            }
            None => {
                // Only acceptable before the very first save finished.
                assert_eq!(
                    completed, 0,
                    "kill at op {at}: {completed} saves completed but nothing resolves"
                );
            }
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }
}

/// A torn slot write (prefix lands on disk, then the process dies) must
/// not shadow the previous checkpoint: the temp-sibling discipline keeps
/// the half-written bytes out of the slot namespace entirely.
#[test]
fn torn_slot_write_keeps_the_previous_checkpoint() {
    let bytes = payload();
    let dir = tmpdir("torn");
    let rot = CkptRotator::new(&dir, 3).unwrap();
    rot.save_real(0, bytes).unwrap();

    let io = ChaosIo::with_plan(FaultPlan::torn_at(0, bytes.len() / 2));
    assert!(rot.save(&io, 1, bytes).is_err());

    let (path, ckpt) = rot.latest_valid().expect("previous slot survives");
    assert_eq!(path, rot.slot_path(0));
    assert_eq!(ckpt.run, "chaos");
    std::fs::remove_dir_all(&dir).unwrap();
}

/// Silent corruption (a bit flip that defeats the write discipline, e.g.
/// media rot) in the slot `LATEST` names: the pointer target fails its
/// checksum, and recovery falls back to the newest slot that decodes.
#[test]
fn bit_flip_in_pointed_slot_falls_back_to_predecessor() {
    let bytes = payload();
    let dir = tmpdir("flip");
    let rot = CkptRotator::new(&dir, 3).unwrap();
    rot.save_real(0, bytes).unwrap();
    rot.save_real(1, bytes).unwrap();

    // Corrupt one byte in the middle of the newest slot, in place.
    let victim = rot.slot_path(1);
    let mut data = std::fs::read(&victim).unwrap();
    let mid = data.len() / 2;
    data[mid] ^= 0x01;
    std::fs::write(&victim, &data).unwrap();

    assert!(
        rot.pointer_error().is_some(),
        "the pointer target must fail to decode"
    );
    let (path, ckpt) = rot.latest_valid().expect("fallback to older slot");
    assert_eq!(path, rot.slot_path(0));
    assert_eq!(ckpt.run, "chaos");
    std::fs::remove_dir_all(&dir).unwrap();
}

/// Rotation retention: old slots are pruned, the pointer always names the
/// newest, and pruning never removes the pointer's target.
#[test]
fn retention_prunes_old_slots_but_never_the_pointer_target() {
    let bytes = payload();
    let dir = tmpdir("retain");
    let rot = CkptRotator::new(&dir, 2).unwrap();
    for epoch in 0..5 {
        rot.save_real(epoch, bytes).unwrap();
    }
    let slots: Vec<String> = std::fs::read_dir(&dir)
        .unwrap()
        .filter_map(|e| e.ok())
        .filter_map(|e| e.file_name().to_str().map(String::from))
        .filter(|n| n.starts_with("ckpt-"))
        .collect();
    assert_eq!(slots.len(), 2, "retain=2 keeps two slots: {slots:?}");
    assert_eq!(
        std::fs::read_to_string(dir.join(LATEST)).unwrap().trim(),
        "ckpt-000004.prim"
    );
    assert!(rot.latest_valid().is_some());
    std::fs::remove_dir_all(&dir).unwrap();
}

/// Short reads through the fault layer surface as decode errors, not
/// panics — the read half of the taxonomy-totality property.
#[test]
fn short_read_surfaces_as_structured_decode_failure() {
    let bytes = payload();
    let dir = tmpdir("shortread");
    let path = dir.join("ck.prim");
    prim_serve::atomic_write(&path, bytes).unwrap();

    let io = ChaosIo::with_plan(FaultPlan {
        at_op: 0,
        fault: Fault::ShortRead {
            keep: bytes.len() / 3,
        },
        then_dead: false,
    });
    let short = io.read(&path).unwrap();
    assert_eq!(short.len(), bytes.len() / 3);
    assert!(prim_serve::decode_bytes(&short).is_err());
    std::fs::remove_dir_all(&dir).unwrap();
}
