//! Resume equivalence: training N epochs straight must be **bitwise
//! identical** to training k epochs, dying mid-checkpoint, and resuming
//! for the remaining N−k — parameters, losses, telemetry epoch records
//! and the final embedding table, at one and at four kernel threads.
//!
//! The kill is injected through the deterministic fault layer: the save
//! at the end of epoch k fails at its first file operation and the run
//! surfaces `ResumeError::Io`, exactly as a process killed there would.
//! Also covered: the NaN rollback policy (restore last good checkpoint,
//! decay the learning rate, retry) and retry-budget exhaustion.

use prim_core::{
    fit_observed, FiniteGuard, FitCkptView, FitHook, ModelInputs, NoopHook, PrimConfig, PrimModel,
    Recorder, Telemetry,
};
use prim_data::{Dataset, Scale};
use prim_graph::Edge;
use prim_obs::{Counter, EpochRecord};
use prim_serve::{
    fit_resumable, fit_resumable_hooked, ChaosIo, FaultPlan, ResilienceOpts, ResumeError,
};
use prim_tensor::kernel;
use std::ops::ControlFlow;
use std::path::{Path, PathBuf};

const EPOCHS: usize = 6;
/// Epoch whose end-of-epoch checkpoint save is killed.
const KILL_EPOCH: usize = 3;
/// File ops per save in this scenario: slot (write + rename) + LATEST
/// (write + rename); retention is deep enough that nothing is pruned.
const OPS_PER_SAVE: usize = 4;

fn setup() -> (Dataset, PrimConfig, ModelInputs, Vec<Edge>) {
    let ds = Dataset::beijing(Scale::Quick).subsample(0.15, 11);
    let cfg = PrimConfig {
        dim: 12,
        cat_dim: 6,
        n_layers: 2,
        n_heads: 2,
        epochs: EPOCHS,
        val_check_every: 2,
        ..PrimConfig::quick()
    };
    let inputs = ModelInputs::build(
        &ds.graph,
        &ds.taxonomy,
        &ds.attrs,
        ds.graph.edges(),
        None,
        &cfg,
    );
    let val: Vec<Edge> = ds.graph.edges().iter().take(40).cloned().collect();
    (ds, cfg, inputs, val)
}

fn opts() -> ResilienceOpts {
    ResilienceOpts {
        every_epochs: 1,
        retain: 16,
        max_retries: 0,
        lr_decay: 0.5,
        backoff: std::time::Duration::ZERO,
    }
}

fn tmpdir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("prim-resume-eq-{}-{name}", std::process::id()));
    if dir.exists() {
        std::fs::remove_dir_all(&dir).unwrap();
    }
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn param_bits(model: &PrimModel) -> Vec<(String, Vec<u32>)> {
    model
        .params()
        .entries()
        .map(|(n, m, _)| {
            (
                n.to_string(),
                m.data().iter().map(|v| v.to_bits()).collect(),
            )
        })
        .collect()
}

fn table_bits(model: &PrimModel, inputs: &ModelInputs) -> Vec<u32> {
    let table = model.embed(inputs);
    table.pois.data().iter().map(|v| v.to_bits()).collect()
}

fn epoch_bits(records: &[EpochRecord]) -> Vec<(usize, u32, u32, u32)> {
    records
        .iter()
        .map(|r| {
            (
                r.epoch,
                r.loss.to_bits(),
                r.grad_norm.to_bits(),
                r.lr.to_bits(),
            )
        })
        .collect()
}

struct StraightRun {
    losses: Vec<u32>,
    params: Vec<(String, Vec<u32>)>,
    table: Vec<u32>,
    epochs: Vec<EpochRecord>,
}

fn run_straight(threads: usize) -> StraightRun {
    let (ds, cfg, inputs, val) = setup();
    let mut model = PrimModel::new(cfg, &inputs);
    let telemetry = Telemetry {
        recorder: Recorder::enabled("straight"),
        guard: FiniteGuard::disabled(),
    };
    kernel::set_threads(threads);
    let report = fit_observed(
        &mut model,
        &inputs,
        &ds.graph,
        ds.graph.edges(),
        None,
        Some(&val),
        &telemetry,
    )
    .unwrap();
    kernel::set_threads(0);
    StraightRun {
        losses: report.losses.iter().map(|l| l.to_bits()).collect(),
        params: param_bits(&model),
        table: table_bits(&model, &inputs),
        epochs: telemetry.recorder.epochs(),
    }
}

/// Phase 1 trains with a kill injected into the checkpoint save at the
/// end of `KILL_EPOCH`; phase 2 resumes from the surviving checkpoint in
/// a fresh process-equivalent (new model object, new telemetry).
fn run_killed_then_resumed(threads: usize, dir: &Path) -> (StraightRun, Option<usize>) {
    let (ds, cfg, inputs, val) = setup();
    kernel::set_threads(threads);

    let mut model = PrimModel::new(cfg.clone(), &inputs);
    let crash_telemetry = Telemetry {
        recorder: Recorder::enabled("crashed"),
        guard: FiniteGuard::disabled(),
    };
    let io = ChaosIo::with_plan(FaultPlan::kill_at(KILL_EPOCH * OPS_PER_SAVE));
    let crash = fit_resumable_hooked(
        &mut model,
        &inputs,
        &ds.graph,
        &ds.taxonomy,
        &ds.attrs,
        &ds.relation_names,
        ds.graph.edges(),
        None,
        Some(&val),
        dir,
        &opts(),
        &crash_telemetry,
        &mut NoopHook,
        &io,
    );
    assert!(
        matches!(crash, Err(ResumeError::Io(_))),
        "the killed save must surface as an io failure"
    );

    let mut resumed_model = PrimModel::new(cfg, &inputs);
    let resume_telemetry = Telemetry {
        recorder: Recorder::enabled("resumed"),
        guard: FiniteGuard::disabled(),
    };
    let run = fit_resumable(
        &mut resumed_model,
        &inputs,
        &ds.graph,
        &ds.taxonomy,
        &ds.attrs,
        &ds.relation_names,
        ds.graph.edges(),
        None,
        Some(&val),
        dir,
        &opts(),
        &resume_telemetry,
    )
    .unwrap();
    kernel::set_threads(0);
    assert_eq!(run.rollbacks, 0);
    (
        StraightRun {
            losses: run.report.losses.iter().map(|l| l.to_bits()).collect(),
            params: param_bits(&resumed_model),
            table: table_bits(&resumed_model, &inputs),
            epochs: resume_telemetry.recorder.epochs(),
        },
        run.resumed_from,
    )
}

#[test]
fn killed_and_resumed_run_is_bitwise_identical_to_straight_run() {
    for &threads in &[1usize, 4] {
        let straight = run_straight(threads);
        let dir = tmpdir(&format!("kill-{threads}"));
        let (resumed, resumed_from) = run_killed_then_resumed(threads, &dir);

        // The save at the end of KILL_EPOCH died, so the newest durable
        // checkpoint is epoch KILL_EPOCH−1 and the resume restarts at
        // KILL_EPOCH.
        assert_eq!(resumed_from, Some(KILL_EPOCH), "threads={threads}");
        assert_eq!(
            straight.losses, resumed.losses,
            "threads={threads}: per-epoch losses drifted"
        );
        assert_eq!(
            straight.params, resumed.params,
            "threads={threads}: parameters drifted"
        );
        assert_eq!(
            straight.table, resumed.table,
            "threads={threads}: final embedding table drifted"
        );
        // The resumed recorder holds records for the epochs it actually
        // ran; they must match the straight run's tail exactly.
        assert_eq!(
            epoch_bits(&straight.epochs[KILL_EPOCH..]),
            epoch_bits(&resumed.epochs),
            "threads={threads}: telemetry epoch records drifted"
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }
}

#[test]
fn resume_is_identical_across_thread_counts() {
    let dir1 = tmpdir("xthread-1");
    let (r1, _) = run_killed_then_resumed(1, &dir1);
    let dir4 = tmpdir("xthread-4");
    let (r4, _) = run_killed_then_resumed(4, &dir4);
    assert_eq!(
        r1.params, r4.params,
        "resumed params drifted across threads"
    );
    assert_eq!(
        r1.losses, r4.losses,
        "resumed losses drifted across threads"
    );
    std::fs::remove_dir_all(&dir1).unwrap();
    std::fs::remove_dir_all(&dir4).unwrap();
}

/// Poisons one parameter with NaN at the start of `at_epoch`, once.
struct Poison {
    at_epoch: usize,
    armed: bool,
}

impl FitHook for Poison {
    fn on_epoch_start(&mut self, epoch: usize, model: &mut PrimModel) {
        if epoch == self.at_epoch && self.armed {
            self.armed = false;
            let id = model.params().ids().next().unwrap();
            model.params_mut().value_mut(id).data_mut()[0] = f32::NAN;
        }
    }

    fn on_epoch_end(&mut self, _view: &FitCkptView<'_>) -> ControlFlow<()> {
        ControlFlow::Continue(())
    }
}

#[test]
fn nan_rollback_restores_last_good_checkpoint_and_decays_lr() {
    let (ds, cfg, inputs, _) = setup();
    let dir = tmpdir("rollback");
    let mut model = PrimModel::new(cfg, &inputs);
    let telemetry = Telemetry {
        recorder: Recorder::enabled("rollback"),
        guard: FiniteGuard::every(1),
    };
    let opts = ResilienceOpts {
        max_retries: 2,
        ..opts()
    };
    let mut poison = Poison {
        at_epoch: 3,
        armed: true,
    };
    let run = fit_resumable_hooked(
        &mut model,
        &inputs,
        &ds.graph,
        &ds.taxonomy,
        &ds.attrs,
        &ds.relation_names,
        ds.graph.edges(),
        None,
        None,
        &dir,
        &opts,
        &telemetry,
        &mut poison,
        &prim_serve::RealIo,
    )
    .expect("rollback must recover the run");
    assert_eq!(run.rollbacks, 1, "exactly one rollback");
    assert_eq!(run.report.losses.len(), EPOCHS);
    assert!(
        run.report.losses.iter().all(|l| l.is_finite()),
        "post-rollback losses are finite: {:?}",
        run.report.losses
    );
    assert_eq!(telemetry.recorder.counter(Counter::Rollbacks), 1);
    assert!(
        telemetry
            .recorder
            .scalar_summary("resilience/lr_after_rollback")
            .is_some(),
        "the decayed learning rate is recorded"
    );
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn exhausted_retry_budget_surfaces_the_abort() {
    let (ds, cfg, inputs, _) = setup();
    let dir = tmpdir("exhausted");
    let mut model = PrimModel::new(cfg, &inputs);
    let telemetry = Telemetry {
        recorder: Recorder::enabled("exhausted"),
        guard: FiniteGuard::every(1),
    };
    let mut poison = Poison {
        at_epoch: 1,
        armed: true,
    };
    let result = fit_resumable_hooked(
        &mut model,
        &inputs,
        &ds.graph,
        &ds.taxonomy,
        &ds.attrs,
        &ds.relation_names,
        ds.graph.edges(),
        None,
        None,
        &dir,
        &opts(), // max_retries: 0
        &telemetry,
        &mut poison,
        &prim_serve::RealIo,
    );
    match result {
        Err(ResumeError::Aborted { rollbacks, .. }) => assert_eq!(rollbacks, 0),
        other => panic!("expected Aborted, got {:?}", other.is_ok()),
    }
    std::fs::remove_dir_all(&dir).unwrap();
}
