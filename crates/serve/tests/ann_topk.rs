//! ANN serving parity: the approximate top-k path must match the exact
//! path bitwise wherever their candidate sets overlap, meet the recall
//! bar everywhere else, round-trip its graph through the checkpoint, and
//! swap atomically with the store under hot reload.

use prim_core::{fit, ModelInputs, PrimConfig, PrimModel};
use prim_data::{Dataset, Scale};
use prim_geo::{DistanceBins, GridIndex, Location};
use prim_obs::{Counter, Recorder};
use prim_serve::{
    load_checkpoint, save_checkpoint, save_checkpoint_indexed, AnnOpts, AnnParams, EmbeddingStore,
    EngineOpts, EngineSlot, Neighbor, ServeEngine,
};
use prim_tensor::Matrix;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;

fn tmp(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join("prim_ann_topk_tests");
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(name)
}

/// A synthetic serving store: random embeddings over random
/// Singapore-box locations. Fabricated directly (no training) so the ANN
/// regimes can be exercised at sizes a trained fixture would make slow.
fn synthetic_store(n: usize, dim: usize, seed: u64, distance_scoring: bool) -> EmbeddingStore {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut rand_mat = |rows: usize| {
        Matrix::from_vec(
            rows,
            dim,
            (0..rows * dim).map(|_| rng.gen_range(-1.0..1.0)).collect(),
        )
    };
    let pois = rand_mat(n);
    let relations = rand_mat(4); // three relations + φ
    let bins = DistanceBins::new(vec![0.5, 1.0, 2.0, 5.0]);
    let mut bin_normals = rand_mat(bins.len());
    for b in 0..bin_normals.rows() {
        let norm = bin_normals.row(b).iter().map(|v| v * v).sum::<f32>().sqrt();
        for v in bin_normals.row_mut(b) {
            *v /= norm;
        }
    }
    let locations: Vec<Location> = (0..n)
        .map(|_| {
            Location::new(
                103.8198 + rng.gen_range(-0.08..0.08),
                1.3521 + rng.gen_range(-0.08..0.08),
            )
        })
        .collect();
    let grid = GridIndex::build(&locations, 1.0);
    let mut store = EmbeddingStore {
        pois,
        relations,
        bin_normals,
        relation_names: vec!["serve".into(), "compete".into(), "complement".into()],
        locations,
        bins,
        use_distance_scoring: distance_scoring,
        grid,
        ann: None,
    };
    store.build_ann(AnnParams {
        seed,
        ..AnnParams::default()
    });
    store
}

fn engine_with(store: EmbeddingStore, ann: AnnOpts, recorder: Recorder) -> ServeEngine {
    let opts = EngineOpts {
        ann,
        ..EngineOpts::default()
    };
    ServeEngine::new(store, &opts, recorder)
}

/// Forces the quantized-scan regime on every non-empty candidate set.
fn scan_opts() -> AnnOpts {
    AnnOpts {
        min_exact: 0,
        beam_cutoff: usize::MAX,
        ..AnnOpts::default()
    }
}

/// Forces the HNSW-beam regime on every non-empty candidate set.
fn beam_opts() -> AnnOpts {
    AnnOpts {
        min_exact: 0,
        beam_cutoff: 1,
        ef_search: 128,
        ..AnnOpts::default()
    }
}

fn ranking_key(neighbors: &[Neighbor]) -> Vec<(u32, u32)> {
    neighbors
        .iter()
        .map(|n| (n.poi, n.score.to_bits()))
        .collect()
}

fn recall(ann: &[Neighbor], exact: &[Neighbor]) -> f64 {
    if exact.is_empty() {
        return 1.0;
    }
    let truth: std::collections::HashSet<u32> = exact.iter().map(|n| n.poi).collect();
    let hit = ann.iter().filter(|n| truth.contains(&n.poi)).count();
    hit as f64 / exact.len() as f64
}

/// When `ef` covers the whole candidate set, the quantized scan keeps
/// everything the exact path scores — so the ANN response must be the
/// exact response, bit for bit, tie-break for tie-break.
#[test]
fn scan_regime_with_full_coverage_is_bitwise_exact() {
    let engine = engine_with(
        synthetic_store(3000, 16, 11, true),
        scan_opts(),
        Recorder::disabled(),
    );
    let mut checked = 0usize;
    for src in (0..3000u32).step_by(97) {
        // ~30 candidates inside 1 km; ef = max(64, 10·4) covers them all.
        let exact = engine.top_k_related(src, 1.0, 10, 1);
        let (ann, mode) = engine.top_k_related_mode(src, 1.0, 10, 1, false);
        if exact.is_empty() {
            continue;
        }
        assert_eq!(mode, "ann", "src {src}");
        assert_eq!(
            ranking_key(&ann),
            ranking_key(&exact),
            "src {src}: full-coverage scan must reproduce the exact response"
        );
        checked += 1;
    }
    assert!(checked > 20, "fixture degenerated: only {checked} queries");
}

/// With `ef` far below the candidate count the scan actually prunes, and
/// recall is bounded by quantization ranking error alone — which must
/// stay above the 0.95 gate. Returned scores stay bitwise-exact.
#[test]
fn scan_regime_recall_meets_bar_under_pruning() {
    let engine = engine_with(
        synthetic_store(4000, 16, 13, true),
        scan_opts(),
        Recorder::disabled(),
    );
    let (mut total, mut n_queries) = (0.0f64, 0usize);
    for src in (0..4000u32).step_by(61) {
        // ~350 candidates inside 3.5 km, ef = 64: real pruning.
        let exact = engine.top_k_related(src, 3.5, 10, 1);
        let (ann, mode) = engine.top_k_related_mode(src, 3.5, 10, 1, false);
        if exact.len() < 10 {
            continue;
        }
        assert_eq!(mode, "ann");
        for n in &ann {
            let want = exact.iter().find(|e| e.poi == n.poi);
            if let Some(e) = want {
                assert_eq!(
                    n.score.to_bits(),
                    e.score.to_bits(),
                    "src {src} poi {}",
                    n.poi
                );
            }
        }
        total += recall(&ann, &exact);
        n_queries += 1;
    }
    assert!(
        n_queries > 30,
        "fixture degenerated: only {n_queries} queries"
    );
    let avg = total / n_queries as f64;
    assert!(avg >= 0.95, "scan recall@10 {avg:.4} below the 0.95 gate");
}

/// The beam regime: broad radius, graph walk under the quantized
/// similarity. Recall must clear the gate and every returned score must
/// equal the exact kernel's bits for that pair.
#[test]
fn beam_regime_recall_meets_bar() {
    let engine = engine_with(
        synthetic_store(4000, 16, 17, true),
        beam_opts(),
        Recorder::disabled(),
    );
    let (mut total, mut n_queries) = (0.0f64, 0usize);
    for src in (0..4000u32).step_by(121) {
        let exact = engine.top_k_related(src, 30.0, 10, 0);
        let (ann, mode) = engine.top_k_related_mode(src, 30.0, 10, 0, false);
        assert_eq!(mode, "ann");
        for n in &ann {
            let s = engine.score(src, n.poi);
            assert_eq!(
                n.score.to_bits(),
                s.scores()[0].to_bits(),
                "src {src} poi {}: beam result must carry exact-kernel bits",
                n.poi
            );
        }
        total += recall(&ann, &exact);
        n_queries += 1;
    }
    assert!(n_queries > 20);
    let avg = total / n_queries as f64;
    assert!(avg >= 0.95, "beam recall@10 {avg:.4} below the 0.95 gate");
}

/// Manufactured ties: clusters of POIs sharing one embedding row score
/// identically (distance scoring off), so ordering is decided purely by
/// the `(score desc, poi asc)` tie-break — which must come out the same
/// on the exact and ANN paths.
#[test]
fn tie_break_is_identical_on_exact_and_ann_paths() {
    let mut store = synthetic_store(1500, 16, 19, false);
    // Three clusters of ten duplicates each, scattered across the id
    // space so the grid order differs from the id order.
    for (c, base) in [(0usize, 40usize), (1, 700), (2, 1310)] {
        let row: Vec<f32> = store.pois.row(100 + c * 13).to_vec();
        for i in 0..10 {
            store.pois.row_mut(base + i * 7).copy_from_slice(&row);
        }
    }
    store.build_ann(AnnParams {
        seed: 19,
        ..AnnParams::default()
    });
    let engine = engine_with(
        store,
        AnnOpts {
            // Wide ef so the scan keeps every candidate: any ordering
            // difference is then a tie-break bug, not a recall artifact.
            ef_search: 1 << 16,
            ..scan_opts()
        },
        Recorder::disabled(),
    );
    let mut tied_queries = 0usize;
    for src in (0..1500u32).step_by(23) {
        let exact = engine.top_k_related(src, 6.0, 25, 2);
        let (ann, mode) = engine.top_k_related_mode(src, 6.0, 25, 2, false);
        if exact.is_empty() {
            continue;
        }
        assert_eq!(mode, "ann");
        assert_eq!(
            ranking_key(&ann),
            ranking_key(&exact),
            "src {src}: tie-break order diverged between exact and ANN"
        );
        let mut score_ids: std::collections::HashMap<u32, Vec<u32>> = Default::default();
        for n in &exact {
            score_ids.entry(n.score.to_bits()).or_default().push(n.poi);
        }
        if score_ids.values().any(|ids| ids.len() >= 2) {
            tied_queries += 1;
            // Within a tie, ids must ascend.
            for ids in score_ids.values() {
                assert!(
                    ids.windows(2).all(|w| w[0] < w[1]),
                    "src {src}: tie ids not ascending"
                );
            }
        }
    }
    assert!(
        tied_queries > 0,
        "fixture never produced an observable tie — test is vacuous"
    );
}

/// Dispatch contract: `exact: true` and tiny candidate sets both serve
/// the exact path (and say so), disabled ANN serves exact, and the ANN
/// regimes report their counters.
#[test]
fn dispatch_modes_and_counters() {
    // exact=true forces the oracle path even with ANN available.
    let engine = engine_with(
        synthetic_store(2000, 16, 23, true),
        scan_opts(),
        Recorder::disabled(),
    );
    let (_, mode) = engine.top_k_related_mode(5, 1.0, 10, 1, true);
    assert_eq!(mode, "exact");

    // Tiny populations delegate to exact even when ANN is on.
    let engine = engine_with(
        synthetic_store(2000, 16, 23, true),
        AnnOpts {
            min_exact: 1 << 20,
            ..AnnOpts::default()
        },
        Recorder::disabled(),
    );
    let (_, mode) = engine.top_k_related_mode(5, 1.0, 10, 1, false);
    assert_eq!(mode, "exact");

    // enabled=false is a global off switch.
    let engine = engine_with(
        synthetic_store(2000, 16, 23, true),
        AnnOpts {
            enabled: false,
            ..scan_opts()
        },
        Recorder::disabled(),
    );
    let (_, mode) = engine.top_k_related_mode(5, 1.0, 10, 1, false);
    assert_eq!(mode, "exact");

    // Scan regime fills the ANN counters.
    let rec = Recorder::enabled("ann_counters_scan");
    let engine = engine_with(
        synthetic_store(2000, 16, 23, true),
        scan_opts(),
        rec.clone(),
    );
    let (res, mode) = engine.top_k_related_mode(5, 1.0, 10, 1, false);
    assert_eq!(mode, "ann");
    assert!(!res.is_empty());
    assert!(rec.counter(Counter::AnnNodesVisited) > 0);
    assert!(rec.counter(Counter::AnnCandidates) > 0);
    assert_eq!(
        rec.counter(Counter::AnnRescored),
        rec.counter(Counter::ServePairs),
        "every rescored candidate is a served pair"
    );

    // Beam regime (radius covering most of the box, so the selectivity
    // guard lets the walk run): visited nodes and the radius filter both
    // show up.
    let rec = Recorder::enabled("ann_counters_beam");
    let engine = engine_with(
        synthetic_store(2000, 16, 23, true),
        beam_opts(),
        rec.clone(),
    );
    let (res, mode) = engine.top_k_related_mode(5, 9.0, 10, 1, false);
    assert_eq!(mode, "ann");
    assert!(!res.is_empty());
    assert!(rec.counter(Counter::AnnNodesVisited) > 0);
    assert!(
        rec.counter(Counter::AnnRadiusPruned) > 0,
        "a 9 km radius over an 18 km box must prune beam candidates"
    );
    assert!(rec.counter(Counter::AnnRescored) > 0);
}

/// Checkpoint round-trip: `save_checkpoint_indexed` persists the graph
/// bit-exactly, `from_checkpoint` adopts it, and an un-indexed checkpoint
/// rebuilds the identical graph from the config seed (determinism).
#[test]
fn ann_graph_round_trips_through_checkpoint() {
    let cfg = PrimConfig {
        dim: 16,
        cat_dim: 8,
        epochs: 3,
        val_check_every: 0,
        ..PrimConfig::quick()
    };
    let ds = Dataset::beijing(Scale::Quick).subsample(0.2, 5);
    let inputs = ModelInputs::build(
        &ds.graph,
        &ds.taxonomy,
        &ds.attrs,
        ds.graph.edges(),
        None,
        &cfg,
    );
    let mut model = PrimModel::new(cfg, &inputs);
    fit(&mut model, &inputs, &ds.graph, ds.graph.edges(), None, None);

    let built = EmbeddingStore::from_model(&model, &inputs, ds.relation_names.clone());
    let graph = built
        .ann
        .as_ref()
        .expect("from_model indexes")
        .graph
        .clone();

    // Indexed save → the exact graph comes back and is adopted.
    let indexed = tmp("indexed.ckpt");
    save_checkpoint_indexed(
        &indexed,
        "ann_roundtrip",
        &model,
        &ds.graph,
        &ds.taxonomy,
        &ds.attrs,
        &ds.relation_names,
        &graph,
    )
    .unwrap();
    let ckpt = load_checkpoint(&indexed).unwrap();
    assert_eq!(
        ckpt.ann_graph.as_ref(),
        Some(&graph),
        "persisted graph differs"
    );
    let adopted = EmbeddingStore::from_checkpoint(&ckpt).unwrap();
    assert_eq!(adopted.ann.as_ref().unwrap().graph, graph);

    // Plain save → no ann tensors, but the rebuild is deterministic and
    // lands on the same graph.
    let plain = tmp("plain.ckpt");
    save_checkpoint(
        &plain,
        "ann_rebuild",
        &model,
        &ds.graph,
        &ds.taxonomy,
        &ds.attrs,
        &ds.relation_names,
    )
    .unwrap();
    let ckpt = load_checkpoint(&plain).unwrap();
    assert!(ckpt.ann_graph.is_none());
    let rebuilt = EmbeddingStore::from_checkpoint(&ckpt).unwrap();
    assert_eq!(
        rebuilt.ann.as_ref().unwrap().graph,
        graph,
        "seeded construction must be deterministic across processes"
    );

    // The adopted store serves the same responses as the built one.
    let opts = EngineOpts::default();
    let a = ServeEngine::new(built, &opts, Recorder::disabled());
    let b = ServeEngine::new(adopted, &opts, Recorder::disabled());
    for src in (0..a.store().n_pois() as u32).step_by(17) {
        let (ra, ma) = a.top_k_related_mode(src, 2.0, 5, 0, false);
        let (rb, mb) = b.top_k_related_mode(src, 2.0, 5, 0, false);
        assert_eq!(ma, mb, "src {src}");
        assert_eq!(ranking_key(&ra), ranking_key(&rb), "src {src}");
    }
}

/// Hot reload under load: the ANN index rides inside the store, so a
/// swap can never pair the new tables with the old graph. Every response
/// observed while swapping must be wholly old or wholly new.
#[test]
fn reload_swaps_store_and_index_atomically_under_load() {
    let ann = scan_opts();
    let make = |seed: u64| {
        Arc::new(engine_with(
            synthetic_store(1200, 16, seed, true),
            ann,
            Recorder::disabled(),
        ))
    };
    let old = make(31);
    let new = make(32);
    let query = |e: &ServeEngine| e.top_k_related_mode(7, 2.0, 10, 1, false).0;
    let want_old = ranking_key(&query(&old));
    let want_new = ranking_key(&query(&new));
    assert_ne!(want_old, want_new, "stores must be distinguishable");

    let slot = EngineSlot::new(Arc::clone(&old));
    let mut workers = Vec::new();
    for _ in 0..4 {
        let slot = Arc::clone(&slot);
        let (want_old, want_new) = (want_old.clone(), want_new.clone());
        workers.push(std::thread::spawn(move || {
            let mut saw_new = false;
            for _ in 0..300 {
                let got = ranking_key(&slot.get().top_k_related_mode(7, 2.0, 10, 1, false).0);
                assert!(
                    got == want_old || got == want_new,
                    "observed a response matching neither engine — torn swap"
                );
                saw_new |= got == want_new;
            }
            saw_new
        }));
    }
    std::thread::sleep(std::time::Duration::from_millis(5));
    slot.swap(Arc::clone(&new));
    for w in workers {
        w.join().unwrap();
    }
    assert_eq!(slot.reloads(), 1);
    let after = ranking_key(&slot.get().top_k_related_mode(7, 2.0, 10, 1, false).0);
    assert_eq!(
        after, want_new,
        "post-swap responses must come from the new engine"
    );
}
