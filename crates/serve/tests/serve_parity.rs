//! Serving parity: after save → load → rebuild, the engine's scores are
//! bitwise identical to [`PrimModel::score_pair_eager`] — with the cache
//! cold and warm, at one and at four kernel threads, through single,
//! batched and top-k paths, and via the micro-batcher.

use prim_core::{fit, ModelInputs, PrimConfig, PrimModel};
use prim_data::{Dataset, Scale};
use prim_graph::PoiId;
use prim_obs::Recorder;
use prim_serve::{
    load_checkpoint, save_checkpoint, Batcher, EmbeddingStore, EngineOpts, ServeCtx, ServeEngine,
};
use prim_tensor::kernel;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;

fn tmp(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join("prim_serve_parity_tests");
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(name)
}

struct Fixture {
    model: PrimModel,
    inputs: ModelInputs,
    engine: Arc<ServeEngine>,
    table: prim_core::EmbeddingTable,
}

/// Trains a small model, checkpoints it, reloads the checkpoint and
/// builds an engine from the *reloaded* state — every comparison below
/// crosses the full persistence boundary.
fn fixture(cfg: PrimConfig, cache_capacity: usize) -> Fixture {
    let ds = Dataset::beijing(Scale::Quick).subsample(0.2, 5);
    let inputs = ModelInputs::build(
        &ds.graph,
        &ds.taxonomy,
        &ds.attrs,
        ds.graph.edges(),
        None,
        &cfg,
    );
    let mut model = PrimModel::new(cfg, &inputs);
    fit(&mut model, &inputs, &ds.graph, ds.graph.edges(), None, None);

    let path = tmp(&format!("parity_{cache_capacity}.ckpt"));
    save_checkpoint(
        &path,
        "parity",
        &model,
        &ds.graph,
        &ds.taxonomy,
        &ds.attrs,
        &ds.relation_names,
    )
    .unwrap();
    let ckpt = load_checkpoint(&path).unwrap();
    let (loaded, loaded_inputs) = ckpt.rebuild().unwrap();
    let store = EmbeddingStore::from_model(&loaded, &loaded_inputs, ckpt.relation_names.clone());
    let opts = EngineOpts {
        cache_capacity,
        ..EngineOpts::default()
    };
    let engine = Arc::new(ServeEngine::new(store, &opts, Recorder::disabled()));

    // Reference table from the ORIGINAL (pre-save) model: parity across
    // the checkpoint boundary, not just within one process state.
    let table = model.embed(&inputs);
    Fixture {
        model,
        inputs,
        engine,
        table,
    }
}

fn random_pairs(n_pois: usize, count: usize, seed: u64) -> Vec<(u32, u32)> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..count)
        .map(|_| {
            let a = rng.gen_range(0..n_pois as u32);
            let mut b = rng.gen_range(0..n_pois as u32);
            if b == a {
                b = (b + 1) % n_pois as u32;
            }
            (a, b)
        })
        .collect()
}

fn assert_pair_parity(fx: &Fixture, pairs: &[(u32, u32)], label: &str) {
    let phi = fx.model.phi();
    for &(a, b) in pairs {
        let got = fx.engine.score(a, b);
        let bin = fx.inputs.pair_bin(PoiId(a), PoiId(b), fx.model.config());
        assert_eq!(got.bin, bin, "{label}: bin for ({a},{b})");
        assert_eq!(got.scores().len(), phi + 1);
        for r in 0..=phi {
            let want = fx
                .model
                .score_pair_eager(&fx.table, PoiId(a), r, PoiId(b), bin);
            assert_eq!(
                got.scores()[r].to_bits(),
                want.to_bits(),
                "{label}: score ({a},{b}) relation {r}"
            );
        }
    }
}

#[test]
fn engine_matches_eager_bitwise_cold_warm_and_across_threads() {
    let fx = fixture(
        PrimConfig {
            dim: 16,
            cat_dim: 8,
            epochs: 5,
            val_check_every: 0,
            ..PrimConfig::quick()
        },
        4096,
    );
    let pairs = random_pairs(fx.engine.store().n_pois(), 1000, 42);

    kernel::set_threads(1);
    assert_pair_parity(&fx, &pairs, "cold cache, 1 thread");
    // Second pass: everything now comes from the cache and must still be
    // the same bits.
    assert_pair_parity(&fx, &pairs, "warm cache, 1 thread");
    let warm = fx.engine.score(pairs[0].0, pairs[0].1);
    assert!(warm.cached, "second pass must hit the cache");

    kernel::set_threads(4);
    assert_pair_parity(&fx, &pairs, "warm cache, 4 threads");
    kernel::set_threads(0);
}

#[test]
fn batch_and_threads_do_not_change_bits() {
    let fx = fixture(
        PrimConfig {
            dim: 16,
            cat_dim: 8,
            epochs: 4,
            val_check_every: 0,
            ..PrimConfig::quick()
        },
        0, // cache off: every call exercises the kernel
    );
    let pairs = random_pairs(fx.engine.store().n_pois(), 512, 7);

    kernel::set_threads(1);
    let one = fx.engine.batch(&pairs);
    kernel::set_threads(4);
    let four = fx.engine.batch(&pairs);
    kernel::set_threads(0);

    for (x, y) in one.iter().zip(&four) {
        assert_eq!(x.src, y.src);
        for (a, b) in x.scores().iter().zip(y.scores()) {
            assert_eq!(a.to_bits(), b.to_bits(), "thread count changed bits");
        }
    }
    // Batched equals single-pair equals eager.
    for (i, s) in one.iter().enumerate() {
        let single = fx.engine.score(s.src, s.dst);
        for (a, b) in s.scores().iter().zip(single.scores()) {
            assert_eq!(a.to_bits(), b.to_bits(), "batch vs single, pair {i}");
        }
        for r in 0..s.scores().len() {
            let want = fx
                .model
                .score_pair_eager(&fx.table, PoiId(s.src), r, PoiId(s.dst), s.bin);
            assert_eq!(s.scores()[r].to_bits(), want.to_bits(), "batch vs eager");
        }
    }
}

#[test]
fn parity_holds_without_distance_scoring() {
    let fx = fixture(
        PrimConfig {
            dim: 16,
            cat_dim: 8,
            epochs: 3,
            val_check_every: 0,
            use_distance_scoring: false,
            ..PrimConfig::quick()
        },
        64,
    );
    let pairs = random_pairs(fx.engine.store().n_pois(), 200, 11);
    assert_pair_parity(&fx, &pairs, "no distance scoring");
}

#[test]
fn best_relation_matches_predict_pairs() {
    let fx = fixture(
        PrimConfig {
            dim: 16,
            cat_dim: 8,
            epochs: 5,
            val_check_every: 0,
            ..PrimConfig::quick()
        },
        1024,
    );
    let pairs = random_pairs(fx.engine.store().n_pois(), 300, 23);
    let id_pairs: Vec<(PoiId, PoiId)> = pairs.iter().map(|&(a, b)| (PoiId(a), PoiId(b))).collect();
    let want = fx.model.predict_pairs(&fx.table, &fx.inputs, &id_pairs);
    for (&(a, b), w) in pairs.iter().zip(&want) {
        assert_eq!(fx.engine.score(a, b).best, *w, "argmax for ({a},{b})");
    }
}

#[test]
fn top_k_is_deterministic_and_correctly_ranked() {
    let fx = fixture(
        PrimConfig {
            dim: 16,
            cat_dim: 8,
            epochs: 4,
            val_check_every: 0,
            ..PrimConfig::quick()
        },
        0,
    );
    let n = fx.engine.store().n_pois();
    for src in [0u32, (n as u32) / 2, n as u32 - 1] {
        let a = fx.engine.top_k_related(src, 2.0, 5, 0);
        kernel::set_threads(4);
        let b = fx.engine.top_k_related(src, 2.0, 5, 0);
        kernel::set_threads(0);
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.poi, y.poi, "top-k order must be thread-independent");
            assert_eq!(x.score.to_bits(), y.score.to_bits());
        }
        // Scores descend; ties (if any) break on ascending poi id.
        assert!(a
            .windows(2)
            .all(|w| w[1].score.total_cmp(&w[0].score).is_le()));
        // Every returned score is bitwise the eager score.
        for nb in &a {
            let bin = fx
                .inputs
                .pair_bin(PoiId(src), PoiId(nb.poi), fx.model.config());
            let want = fx
                .model
                .score_pair_eager(&fx.table, PoiId(src), 0, PoiId(nb.poi), bin);
            assert_eq!(nb.score.to_bits(), want.to_bits());
        }
    }
}

#[test]
fn micro_batcher_returns_engine_bits() {
    let fx = fixture(
        PrimConfig {
            dim: 12,
            cat_dim: 6,
            epochs: 3,
            val_check_every: 0,
            ..PrimConfig::quick()
        },
        256,
    );
    let opts = EngineOpts::default();
    let batcher = Arc::new(Batcher::new(Arc::clone(&fx.engine), &opts));
    let pairs = random_pairs(fx.engine.store().n_pois(), 64, 3);

    // Concurrent submitters exercise actual batch formation.
    let results: Vec<prim_serve::PairScores> = std::thread::scope(|s| {
        let handles: Vec<_> = pairs
            .iter()
            .map(|&(a, b)| {
                let batcher = Arc::clone(&batcher);
                s.spawn(move || batcher.submit(a, b))
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    for r in &results {
        let direct = fx.engine.score(r.src, r.dst);
        for (a, b) in r.scores().iter().zip(direct.scores()) {
            assert_eq!(a.to_bits(), b.to_bits(), "batcher vs direct");
        }
    }
}

#[test]
fn tcp_server_round_trip_on_loopback() {
    use std::io::{BufRead, BufReader, Write};

    let fx = fixture(
        PrimConfig {
            dim: 12,
            cat_dim: 6,
            epochs: 3,
            val_check_every: 0,
            ..PrimConfig::quick()
        },
        256,
    );
    let ctx = ServeCtx::direct(Arc::clone(&fx.engine));
    let server = prim_serve::TcpServer::bind("127.0.0.1:0", ctx).unwrap();
    let addr = server.local_addr().unwrap();
    let server_thread = std::thread::spawn(move || server.run().unwrap());

    let mut conn = std::net::TcpStream::connect(addr).unwrap();
    let mut reader = BufReader::new(conn.try_clone().unwrap());

    writeln!(conn, "{{\"op\": \"score\", \"src\": 0, \"dst\": 1}}").unwrap();
    let mut line = String::new();
    reader.read_line(&mut line).unwrap();
    let v = prim_obs::json::parse(line.trim()).unwrap();
    assert_eq!(v.get("ok"), Some(&prim_obs::json::Value::Bool(true)));
    let direct = fx.engine.score(0, 1);
    let got = v
        .get("result")
        .and_then(|r| r.get("best_score"))
        .and_then(|s| s.as_f64())
        .unwrap();
    assert!(
        (got - direct.best_score as f64).abs() < 1e-5,
        "protocol score {got} vs engine {}",
        direct.best_score
    );

    // Malformed line: structured error, connection stays up.
    writeln!(conn, "this is not json").unwrap();
    line.clear();
    reader.read_line(&mut line).unwrap();
    let v = prim_obs::json::parse(line.trim()).unwrap();
    assert_eq!(v.get("ok"), Some(&prim_obs::json::Value::Bool(false)));

    // Graceful shutdown stops the accept loop.
    writeln!(conn, "{{\"op\": \"shutdown\"}}").unwrap();
    line.clear();
    reader.read_line(&mut line).unwrap();
    assert!(line.contains("shutdown"));
    server_thread.join().unwrap();
}

#[test]
fn stdin_front_end_handles_requests_and_errors() {
    let fx = fixture(
        PrimConfig {
            dim: 12,
            cat_dim: 6,
            epochs: 3,
            val_check_every: 0,
            ..PrimConfig::quick()
        },
        256,
    );
    let ctx = ServeCtx::direct(Arc::clone(&fx.engine));
    let requests = "\
{\"op\": \"score\", \"src\": 0, \"dst\": 2}\n\
{\"op\": \"batch\", \"pairs\": [[0, 1], [2, 3]]}\n\
{\"op\": \"top_k\", \"src\": 0, \"radius_km\": 2.0, \"k\": 3, \"relation\": \"phi\"}\n\
{\"op\": \"nope\"}\n\
{\"op\": \"score\", \"src\": 999999, \"dst\": 0}\n\
{\"op\": \"shutdown\"}\n";
    let mut out = Vec::new();
    prim_serve::serve_stdin(&ctx, requests.as_bytes(), &mut out).unwrap();
    let text = String::from_utf8(out).unwrap();
    let lines: Vec<&str> = text.lines().collect();
    assert_eq!(lines.len(), 6, "one response per request:\n{text}");
    for (i, ok_expected) in [true, true, true, false, false, true].iter().enumerate() {
        let v = prim_obs::json::parse(lines[i]).unwrap();
        assert_eq!(
            v.get("ok"),
            Some(&prim_obs::json::Value::Bool(*ok_expected)),
            "line {i}: {}",
            lines[i]
        );
    }
}
