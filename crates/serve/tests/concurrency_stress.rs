//! Multi-tenant event loop under concurrent fire: client threads hammer
//! two cities with `score`/`top_k` while a reloader thread hot-swaps both
//! tenants' checkpoints in a loop. The invariants: zero failed requests,
//! no deadlock (a wall-clock watchdog, not a hung `join`), and per-tenant
//! request counters that reconcile exactly with what the clients sent —
//! reloads must neither drop requests nor leak them across tenants.

use prim_core::{ModelInputs, PrimConfig, PrimModel};
use prim_data::{Dataset, Scale};
use prim_obs::json::{self, Value};
use prim_obs::{Counter, Recorder};
use prim_serve::{
    save_checkpoint, ChaosClient, EmbeddingStore, EngineOpts, ServeCtx, ServeEngine, TcpServer,
    TenantSpec,
};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

const CLIENT_THREADS: usize = 4;
const REQUESTS_PER_CLIENT: usize = 60;
const RELOAD_ROUNDS: usize = 12;
/// Generous wall-clock budget; blowing it means a deadlock, not slowness.
const WATCHDOG: Duration = Duration::from_secs(120);

fn tmp(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("prim-serve-stress-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(name)
}

struct CityFixture {
    engine: Arc<ServeEngine>,
    /// Two checkpoints the reloader alternates between.
    ckpts: [PathBuf; 2],
}

/// Builds a city's engine (with its own recorder, so counters are
/// per-tenant) plus two distinct checkpoints for the reload loop.
fn city(name: &str, seed: u64) -> CityFixture {
    let ds = Dataset::beijing(Scale::Quick).subsample(0.1, seed);
    let cfg = PrimConfig {
        dim: 8,
        cat_dim: 4,
        epochs: 1,
        val_check_every: 0,
        ..PrimConfig::quick()
    };
    let inputs = ModelInputs::build(
        &ds.graph,
        &ds.taxonomy,
        &ds.attrs,
        ds.graph.edges(),
        None,
        &cfg,
    );
    let model = PrimModel::new(cfg, &inputs);
    let ckpts = [
        tmp(&format!("{name}-a.prim")),
        tmp(&format!("{name}-b.prim")),
    ];
    for (i, p) in ckpts.iter().enumerate() {
        save_checkpoint(
            p,
            &format!("{name}-v{i}"),
            &model,
            &ds.graph,
            &ds.taxonomy,
            &ds.attrs,
            &ds.relation_names,
        )
        .unwrap();
    }
    let store = EmbeddingStore::from_model(&model, &inputs, ds.relation_names.clone());
    let engine = Arc::new(ServeEngine::new(
        store,
        &EngineOpts::default(),
        Recorder::enabled(format!("stress-{name}")),
    ));
    CityFixture { engine, ckpts }
}

fn parse(response: &str) -> Value {
    json::parse(response).expect("responses are valid JSON")
}

#[test]
fn tenants_survive_concurrent_hammering_and_reloads() {
    let beijing = city("beijing", 3);
    let shanghai = city("shanghai", 5);
    let ctx = ServeCtx::multi(vec![
        TenantSpec::new("beijing", Arc::clone(&beijing.engine))
            .with_ckpt_path(beijing.ckpts[0].display().to_string()),
        TenantSpec::new("shanghai", Arc::clone(&shanghai.engine))
            .with_ckpt_path(shanghai.ckpts[0].display().to_string()),
    ]);
    let server = TcpServer::bind("127.0.0.1:0", ctx).unwrap().with_shards(2);
    let addr = server.local_addr().unwrap();
    let server_thread = std::thread::spawn(move || server.run());

    let n_beijing = beijing.engine.store().n_pois() as u32;
    let n_shanghai = shanghai.engine.store().n_pois() as u32;
    let sent_beijing = Arc::new(AtomicU64::new(0));
    let sent_shanghai = Arc::new(AtomicU64::new(0));
    let failures = Arc::new(AtomicU64::new(0));
    let done = Arc::new(AtomicU64::new(0)); // finished worker threads

    let mut workers = Vec::new();
    for t in 0..CLIENT_THREADS {
        let city_name = if t % 2 == 0 { "beijing" } else { "shanghai" };
        let n_pois = if t % 2 == 0 { n_beijing } else { n_shanghai };
        let sent = if t % 2 == 0 {
            Arc::clone(&sent_beijing)
        } else {
            Arc::clone(&sent_shanghai)
        };
        let failures = Arc::clone(&failures);
        let done = Arc::clone(&done);
        workers.push(std::thread::spawn(move || {
            let mut client = ChaosClient::connect(addr).expect("client connects");
            for i in 0..REQUESTS_PER_CLIENT {
                let src = (i as u32 * 7) % n_pois;
                let dst = (src + 1) % n_pois;
                let req = if i % 3 == 2 {
                    format!(
                        "{{\"op\": \"top_k\", \"src\": {src}, \"k\": 3, \"relation\": \"competitive\", \
                         \"radius_km\": 2.0, \"city\": \"{city_name}\"}}"
                    )
                } else {
                    format!(
                        "{{\"op\": \"score\", \"src\": {src}, \"dst\": {dst}, \
                         \"city\": \"{city_name}\"}}"
                    )
                };
                match client.request(&req) {
                    Ok(resp) => {
                        let v = parse(&resp);
                        if v.get("ok") == Some(&Value::Bool(true)) {
                            sent.fetch_add(1, Ordering::SeqCst);
                            // Routing must echo the tenant we asked for.
                            assert_eq!(
                                v.get("city").and_then(|c| c.as_str()),
                                Some(city_name),
                                "response for {city_name} mis-routed: {resp}"
                            );
                        } else {
                            failures.fetch_add(1, Ordering::SeqCst);
                            eprintln!("worker {t}: failed response {resp}");
                        }
                    }
                    Err(e) => {
                        failures.fetch_add(1, Ordering::SeqCst);
                        eprintln!("worker {t}: transport error {e}");
                    }
                }
            }
            done.fetch_add(1, Ordering::SeqCst);
        }));
    }

    // The reloader alternates each tenant between its two checkpoints
    // while the clients fire — every reload must succeed.
    let reloader_failures = Arc::new(AtomicU64::new(0));
    let reloader = {
        let beijing_ckpts = beijing.ckpts.clone();
        let shanghai_ckpts = shanghai.ckpts.clone();
        let failures = Arc::clone(&reloader_failures);
        let done = Arc::clone(&done);
        std::thread::spawn(move || {
            let mut client = ChaosClient::connect(addr).expect("reloader connects");
            for round in 0..RELOAD_ROUNDS {
                for (city_name, ckpts) in
                    [("beijing", &beijing_ckpts), ("shanghai", &shanghai_ckpts)]
                {
                    let path = ckpts[round % 2].display().to_string();
                    let req = format!(
                        "{{\"op\": \"reload\", \"path\": {}, \"city\": \"{city_name}\"}}",
                        json::str(&path)
                    );
                    match client.request(&req) {
                        Ok(resp) => {
                            if parse(&resp).get("ok") != Some(&Value::Bool(true)) {
                                failures.fetch_add(1, Ordering::SeqCst);
                                eprintln!("reload of {city_name} failed: {resp}");
                            }
                        }
                        Err(e) => {
                            failures.fetch_add(1, Ordering::SeqCst);
                            eprintln!("reload transport error: {e}");
                        }
                    }
                }
                std::thread::sleep(Duration::from_millis(5));
            }
            done.fetch_add(1, Ordering::SeqCst);
        })
    };

    // Watchdog: poll completion flags against a wall-clock budget instead
    // of joining blindly — a deadlocked server must fail the test, not
    // hang CI.
    let deadline = Instant::now() + WATCHDOG;
    let all = (CLIENT_THREADS + 1) as u64;
    while done.load(Ordering::SeqCst) < all {
        assert!(
            Instant::now() < deadline,
            "deadlock: {}/{all} threads finished within {WATCHDOG:?}",
            done.load(Ordering::SeqCst)
        );
        std::thread::sleep(Duration::from_millis(20));
    }
    for w in workers {
        w.join().unwrap();
    }
    reloader.join().unwrap();

    assert_eq!(failures.load(Ordering::SeqCst), 0, "zero failed requests");
    assert_eq!(
        reloader_failures.load(Ordering::SeqCst),
        0,
        "zero failed reloads"
    );

    // Per-tenant accounting: every ok score/top_k request a client counted
    // for a city must appear on exactly that city's recorder — reloads
    // share the recorder across engine swaps, so nothing is lost.
    let served_beijing = beijing.engine.recorder().counter(Counter::ServeRequests);
    let served_shanghai = shanghai.engine.recorder().counter(Counter::ServeRequests);
    assert_eq!(
        served_beijing,
        sent_beijing.load(Ordering::SeqCst),
        "beijing served != client total"
    );
    assert_eq!(
        served_shanghai,
        sent_shanghai.load(Ordering::SeqCst),
        "shanghai served != client total"
    );

    // Both tenants saw every one of their reloads.
    assert_eq!(
        beijing.engine.recorder().counter(Counter::ServeReloads),
        RELOAD_ROUNDS as u64,
        "beijing reload count"
    );
    assert_eq!(
        shanghai.engine.recorder().counter(Counter::ServeReloads),
        RELOAD_ROUNDS as u64,
        "shanghai reload count"
    );

    let mut closer = ChaosClient::connect(addr).unwrap();
    let _ = closer.request(r#"{"op": "shutdown"}"#);
    server_thread.join().unwrap().unwrap();
}
