//! Serving-side resilience: structured deadline/overload errors, graceful
//! `top_k` degradation, health probes, hot checkpoint reload with zero
//! failed in-flight requests, and clean handling of clients that vanish
//! or stall mid-request.

use prim_core::{ModelInputs, PrimConfig, PrimModel};
use prim_data::{Dataset, Scale};
use prim_obs::json::{self, Value};
use prim_obs::{Counter, Recorder};
use prim_serve::{
    handle_line, handle_request, save_checkpoint, Batcher, ChaosClient, EmbeddingStore, EngineOpts,
    ServeCtx, ServeEngine, ServeLimits, TcpServer,
};
use std::path::PathBuf;
use std::sync::Arc;
use std::time::{Duration, Instant};

fn tmp(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("prim-serve-resilience-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(name)
}

struct Fixture {
    engine: Arc<ServeEngine>,
    /// A checkpoint on disk the `reload` op can load.
    ckpt_path: PathBuf,
}

fn fixture(name: &str, run: &str) -> Fixture {
    let ds = Dataset::beijing(Scale::Quick).subsample(0.1, 3);
    let cfg = PrimConfig {
        dim: 8,
        cat_dim: 4,
        epochs: 1,
        val_check_every: 0,
        ..PrimConfig::quick()
    };
    let inputs = ModelInputs::build(
        &ds.graph,
        &ds.taxonomy,
        &ds.attrs,
        ds.graph.edges(),
        None,
        &cfg,
    );
    let model = PrimModel::new(cfg, &inputs);
    let ckpt_path = tmp(&format!("{name}.prim"));
    save_checkpoint(
        &ckpt_path,
        run,
        &model,
        &ds.graph,
        &ds.taxonomy,
        &ds.attrs,
        &ds.relation_names,
    )
    .unwrap();
    let store = EmbeddingStore::from_model(&model, &inputs, ds.relation_names.clone());
    let engine = Arc::new(ServeEngine::new(
        store,
        &EngineOpts::default(),
        Recorder::enabled("resilience-test"),
    ));
    Fixture { engine, ckpt_path }
}

fn parse(response: &str) -> Value {
    json::parse(response).expect("responses are valid JSON")
}

fn code(v: &Value) -> Option<String> {
    v.get("code").and_then(|c| c.as_str()).map(String::from)
}

#[test]
fn expired_deadline_returns_structured_error_immediately() {
    let fx = fixture("deadline", "v1");
    let ctx = ServeCtx::direct(Arc::clone(&fx.engine));
    let started = Instant::now();
    let h = handle_request(
        &ctx,
        r#"{"op": "score", "src": 0, "dst": 1}"#,
        Some(Instant::now()), // already expired
    );
    let v = parse(&h.response);
    assert_eq!(v.get("ok"), Some(&Value::Bool(false)));
    assert_eq!(code(&v).as_deref(), Some("deadline_exceeded"));
    assert!(
        started.elapsed() < Duration::from_secs(1),
        "the error must come back promptly, not after scoring"
    );
    assert_eq!(fx.engine.recorder().counter(Counter::ServeDeadlines), 1);
}

#[test]
fn saturated_gate_sheds_with_overloaded_and_recovers() {
    let fx = fixture("overload", "v1");
    let ctx = ServeCtx::direct(Arc::clone(&fx.engine)).with_limits(ServeLimits {
        queue_capacity: 1,
        ..ServeLimits::default()
    });
    let held = ctx.gate().admit().expect("first slot admits");

    let h = handle_line(&ctx, r#"{"op": "score", "src": 0, "dst": 1}"#);
    let v = parse(&h.response);
    assert_eq!(v.get("ok"), Some(&Value::Bool(false)));
    assert_eq!(code(&v).as_deref(), Some("overloaded"));
    assert_eq!(fx.engine.recorder().counter(Counter::ServeOverloads), 1);

    // Health answers even while saturated.
    let h = handle_line(&ctx, r#"{"op": "health"}"#);
    let v = parse(&h.response);
    assert_eq!(v.get("ok"), Some(&Value::Bool(true)));
    assert_eq!(v.get("status").and_then(|s| s.as_str()), Some("ok"));

    drop(held);
    let h = handle_line(&ctx, r#"{"op": "score", "src": 0, "dst": 1}"#);
    assert_eq!(parse(&h.response).get("ok"), Some(&Value::Bool(true)));
}

#[test]
fn top_k_degrades_to_grid_only_under_deadline_pressure() {
    let fx = fixture("degrade", "v1");
    let ctx = ServeCtx::direct(Arc::clone(&fx.engine)).with_limits(ServeLimits {
        degrade_margin: Duration::from_secs(3600),
        ..ServeLimits::default()
    });
    let req = r#"{"op": "top_k", "src": 0, "radius_km": 5.0, "k": 3, "relation": "phi"}"#;

    // Remaining budget (~10 s) is far under the margin: degraded answer.
    let h = handle_request(&ctx, req, Some(Instant::now() + Duration::from_secs(10)));
    let v = parse(&h.response);
    assert_eq!(v.get("ok"), Some(&Value::Bool(true)));
    assert_eq!(v.get("degraded"), Some(&Value::Bool(true)));
    assert_eq!(fx.engine.recorder().counter(Counter::ServeDegraded), 1);
    if let Some(results) = v.get("results").and_then(|r| r.as_arr()) {
        for r in results {
            assert!(r.get("poi").is_some());
            assert!(r.get("distance_km").is_some());
            assert!(r.get("score").is_none(), "degraded results carry no scores");
        }
    }

    // No deadline: the full scored path, marked un-degraded.
    let h = handle_line(&ctx, req);
    let v = parse(&h.response);
    assert_eq!(v.get("ok"), Some(&Value::Bool(true)));
    assert_eq!(v.get("degraded"), Some(&Value::Bool(false)));
}

#[test]
fn reload_swaps_the_engine_and_reports_failures_structurally() {
    let fx = fixture("reload-a", "v1");
    let fx2 = fixture("reload-b", "v2");
    let ctx = ServeCtx::direct(Arc::clone(&fx.engine));
    let before = ctx.engine();

    // Unknown path: structured failure, engine untouched.
    let h = handle_line(&ctx, r#"{"op": "reload", "path": "/nonexistent/x.prim"}"#);
    let v = parse(&h.response);
    assert_eq!(v.get("ok"), Some(&Value::Bool(false)));
    assert_eq!(code(&v).as_deref(), Some("reload_failed"));
    assert!(Arc::ptr_eq(&before, &ctx.engine()));

    // Real checkpoint: swapped atomically, counted, visible in health.
    let req = json::obj(&[
        ("op", json::str("reload")),
        ("path", json::str(fx2.ckpt_path.to_str().unwrap())),
    ]);
    let h = handle_line(&ctx, &req);
    let v = parse(&h.response);
    assert_eq!(v.get("ok"), Some(&Value::Bool(true)), "{}", h.response);
    assert_eq!(v.get("run").and_then(|r| r.as_str()), Some("v2"));
    assert!(
        !Arc::ptr_eq(&before, &ctx.engine()),
        "engine must be swapped"
    );
    assert_eq!(fx.engine.recorder().counter(Counter::ServeReloads), 1);

    let h = handle_line(&ctx, r#"{"op": "health"}"#);
    let v = parse(&h.response);
    assert_eq!(v.get("reloads").and_then(|r| r.as_f64()), Some(1.0));
}

/// Hot reload under live traffic: clients hammer `score` over TCP while a
/// reload lands mid-stream; every single request must succeed.
#[test]
fn hot_reload_fails_zero_inflight_requests() {
    let fx = fixture("hot-a", "v1");
    let fx2 = fixture("hot-b", "v2");
    let batcher = Arc::new(Batcher::new(Arc::clone(&fx.engine), &EngineOpts::default()));
    let ctx = ServeCtx::batched(Arc::clone(&fx.engine), batcher);
    let server = TcpServer::bind("127.0.0.1:0", ctx).unwrap();
    let addr = server.local_addr().unwrap();
    let server_thread = std::thread::spawn(move || server.run());

    let n_pois = fx.engine.store().n_pois() as u32;
    let mut clients = Vec::new();
    for t in 0..3u32 {
        clients.push(std::thread::spawn(move || -> usize {
            let mut failures = 0usize;
            let mut c = ChaosClient::connect(addr).unwrap();
            for i in 0..60u32 {
                let src = (t * 7 + i) % n_pois;
                let dst = (src + 1) % n_pois;
                let req = format!("{{\"op\": \"score\", \"src\": {src}, \"dst\": {dst}}}");
                match c.request(&req) {
                    Ok(resp) => {
                        let v = json::parse(&resp).unwrap();
                        if v.get("ok") != Some(&Value::Bool(true)) {
                            failures += 1;
                        }
                    }
                    Err(_) => failures += 1,
                }
            }
            failures
        }));
    }

    // Let traffic build, then reload mid-stream.
    std::thread::sleep(Duration::from_millis(30));
    let mut admin = ChaosClient::connect(addr).unwrap();
    let req = json::obj(&[
        ("op", json::str("reload")),
        ("path", json::str(fx2.ckpt_path.to_str().unwrap())),
    ]);
    let resp = admin.request(&req).unwrap();
    assert_eq!(
        json::parse(&resp).unwrap().get("ok"),
        Some(&Value::Bool(true)),
        "{resp}"
    );

    let total_failures: usize = clients.into_iter().map(|c| c.join().unwrap()).sum();
    assert_eq!(total_failures, 0, "hot reload must fail zero requests");

    let health = admin.request(r#"{"op": "health"}"#).unwrap();
    let v = json::parse(&health).unwrap();
    assert_eq!(v.get("reloads").and_then(|r| r.as_f64()), Some(1.0));

    let _ = admin.request(r#"{"op": "shutdown"}"#);
    server_thread.join().unwrap().unwrap();
}

/// Waits for a counter to reach `want`, with a bounded retry loop (the
/// server-side bump happens on a worker thread).
fn wait_for_counter(recorder: &Recorder, counter: Counter, want: u64) -> u64 {
    let deadline = Instant::now() + Duration::from_secs(5);
    loop {
        let got = recorder.counter(counter);
        if got >= want || Instant::now() >= deadline {
            return got;
        }
        std::thread::sleep(Duration::from_millis(10));
    }
}

#[test]
fn vanished_client_is_a_counted_clean_disconnect() {
    let fx = fixture("disconnect", "v1");
    let ctx = ServeCtx::direct(Arc::clone(&fx.engine));
    let server = TcpServer::bind("127.0.0.1:0", ctx).unwrap();
    let addr = server.local_addr().unwrap();
    let server_thread = std::thread::spawn(move || server.run());

    // Half a request line, then gone: the server sees EOF mid-line.
    let mut c = ChaosClient::connect(addr).unwrap();
    c.send_partial(r#"{"op": "score", "src": 0,"#, 12).unwrap();
    std::thread::sleep(Duration::from_millis(20));
    c.hang_up();

    let got = wait_for_counter(fx.engine.recorder(), Counter::ServeDisconnects, 1);
    assert!(got >= 1, "disconnect must be counted, got {got}");

    // The server is unharmed: a well-behaved client still gets answers.
    let mut ok_client = ChaosClient::connect(addr).unwrap();
    let resp = ok_client
        .request(r#"{"op": "score", "src": 0, "dst": 1}"#)
        .unwrap();
    assert_eq!(
        json::parse(&resp).unwrap().get("ok"),
        Some(&Value::Bool(true))
    );
    let _ = ok_client.request(r#"{"op": "shutdown"}"#);
    server_thread.join().unwrap().unwrap();
}

#[test]
fn stalled_mid_line_connection_is_closed_after_read_timeout() {
    let fx = fixture("stall", "v1");
    let ctx = ServeCtx::direct(Arc::clone(&fx.engine)).with_limits(ServeLimits {
        read_timeout: Some(Duration::from_millis(50)),
        ..ServeLimits::default()
    });
    let server = TcpServer::bind("127.0.0.1:0", ctx).unwrap();
    let addr = server.local_addr().unwrap();
    let server_thread = std::thread::spawn(move || server.run());

    // Send half a line and stall (slow-loris): the worker must give up
    // at the read timeout instead of being pinned forever.
    let mut loris = ChaosClient::connect(addr).unwrap();
    loris
        .send_partial(r#"{"op": "score", "src": 0,"#, 10)
        .unwrap();
    let got = wait_for_counter(fx.engine.recorder(), Counter::ServeDeadlines, 1);
    assert!(got >= 1, "stalled connection must be counted, got {got}");

    // A prompt client is unaffected by the stalled one.
    let mut ok_client = ChaosClient::connect(addr).unwrap();
    let resp = ok_client
        .request(r#"{"op": "score", "src": 0, "dst": 1}"#)
        .unwrap();
    assert_eq!(
        json::parse(&resp).unwrap().get("ok"),
        Some(&Value::Bool(true))
    );
    let _ = ok_client.request(r#"{"op": "shutdown"}"#);
    server_thread.join().unwrap().unwrap();
    drop(loris);
}

/// The event loop must keep the shed path prompt while misbehaving
/// connections pile up: slow readers pin admission permits (their queued
/// responses hold gate slots until flushed) and a slow loris holds a
/// half-sent line — a well-behaved client must still get `overloaded`
/// within a bounded wait, and full service once the stalled connections
/// are reaped by their timeouts.
#[test]
fn shed_path_stays_prompt_despite_slow_readers_and_loris() {
    let fx = fixture("shed", "v1");
    let ctx = ServeCtx::direct(Arc::clone(&fx.engine)).with_limits(ServeLimits {
        queue_capacity: 2,
        read_timeout: Some(Duration::from_millis(400)),
        write_timeout: Some(Duration::from_millis(1500)),
        ..ServeLimits::default()
    });
    let server = TcpServer::bind("127.0.0.1:0", ctx).unwrap();
    let addr = server.local_addr().unwrap();
    let server_thread = std::thread::spawn(move || server.run());

    // A slow loris holds one connection hostage mid-line.
    let mut loris = ChaosClient::connect(addr).unwrap();
    loris
        .send_partial(r#"{"op": "score", "src": 0,"#, 10)
        .unwrap();

    // Two slow readers flood large batch requests and never read a byte:
    // their responses overflow the socket buffers into the server's write
    // queues, pinning admission permits until the write timeout reaps them.
    // Each admitted response must exceed what the kernel will buffer for
    // an unread loopback connection (a few hundred KB), or the permit
    // releases at flush and the gate only saturates transiently within a
    // single tick. 4096 pairs make a ~1MB response; a handful of lines per
    // connection is enough to pin both permits.
    let n_pois = fx.engine.store().n_pois() as u32;
    let pairs: Vec<String> = (0..4096u32)
        .map(|i| format!("[{}, {}]", i % n_pois, (i + 1) % n_pois))
        .collect();
    let flood_req = format!("{{\"op\": \"batch\", \"pairs\": [{}]}}", pairs.join(", "));
    let mut floods = Vec::new();
    for _ in 0..2 {
        let mut c = ChaosClient::connect(addr).unwrap();
        c.flood_lines(&flood_req, 8);
        floods.push(c);
    }

    // The shed path must answer promptly — a stalled connection must not
    // starve it — and the saturated gate must actually shed.
    let mut fast = ChaosClient::connect(addr).unwrap();
    let mut saw_overloaded = false;
    for _ in 0..120 {
        let started = Instant::now();
        let resp = fast
            .request(r#"{"op": "score", "src": 0, "dst": 1}"#)
            .unwrap();
        assert!(
            started.elapsed() < Duration::from_secs(1),
            "responses must stay prompt while the gate is saturated"
        );
        if code(&parse(&resp)).as_deref() == Some("overloaded") {
            saw_overloaded = true;
            break;
        }
        std::thread::sleep(Duration::from_millis(25));
    }
    assert!(
        saw_overloaded,
        "slow readers must saturate the gate (overloads={}, requests={}, disconnects={})",
        fx.engine.recorder().counter(Counter::ServeOverloads),
        fx.engine.recorder().counter(Counter::ServeRequests),
        fx.engine.recorder().counter(Counter::ServeDisconnects),
    );
    assert!(fx.engine.recorder().counter(Counter::ServeOverloads) >= 1);

    // The loris is reaped at the read timeout (counted as a deadline) and
    // the slow readers at the write timeout, releasing their permits:
    // service recovers without restarting anything.
    let got = wait_for_counter(fx.engine.recorder(), Counter::ServeDeadlines, 1);
    assert!(got >= 1, "slow loris must be closed and counted, got {got}");
    let recovery_deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let resp = fast
            .request(r#"{"op": "score", "src": 0, "dst": 1}"#)
            .unwrap();
        if parse(&resp).get("ok") == Some(&Value::Bool(true)) {
            break;
        }
        assert!(
            Instant::now() < recovery_deadline,
            "gate must recover once stalled connections are reaped: {resp}"
        );
        std::thread::sleep(Duration::from_millis(50));
    }

    let _ = fast.request(r#"{"op": "shutdown"}"#);
    server_thread.join().unwrap().unwrap();
    drop(floods);
    drop(loris);
}

/// A zero-capacity batcher must not spawn a worker at all and still serve
/// every submission inline, bitwise-identical to direct engine calls.
#[test]
fn zero_capacity_batcher_serves_inline() {
    let fx = fixture("inline-batcher", "v1");
    let opts = EngineOpts {
        batch_max_pairs: 0,
        ..EngineOpts::default()
    };
    let batcher = Arc::new(Batcher::new(Arc::clone(&fx.engine), &opts));
    assert!(batcher.is_inline(), "zero capacity means no worker thread");

    let inline = batcher.submit(0, 1);
    let direct = fx.engine.score(0, 1);
    assert_eq!(inline.scores(), direct.scores(), "inline path is bitwise");
    assert_eq!(inline.best, direct.best);
    assert_eq!(inline.best_score.to_bits(), direct.best_score.to_bits());

    // The deadline variant honours an expired budget and serves otherwise.
    let soon = Instant::now() + Duration::from_secs(30);
    let scored = batcher.submit_deadline(2 % fx.engine.store().n_pois() as u32, 1, soon);
    assert!(scored.is_some(), "live budget must serve inline");
    let expired = batcher.submit_deadline(0, 1, Instant::now() - Duration::from_millis(1));
    assert!(expired.is_none(), "expired budget must miss, not panic");

    // End-to-end: a batched context over the inline batcher still answers.
    let ctx = ServeCtx::batched(Arc::clone(&fx.engine), batcher);
    let h = handle_line(&ctx, r#"{"op": "score", "src": 0, "dst": 1}"#);
    assert_eq!(parse(&h.response).get("ok"), Some(&Value::Bool(true)));
}

#[test]
fn unknown_op_and_bad_json_carry_codes() {
    let fx = fixture("codes", "v1");
    let ctx = ServeCtx::direct(Arc::clone(&fx.engine));

    let v = parse(&handle_line(&ctx, r#"{"op": "explode"}"#).response);
    assert_eq!(code(&v).as_deref(), Some("unknown_op"));

    let v = parse(&handle_line(&ctx, "not json at all").response);
    assert_eq!(code(&v).as_deref(), Some("bad_request"));
}
