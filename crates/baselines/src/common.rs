//! Shared scaffolding for all learned baselines.
//!
//! Every GNN baseline implements [`PairModel`]; a single generic trainer
//! ([`train_pair_model`]) and predictor ([`predict_pairs`]) then apply the
//! *same* objective PRIM uses (BCE with ω negatives, cross-relation
//! negatives and φ handling), which is what makes the Table 2 comparison
//! apples-to-apples.

use prim_core::{sample_epoch_triples, ModelInputs};
use prim_graph::{Edge, HeteroGraph, PoiId};
use prim_nn::{Adam, Binding, ParamId, ParamStore};
use prim_obs::{Counter, EpochRecord, Phase, Telemetry, TrainAbort};
use prim_tensor::{Graph, Var};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::HashSet;

/// Hyper-parameters shared by every learned baseline.
#[derive(Clone, Debug)]
pub struct BaselineConfig {
    /// Node embedding width.
    pub dim: usize,
    /// GNN layers (paper: 3 for all GNN methods).
    pub n_layers: usize,
    /// Attention heads where applicable (GAT, HAN, HGT).
    pub n_heads: usize,
    /// Adam learning rate.
    pub lr: f32,
    /// Decoupled weight decay.
    pub weight_decay: f32,
    /// Training epochs (full-batch).
    pub epochs: usize,
    /// Negative samples per positive, ω.
    pub omega: usize,
    /// Validate every this many epochs, keeping the best checkpoint.
    pub val_check_every: usize,
    /// Gradient clip (global norm).
    pub grad_clip: f32,
    /// Geographic sectors for DeepR.
    pub n_sectors: usize,
    /// Add free per-POI embeddings to the initial features (off by default,
    /// mirroring [`prim_core::PrimConfig::use_node_embeddings`]).
    pub use_node_embeddings: bool,
    /// Parameter/sampling seed.
    pub seed: u64,
}

impl BaselineConfig {
    /// Laptop-scale defaults aligned with [`prim_core::PrimConfig::quick`].
    pub fn quick() -> Self {
        BaselineConfig {
            dim: 24,
            n_layers: 2,
            n_heads: 2,
            lr: 0.01,
            weight_decay: 5e-4,
            epochs: 120,
            omega: 5,
            val_check_every: 10,
            grad_clip: 5.0,
            n_sectors: 2,
            use_node_embeddings: false,
            seed: 17,
        }
    }

    /// Paper-faithful sizes.
    pub fn paper() -> Self {
        BaselineConfig {
            dim: 128,
            n_layers: 3,
            n_heads: 4,
            lr: 0.001,
            epochs: 200,
            n_sectors: 4,
            ..Self::quick()
        }
    }
}

/// A learned model that scores `(p_i, r, p_j)` triples on the tape.
pub trait PairModel {
    /// Tape handles produced by the forward pass.
    type Fwd;

    /// Display name.
    fn name(&self) -> &'static str;

    /// The parameter store.
    fn store(&self) -> &ParamStore;

    /// Mutable parameter store (for the optimiser).
    fn store_mut(&mut self) -> &mut ParamStore;

    /// Shared hyper-parameters.
    fn config(&self) -> &BaselineConfig;

    /// Number of relation types (excluding φ).
    fn n_relations(&self) -> usize;

    /// Encodes the graph.
    fn forward(&self, g: &mut Graph, bind: &Binding, inputs: &ModelInputs) -> Self::Fwd;

    /// Scores triples, returning `n × 1` logits. `rel` entries equal to
    /// [`PairModel::n_relations`] denote φ.
    fn score(
        &self,
        g: &mut Graph,
        bind: &Binding,
        fwd: &Self::Fwd,
        src: &[usize],
        rel: &[usize],
        dst: &[usize],
    ) -> Var;
}

/// Initial node features shared by all GNN baselines:
/// `h⁰ = attrs·W_in + E_cat[category]` — attribute projection plus an
/// independently learned leaf-category embedding (no taxonomy structure;
/// that is PRIM's contribution).
pub struct InitialFeatures {
    /// Attribute projection.
    pub w_in: ParamId,
    /// Leaf-category embedding table.
    pub cat_table: ParamId,
    /// Free per-POI embeddings (transductive structure carrier).
    pub node_emb: ParamId,
}

impl InitialFeatures {
    /// Registers the parameters.
    pub fn new(
        store: &mut ParamStore,
        rng: &mut StdRng,
        attr_dim: usize,
        n_categories: usize,
        n_pois: usize,
        dim: usize,
    ) -> Self {
        InitialFeatures {
            w_in: store.add("w_in", prim_nn::init::xavier_uniform(rng, attr_dim, dim)),
            cat_table: store.add_no_decay(
                "cat_table",
                prim_nn::init::embedding(rng, n_categories, dim),
            ),
            node_emb: store.add_no_decay("node_emb", prim_nn::init::embedding(rng, n_pois, dim)),
        }
    }

    /// Builds `h⁰` on the tape.
    pub fn features(
        &self,
        g: &mut Graph,
        bind: &Binding,
        inputs: &ModelInputs,
        use_node_embeddings: bool,
    ) -> Var {
        let attrs = g.constant_ref(&inputs.attrs);
        let proj = g.matmul(attrs, bind.var(self.w_in));
        let cat = g.gather_rows_planned(bind.var(self.cat_table), &inputs.plans.leaf_gather);
        let with_cat = g.add(proj, cat);
        if use_node_embeddings {
            g.add(with_cat, bind.var(self.node_emb))
        } else {
            with_cat
        }
    }
}

/// DistMult scoring with a relation table whose last row is φ.
pub fn distmult_score(
    g: &mut Graph,
    h: Var,
    rel_table: Var,
    src: &[usize],
    rel: &[usize],
    dst: &[usize],
) -> Var {
    let h_src = g.gather_rows(h, src);
    let h_dst = g.gather_rows(h, dst);
    let hr = g.gather_rows(rel_table, rel);
    let lhs = g.mul(h_src, hr);
    g.rows_dot(lhs, h_dst)
}

/// Per-relation directed-edge index lists over an adjacency (edge positions,
/// not POI ids), used by encoders that treat each relation separately.
pub fn edges_by_relation(inputs: &ModelInputs) -> Vec<Vec<usize>> {
    let mut by_rel = vec![Vec::new(); inputs.n_relations];
    for (k, &r) in inputs.adjacency.rel().iter().enumerate() {
        by_rel[r as usize].push(k);
    }
    by_rel
}

/// Mean-normalisation coefficients per directed edge within its
/// `(dst, rel)` segment (`α = 1/|N^r_i|`).
pub fn segment_mean_coeffs(inputs: &ModelInputs) -> Vec<f32> {
    let seg = inputs.adjacency.intra_segment();
    let mut counts = vec![0usize; inputs.adjacency.num_segments()];
    for &s in seg {
        counts[s] += 1;
    }
    seg.iter().map(|&s| 1.0 / counts[s].max(1) as f32).collect()
}

/// Training report for baselines.
#[derive(Clone, Debug)]
pub struct BaselineReport {
    /// Per-epoch losses.
    pub losses: Vec<f32>,
    /// Wall-clock seconds per epoch.
    pub epoch_seconds: Vec<f64>,
    /// Best validation accuracy (if validation ran).
    pub best_val_accuracy: Option<f64>,
}

impl BaselineReport {
    /// Mean seconds per epoch.
    pub fn mean_epoch_seconds(&self) -> f64 {
        if self.epoch_seconds.is_empty() {
            0.0
        } else {
            self.epoch_seconds.iter().sum::<f64>() / self.epoch_seconds.len() as f64
        }
    }
}

/// Predicts the argmax relation in `R* = R ∪ {φ}` for each pair.
pub fn predict_pairs<M: PairModel>(
    model: &M,
    inputs: &ModelInputs,
    pairs: &[(PoiId, PoiId)],
) -> Vec<usize> {
    if pairs.is_empty() {
        return Vec::new();
    }
    let mut g = Graph::new();
    let bind = model.store().bind(&mut g);
    let fwd = model.forward(&mut g, &bind, inputs);
    let src: Vec<usize> = pairs.iter().map(|p| p.0 .0 as usize).collect();
    let dst: Vec<usize> = pairs.iter().map(|p| p.1 .0 as usize).collect();
    let n = pairs.len();
    let phi = model.n_relations();
    let mut best = vec![0usize; n];
    let mut best_score = vec![f32::NEG_INFINITY; n];
    for r in 0..=phi {
        let rel = vec![r; n];
        let logits = model.score(&mut g, &bind, &fwd, &src, &rel, &dst);
        let vals = g.value(logits);
        for i in 0..n {
            let s = vals[(i, 0)];
            if s > best_score[i] {
                best_score[i] = s;
                best[i] = r;
            }
        }
    }
    best
}

fn val_accuracy<M: PairModel>(
    model: &M,
    inputs: &ModelInputs,
    pairs: &[(PoiId, PoiId)],
    expected: &[usize],
) -> f64 {
    let preds = predict_pairs(model, inputs, pairs);
    let hits = preds
        .iter()
        .zip(expected.iter())
        .filter(|(p, e)| p == e)
        .count();
    hits as f64 / pairs.len().max(1) as f64
}

/// Trains any [`PairModel`] with the shared objective; mirrors
/// [`prim_core::fit`] minus the distance-specific machinery.
///
/// Telemetry comes from the environment (`PRIM_RUN_REPORT`,
/// `PRIM_GUARD_EVERY`), exactly as in [`prim_core::fit`].
///
/// # Panics
/// Panics when the environment-enabled finite guard aborts training. Use
/// [`train_pair_model_observed`] to handle [`TrainAbort`] as a value.
pub fn train_pair_model<M: PairModel>(
    model: &mut M,
    inputs: &ModelInputs,
    graph: &HeteroGraph,
    train_edges: &[Edge],
    visible: Option<&HashSet<PoiId>>,
    val_edges: Option<&[Edge]>,
) -> BaselineReport {
    let telemetry = Telemetry::from_env(model.name());
    let result = train_pair_model_observed(
        model,
        inputs,
        graph,
        train_edges,
        visible,
        val_edges,
        &telemetry,
    );
    telemetry.recorder.finish();
    match result {
        Ok(report) => report,
        Err(abort) => panic!("{abort}"),
    }
}

/// [`train_pair_model`] with explicit telemetry; guard aborts surface as
/// `Err`. The recorder is *not* finished — the caller flushes the report.
#[allow(clippy::too_many_arguments)] // full training context, flattened
pub fn train_pair_model_observed<M: PairModel>(
    model: &mut M,
    inputs: &ModelInputs,
    graph: &HeteroGraph,
    train_edges: &[Edge],
    visible: Option<&HashSet<PoiId>>,
    val_edges: Option<&[Edge]>,
    telemetry: &Telemetry,
) -> Result<BaselineReport, TrainAbort> {
    let cfg = model.config().clone();
    let mut rng = StdRng::seed_from_u64(cfg.seed.wrapping_add(0xBA5E));
    let mut adam = Adam::new(cfg.lr)
        .with_weight_decay(cfg.weight_decay)
        .with_recorder(telemetry.recorder.clone());
    let known = graph.edge_key_set();
    let phi = model.n_relations();

    // Validation set: held-out edges plus φ pairs.
    let val = val_edges
        .filter(|v| !v.is_empty() && cfg.val_check_every > 0)
        .map(|v| {
            let mut pairs: Vec<(PoiId, PoiId)> = v.iter().map(|e| (e.src, e.dst)).collect();
            let mut expected: Vec<usize> = v.iter().map(|e| e.rel.0 as usize).collect();
            for (a, b) in prim_graph::sample_non_relation_pairs(graph, v.len(), &mut rng) {
                pairs.push((a, b));
                expected.push(phi);
            }
            (pairs, expected)
        });
    let mut best_val = f64::NEG_INFINITY;
    let mut best_snapshot = None;

    let mut losses = Vec::with_capacity(cfg.epochs);
    let mut epoch_seconds = Vec::with_capacity(cfg.epochs);
    // One tape for the whole run; `reset()` keeps its buffers pooled so
    // steady-state epochs rebuild the tape without allocating.
    let mut g = Graph::new();
    let recorder = &telemetry.recorder;
    for epoch in 0..cfg.epochs {
        let t0 = std::time::Instant::now();
        let sample_t = recorder.phase(Phase::Sampling);
        let triples = sample_epoch_triples(
            graph,
            train_edges,
            inputs.n_pois,
            inputs.n_relations,
            cfg.omega,
            visible,
            &known,
            &mut rng,
        );
        let src: Vec<usize> = triples.src.iter().map(|p| p.0 as usize).collect();
        let dst: Vec<usize> = triples.dst.iter().map(|p| p.0 as usize).collect();
        drop(sample_t);

        g.reset();
        let fwd_t = recorder.phase(Phase::Forward);
        let bind = model.store().bind(&mut g);
        let fwd = model.forward(&mut g, &bind, inputs);
        let logits = model.score(&mut g, &bind, &fwd, &src, &triples.rel, &dst);
        let loss = g.bce_with_logits(logits, &triples.labels);
        let loss_val = g.value(loss).scalar();
        losses.push(loss_val);
        drop(fwd_t);
        let bwd_t = recorder.phase(Phase::Backward);
        let grads = g.backward(loss);
        model.store_mut().accumulate(&bind, &grads);
        g.recycle(grads);
        drop(bwd_t);
        // Full-batch training: one step per epoch, so the global step is
        // the epoch index. Gradients are checked before the loss so aborts
        // name a parameter group.
        if telemetry.guard.due(epoch as u64) {
            recorder.add(Counter::GuardChecks, 1);
            for (name, grad) in model.store().iter_grads() {
                telemetry
                    .guard
                    .check_gradient(epoch, epoch as u64, name, grad)?;
            }
            telemetry.guard.check_loss(epoch, epoch as u64, loss_val)?;
        }
        let norms = recorder
            .is_enabled()
            .then(|| (model.store().grad_norm(), model.store().param_grad_norms()));
        let opt_t = recorder.phase(Phase::Optimizer);
        model.store_mut().clip_grad_norm(cfg.grad_clip);
        adam.step(model.store_mut());
        drop(opt_t);
        recorder.add(Counter::Steps, 1);
        recorder.add(Counter::TriplesSeen, triples.labels.len() as u64);
        epoch_seconds.push(t0.elapsed().as_secs_f64());
        if let Some((grad_norm, per_param)) = norms {
            let mut record = EpochRecord::new(epoch, loss_val, grad_norm, adam.lr());
            record.param_grad_norms = per_param;
            record.pooled_buffers = g.pooled_buffers();
            recorder.record_epoch(record);
        }

        if let Some((pairs, expected)) = &val {
            if (epoch + 1) % cfg.val_check_every == 0 || epoch + 1 == cfg.epochs {
                let _eval_t = recorder.phase(Phase::Eval);
                recorder.add(Counter::ValChecks, 1);
                let acc = val_accuracy(model, inputs, pairs, expected);
                if acc > best_val {
                    best_val = acc;
                    best_snapshot = Some(model.store().snapshot());
                }
            }
        }
    }
    if let Some(snapshot) = &best_snapshot {
        model.store_mut().restore(snapshot);
    }
    Ok(BaselineReport {
        losses,
        epoch_seconds,
        best_val_accuracy: val.map(|_| best_val),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use prim_core::PrimConfig;
    use prim_data::{Dataset, Scale};
    use prim_nn::init;

    /// A minimal PairModel: frozen random features + DistMult.
    struct Dummy {
        store: ParamStore,
        cfg: BaselineConfig,
        feats: InitialFeatures,
        rel_table: ParamId,
        n_relations: usize,
    }

    impl PairModel for Dummy {
        type Fwd = (Var, Var);
        fn name(&self) -> &'static str {
            "dummy"
        }
        fn store(&self) -> &ParamStore {
            &self.store
        }
        fn store_mut(&mut self) -> &mut ParamStore {
            &mut self.store
        }
        fn config(&self) -> &BaselineConfig {
            &self.cfg
        }
        fn n_relations(&self) -> usize {
            self.n_relations
        }
        fn forward(&self, g: &mut Graph, bind: &Binding, inputs: &ModelInputs) -> Self::Fwd {
            let h = self
                .feats
                .features(g, bind, inputs, self.cfg.use_node_embeddings);
            (h, bind.var(self.rel_table))
        }
        fn score(
            &self,
            g: &mut Graph,
            bind: &Binding,
            fwd: &Self::Fwd,
            src: &[usize],
            rel: &[usize],
            dst: &[usize],
        ) -> Var {
            let _ = bind;
            distmult_score(g, fwd.0, fwd.1, src, rel, dst)
        }
    }

    fn dummy(inputs: &ModelInputs) -> Dummy {
        let cfg = BaselineConfig {
            epochs: 30,
            dim: 12,
            ..BaselineConfig::quick()
        };
        let mut rng = StdRng::seed_from_u64(5);
        let mut store = ParamStore::new();
        let feats = InitialFeatures::new(
            &mut store,
            &mut rng,
            inputs.attr_dim(),
            inputs.n_categories,
            inputs.n_pois,
            cfg.dim,
        );
        let rel_table = store.add(
            "rel",
            init::embedding(&mut rng, inputs.n_relations + 1, cfg.dim),
        );
        Dummy {
            store,
            cfg,
            feats,
            rel_table,
            n_relations: inputs.n_relations,
        }
    }

    fn small_inputs() -> (Dataset, ModelInputs) {
        let ds = Dataset::beijing(Scale::Quick).subsample(0.2, 8);
        let cfg = PrimConfig::quick();
        let inputs = ModelInputs::build(
            &ds.graph,
            &ds.taxonomy,
            &ds.attrs,
            ds.graph.edges(),
            None,
            &cfg,
        );
        (ds, inputs)
    }

    #[test]
    fn generic_trainer_reduces_loss() {
        let (ds, inputs) = small_inputs();
        let mut model = dummy(&inputs);
        let report = train_pair_model(&mut model, &inputs, &ds.graph, ds.graph.edges(), None, None);
        assert_eq!(report.losses.len(), 30);
        assert!(
            report.losses[29] < report.losses[0] * 0.9,
            "{:?}",
            &report.losses[..3]
        );
    }

    #[test]
    fn predictions_in_range() {
        let (ds, inputs) = small_inputs();
        let model = dummy(&inputs);
        let pairs = vec![(PoiId(0), PoiId(1)), (PoiId(1), PoiId(2))];
        let preds = predict_pairs(&model, &inputs, &pairs);
        assert!(preds.iter().all(|&p| p <= inputs.n_relations));
        let _ = ds;
    }

    #[test]
    fn segment_mean_coeffs_sum_to_one_per_segment() {
        let (_, inputs) = small_inputs();
        let coeffs = segment_mean_coeffs(&inputs);
        let mut sums = vec![0.0f32; inputs.adjacency.num_segments()];
        for (k, &s) in inputs.adjacency.intra_segment().iter().enumerate() {
            sums[s] += coeffs[k];
        }
        for s in sums {
            assert!((s - 1.0).abs() < 1e-5);
        }
    }

    #[test]
    fn edges_by_relation_partition() {
        let (_, inputs) = small_inputs();
        let by_rel = edges_by_relation(&inputs);
        let total: usize = by_rel.iter().map(|v| v.len()).sum();
        assert_eq!(total, inputs.adjacency.num_directed_edges());
        for (r, edges) in by_rel.iter().enumerate() {
            for &k in edges {
                assert_eq!(inputs.adjacency.rel()[k] as usize, r);
            }
        }
    }
}
