//! Decoupled per-relation baselines: DecGCN and DeepR.
//!
//! Both decompose the heterogeneous graph into one sub-graph per relation
//! type and learn *relation-specific* POI embeddings — the design the paper
//! argues against (Issue 1). A triple `(p_i, r, p_j)` is scored with the
//! embeddings of relation `r`'s sub-graph; the φ type, which has no
//! sub-graph, is scored against the mean of the per-relation embeddings.
//!
//! * **DecGCN** (Liu et al., CIKM'20): GCN per sub-graph, with a sigmoid
//!   co-attention gate that injects supplementary information from the
//!   other relations' embeddings after every layer.
//! * **DeepR** (Li et al., KDD'20): neighbours are partitioned into compass
//!   sectors by bearing and mean-aggregated per sector; the concatenated
//!   sector summaries plus the self representation pass through a linear
//!   transform.

use crate::common::{BaselineConfig, InitialFeatures, PairModel};
use prim_core::ModelInputs;
use prim_geo::sector_of;
use prim_nn::{init, Binding, ParamId, ParamStore};
use prim_tensor::{Graph, Matrix, Var};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Forward output: one embedding matrix per relation plus their mean
/// (used for φ), plus the relation table.
pub struct DecoupledFwd {
    per_rel: Vec<Var>,
    mean: Var,
    rel_table: Var,
}

/// Scores triples against per-relation embeddings by masking: triples of
/// relation `r` use `H_r`, φ triples use the mean embedding.
fn decoupled_score(
    g: &mut Graph,
    fwd: &DecoupledFwd,
    src: &[usize],
    rel: &[usize],
    dst: &[usize],
) -> Var {
    let n = src.len();
    let n_rel = fwd.per_rel.len();
    let mut total: Option<Var> = None;
    for r in 0..=n_rel {
        let h = if r < n_rel { fwd.per_rel[r] } else { fwd.mean };
        let mask = Matrix::from_fn(n, 1, |i, _| if rel[i] == r { 1.0 } else { 0.0 });
        if mask.sum() == 0.0 {
            continue;
        }
        let h_src = g.gather_rows(h, src);
        let h_dst = g.gather_rows(h, dst);
        let hr = g.gather_rows(fwd.rel_table, &vec![r; n]);
        let lhs = g.mul(h_src, hr);
        let scores = g.rows_dot(lhs, h_dst);
        let mask_c = g.constant(mask);
        let masked = g.mul(scores, mask_c);
        total = Some(match total {
            Some(acc) => g.add(acc, masked),
            None => masked,
        });
    }
    total.expect("score called with empty triple batch")
}

/// Per-relation edge arrays extracted once per forward.
struct RelEdges {
    src: Vec<usize>,
    dst: Vec<usize>,
    /// Edge position in the underlying adjacency (for sector lookups).
    pos: Vec<usize>,
}

fn split_edges_by_relation(inputs: &ModelInputs) -> Vec<RelEdges> {
    let mut out: Vec<RelEdges> = (0..inputs.n_relations)
        .map(|_| RelEdges {
            src: Vec::new(),
            dst: Vec::new(),
            pos: Vec::new(),
        })
        .collect();
    let adj = &inputs.adjacency;
    for k in 0..adj.num_directed_edges() {
        let r = adj.rel()[k] as usize;
        out[r].src.push(adj.src()[k] as usize);
        out[r].dst.push(adj.dst()[k] as usize);
        out[r].pos.push(k);
    }
    out
}

fn mean_of(g: &mut Graph, parts: &[Var]) -> Var {
    let mut acc = parts[0];
    for &p in &parts[1..] {
        acc = g.add(acc, p);
    }
    g.scale(acc, 1.0 / parts.len() as f32)
}

// ---------------------------------------------------------------------------
// DecGCN
// ---------------------------------------------------------------------------

/// DecGCN: per-relation GCN with co-attention fusion.
pub struct DecGcnModel {
    store: ParamStore,
    cfg: BaselineConfig,
    feats: InitialFeatures,
    rel_table: ParamId,
    /// Per layer, per relation: (W_msg, W_self); plus per layer W_gate.
    layers: Vec<(Vec<(ParamId, ParamId)>, ParamId)>,
    n_relations: usize,
}

impl DecGcnModel {
    /// Builds the model.
    pub fn new(cfg: BaselineConfig, inputs: &ModelInputs) -> Self {
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let mut store = ParamStore::new();
        let feats = InitialFeatures::new(
            &mut store,
            &mut rng,
            inputs.attr_dim(),
            inputs.n_categories,
            inputs.n_pois,
            cfg.dim,
        );
        let rel_table = store.add_no_decay(
            "rel",
            init::embedding(&mut rng, inputs.n_relations + 1, cfg.dim),
        );
        let layers = (0..cfg.n_layers)
            .map(|l| {
                let rels = (0..inputs.n_relations)
                    .map(|r| {
                        (
                            store.add(
                                format!("decgcn.l{l}.r{r}.w"),
                                init::xavier_uniform(&mut rng, cfg.dim, cfg.dim),
                            ),
                            store.add(
                                format!("decgcn.l{l}.r{r}.w0"),
                                init::xavier_uniform(&mut rng, cfg.dim, cfg.dim),
                            ),
                        )
                    })
                    .collect();
                let gate = store.add(
                    format!("decgcn.l{l}.gate"),
                    init::xavier_uniform(&mut rng, 2 * cfg.dim, cfg.dim),
                );
                (rels, gate)
            })
            .collect();
        DecGcnModel {
            store,
            cfg,
            feats,
            rel_table,
            layers,
            n_relations: inputs.n_relations,
        }
    }
}

impl PairModel for DecGcnModel {
    type Fwd = DecoupledFwd;

    fn name(&self) -> &'static str {
        "DecGCN"
    }

    fn store(&self) -> &ParamStore {
        &self.store
    }

    fn store_mut(&mut self) -> &mut ParamStore {
        &mut self.store
    }

    fn config(&self) -> &BaselineConfig {
        &self.cfg
    }

    fn n_relations(&self) -> usize {
        self.n_relations
    }

    fn forward(&self, g: &mut Graph, bind: &Binding, inputs: &ModelInputs) -> Self::Fwd {
        let by_rel = split_edges_by_relation(inputs);
        let h0 = self
            .feats
            .features(g, bind, inputs, self.cfg.use_node_embeddings);
        let mut hs: Vec<Var> = vec![h0; self.n_relations];
        for (rels, gate) in &self.layers {
            // Per-relation GCN step over its own sub-graph.
            let mut next: Vec<Var> = Vec::with_capacity(self.n_relations);
            for (r, &(w, w0)) in rels.iter().enumerate() {
                let h = hs[r];
                let agg = if by_rel[r].src.is_empty() {
                    g.matmul(h, bind.var(w0))
                } else {
                    let msgs = g.gather_rows(h, &by_rel[r].src);
                    let summed = g.segment_sum(msgs, &by_rel[r].dst, inputs.n_pois);
                    let deg = {
                        let mut counts = vec![0usize; inputs.n_pois];
                        for &d in &by_rel[r].dst {
                            counts[d] += 1;
                        }
                        Matrix::from_fn(inputs.n_pois, 1, |i, _| 1.0 / counts[i].max(1) as f32)
                    };
                    let deg_c = g.constant(deg);
                    let normed = g.scale_rows(summed, deg_c);
                    let proj = g.matmul(normed, bind.var(w));
                    let self_p = g.matmul(h, bind.var(w0));
                    g.add(proj, self_p)
                };
                next.push(g.elu(agg));
            }
            // Co-attention gate: z_r ← g ⊙ z_r + (1-g) ⊙ mean(others).
            let mut fused = Vec::with_capacity(self.n_relations);
            for r in 0..self.n_relations {
                let others: Vec<Var> = (0..self.n_relations)
                    .filter(|&o| o != r)
                    .map(|o| next[o])
                    .collect();
                if others.is_empty() {
                    fused.push(next[r]);
                    continue;
                }
                let other_mean = mean_of(g, &others);
                let cat = g.concat_cols(&[next[r], other_mean]);
                let gate_in = g.matmul(cat, bind.var(*gate));
                let gate_v = g.sigmoid(gate_in);
                let own = g.mul(next[r], gate_v);
                let ones = g.constant(Matrix::ones(inputs.n_pois, self.cfg.dim));
                let inv = g.sub(ones, gate_v);
                let borrowed = g.mul(other_mean, inv);
                fused.push(g.add(own, borrowed));
            }
            hs = fused;
        }
        let mean = mean_of(g, &hs);
        DecoupledFwd {
            per_rel: hs,
            mean,
            rel_table: bind.var(self.rel_table),
        }
    }

    fn score(
        &self,
        g: &mut Graph,
        _bind: &Binding,
        fwd: &Self::Fwd,
        src: &[usize],
        rel: &[usize],
        dst: &[usize],
    ) -> Var {
        decoupled_score(g, fwd, src, rel, dst)
    }
}

// ---------------------------------------------------------------------------
// DeepR
// ---------------------------------------------------------------------------

/// DeepR: sector-based aggregation per relation sub-graph.
pub struct DeepRModel {
    store: ParamStore,
    cfg: BaselineConfig,
    feats: InitialFeatures,
    rel_table: ParamId,
    /// Per layer, per relation: W mapping `(n_sectors+1)·dim → dim`.
    layers: Vec<Vec<ParamId>>,
    n_relations: usize,
}

impl DeepRModel {
    /// Builds the model.
    pub fn new(cfg: BaselineConfig, inputs: &ModelInputs) -> Self {
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let mut store = ParamStore::new();
        let feats = InitialFeatures::new(
            &mut store,
            &mut rng,
            inputs.attr_dim(),
            inputs.n_categories,
            inputs.n_pois,
            cfg.dim,
        );
        let rel_table = store.add_no_decay(
            "rel",
            init::embedding(&mut rng, inputs.n_relations + 1, cfg.dim),
        );
        let in_dim = (cfg.n_sectors + 1) * cfg.dim;
        let layers = (0..cfg.n_layers)
            .map(|l| {
                (0..inputs.n_relations)
                    .map(|r| {
                        store.add(
                            format!("deepr.l{l}.r{r}.w"),
                            init::xavier_uniform(&mut rng, in_dim, cfg.dim),
                        )
                    })
                    .collect()
            })
            .collect();
        DeepRModel {
            store,
            cfg,
            feats,
            rel_table,
            layers,
            n_relations: inputs.n_relations,
        }
    }
}

impl PairModel for DeepRModel {
    type Fwd = DecoupledFwd;

    fn name(&self) -> &'static str {
        "DeepR"
    }

    fn store(&self) -> &ParamStore {
        &self.store
    }

    fn store_mut(&mut self) -> &mut ParamStore {
        &mut self.store
    }

    fn config(&self) -> &BaselineConfig {
        &self.cfg
    }

    fn n_relations(&self) -> usize {
        self.n_relations
    }

    fn forward(&self, g: &mut Graph, bind: &Binding, inputs: &ModelInputs) -> Self::Fwd {
        let by_rel = split_edges_by_relation(inputs);
        let n_sectors = self.cfg.n_sectors;
        // Sector of each directed edge by compass bearing.
        let sectors: Vec<usize> = inputs
            .adjacency
            .bearing()
            .iter()
            .map(|&b| sector_of(b as f64, n_sectors))
            .collect();

        let h0 = self
            .feats
            .features(g, bind, inputs, self.cfg.use_node_embeddings);
        let mut hs: Vec<Var> = vec![h0; self.n_relations];
        for rels in &self.layers {
            let mut next = Vec::with_capacity(self.n_relations);
            for (r, &w) in rels.iter().enumerate() {
                let h = hs[r];
                let mut parts = Vec::with_capacity(n_sectors + 1);
                for s in 0..n_sectors {
                    // Mean aggregation of relation-r neighbours in sector s.
                    let idx: Vec<usize> = by_rel[r]
                        .pos
                        .iter()
                        .enumerate()
                        .filter(|(_, &k)| sectors[k] == s)
                        .map(|(i, _)| i)
                        .collect();
                    if idx.is_empty() {
                        parts.push(g.constant(Matrix::zeros(inputs.n_pois, self.cfg.dim)));
                        continue;
                    }
                    let src_s: Vec<usize> = idx.iter().map(|&i| by_rel[r].src[i]).collect();
                    let dst_s: Vec<usize> = idx.iter().map(|&i| by_rel[r].dst[i]).collect();
                    let msgs = g.gather_rows(h, &src_s);
                    let summed = g.segment_sum(msgs, &dst_s, inputs.n_pois);
                    let mut counts = vec![0usize; inputs.n_pois];
                    for &d in &dst_s {
                        counts[d] += 1;
                    }
                    let inv = g.constant(Matrix::from_fn(inputs.n_pois, 1, |i, _| {
                        1.0 / counts[i].max(1) as f32
                    }));
                    parts.push(g.scale_rows(summed, inv));
                }
                parts.push(h); // self representation
                let cat = g.concat_cols(&parts);
                let proj = g.matmul(cat, bind.var(w));
                next.push(g.elu(proj));
            }
            hs = next;
        }
        let mean = mean_of(g, &hs);
        DecoupledFwd {
            per_rel: hs,
            mean,
            rel_table: bind.var(self.rel_table),
        }
    }

    fn score(
        &self,
        g: &mut Graph,
        _bind: &Binding,
        fwd: &Self::Fwd,
        src: &[usize],
        rel: &[usize],
        dst: &[usize],
    ) -> Var {
        decoupled_score(g, fwd, src, rel, dst)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::{predict_pairs, train_pair_model};
    use prim_core::PrimConfig;
    use prim_data::{Dataset, Scale};
    use prim_graph::PoiId;

    fn small_inputs() -> (Dataset, ModelInputs) {
        let ds = Dataset::beijing(Scale::Quick).subsample(0.18, 31);
        let cfg = PrimConfig::quick();
        let inputs = ModelInputs::build(
            &ds.graph,
            &ds.taxonomy,
            &ds.attrs,
            ds.graph.edges(),
            None,
            &cfg,
        );
        (ds, inputs)
    }

    #[test]
    fn decgcn_trains_and_predicts() {
        let (ds, inputs) = small_inputs();
        let cfg = BaselineConfig {
            epochs: 12,
            dim: 12,
            n_layers: 2,
            ..BaselineConfig::quick()
        };
        let mut model = DecGcnModel::new(cfg, &inputs);
        let report = train_pair_model(&mut model, &inputs, &ds.graph, ds.graph.edges(), None, None);
        assert!(report.losses[11] < report.losses[0]);
        let preds = predict_pairs(
            &model,
            &inputs,
            &[(PoiId(0), PoiId(1)), (PoiId(2), PoiId(3))],
        );
        assert!(preds.iter().all(|&p| p <= inputs.n_relations));
    }

    #[test]
    fn deepr_trains_and_predicts() {
        let (ds, inputs) = small_inputs();
        let cfg = BaselineConfig {
            epochs: 12,
            dim: 12,
            n_layers: 2,
            ..BaselineConfig::quick()
        };
        let mut model = DeepRModel::new(cfg, &inputs);
        let report = train_pair_model(&mut model, &inputs, &ds.graph, ds.graph.edges(), None, None);
        assert!(report.losses[11] < report.losses[0]);
        let preds = predict_pairs(&model, &inputs, &[(PoiId(0), PoiId(1))]);
        assert!(preds[0] <= inputs.n_relations);
    }

    #[test]
    fn decoupled_relations_get_distinct_embeddings() {
        let (_, inputs) = small_inputs();
        let cfg = BaselineConfig {
            epochs: 1,
            dim: 8,
            n_layers: 1,
            ..BaselineConfig::quick()
        };
        let model = DeepRModel::new(cfg, &inputs);
        let mut g = Graph::new();
        let bind = model.store().bind(&mut g);
        let fwd = model.forward(&mut g, &bind, &inputs);
        assert_eq!(fwd.per_rel.len(), inputs.n_relations);
        // The two relations' sub-graphs differ, so embeddings must differ.
        assert_ne!(
            g.value(fwd.per_rel[0]).row(0),
            g.value(fwd.per_rel[1]).row(0)
        );
        assert!(g.value(fwd.mean).all_finite());
    }

    #[test]
    fn deepr_sector_partition_covers_all_edges() {
        let (_, inputs) = small_inputs();
        let sectors: Vec<usize> = inputs
            .adjacency
            .bearing()
            .iter()
            .map(|&b| sector_of(b as f64, 4))
            .collect();
        assert_eq!(sectors.len(), inputs.adjacency.num_directed_edges());
        assert!(sectors.iter().all(|&s| s < 4));
        // A city-wide edge set should populate several sectors.
        let used: std::collections::HashSet<usize> = sectors.into_iter().collect();
        assert!(used.len() >= 3, "sectors collapsed: {used:?}");
    }
}
