//! # prim-baselines
//!
//! All twelve comparison methods from the PRIM paper (Section 5.1.2),
//! implemented from scratch on the shared [`prim_tensor`] /
//! [`prim_nn`] substrate and trained with the *same* objective as PRIM so
//! Table 2's comparison is apples-to-apples:
//!
//! * rules — CAT, CAT-D ([`rules`]);
//! * random-walk embeddings — DeepWalk, node2vec with hand-rolled SGNS
//!   ([`walks`]);
//! * homogeneous GNNs — GCN, GAT ([`encoders`]);
//! * heterogeneous GNNs — HAN, HGT, R-GCN, CompGCN ([`encoders`]);
//! * decoupled per-relation models — DecGCN, DeepR ([`decoupled`]);
//! * the [`registry`] exposes every method (plus PRIM and its ablation
//!   variants) behind one [`registry::run_method`] call.

pub mod common;
pub mod decoupled;
pub mod encoders;
pub mod registry;
pub mod rules;
pub mod walks;

pub use common::{
    train_pair_model, train_pair_model_observed, BaselineConfig, BaselineReport, PairModel,
};
pub use registry::{run_method, time_training_epochs, Method, MethodRun, RunConfig};
pub use rules::{fit_rules, RuleModel};
pub use walks::{sgns_embeddings, WalkConfig, WalkModel};
