//! Random-walk embedding baselines: DeepWalk and node2vec
//! (paper Section 5.1.2).
//!
//! Both learn node embeddings with skip-gram negative sampling (SGNS) over
//! random walks on the union relationship graph (relation types ignored —
//! the paper lists them as homogeneous methods). node2vec uses p/q-biased
//! second-order walks. The frozen embeddings are then fed to a learned
//! DistMult pair scorer through the shared [`crate::common`] trainer, so the
//! evaluation protocol matches every other method.

use crate::common::{distmult_score, BaselineConfig, PairModel};
use prim_core::ModelInputs;
use prim_graph::Edge;
use prim_nn::{init, Binding, ParamId, ParamStore};
use prim_tensor::{Graph, Matrix, Var};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Walk and skip-gram hyper-parameters (paper: window 5, walk length 30,
/// 20 walks per node; the quick preset halves the walk budget).
#[derive(Clone, Debug)]
pub struct WalkConfig {
    /// Walks started per node.
    pub walks_per_node: usize,
    /// Steps per walk.
    pub walk_length: usize,
    /// Skip-gram window.
    pub window: usize,
    /// Negative samples per skip-gram pair.
    pub negatives: usize,
    /// Embedding width.
    pub dim: usize,
    /// SGNS epochs over the walk corpus.
    pub epochs: usize,
    /// Initial SGNS learning rate (linearly decayed).
    pub lr: f32,
    /// node2vec return parameter `p` (1 = DeepWalk).
    pub p: f64,
    /// node2vec in-out parameter `q` (1 = DeepWalk).
    pub q: f64,
    /// RNG seed.
    pub seed: u64,
}

impl WalkConfig {
    /// DeepWalk: unbiased walks.
    pub fn deepwalk_quick() -> Self {
        WalkConfig {
            walks_per_node: 10,
            walk_length: 20,
            window: 5,
            negatives: 5,
            dim: 24,
            epochs: 2,
            lr: 0.025,
            p: 1.0,
            q: 1.0,
            seed: 23,
        }
    }

    /// node2vec: biased walks (p = 1, q = 0.5 favours exploration).
    pub fn node2vec_quick() -> Self {
        WalkConfig {
            p: 1.0,
            q: 0.5,
            ..Self::deepwalk_quick()
        }
    }
}

/// Union adjacency list (relation types ignored), neighbours sorted for
/// O(log n) membership checks during node2vec transitions.
struct UnionGraph {
    neighbors: Vec<Vec<u32>>,
}

impl UnionGraph {
    fn build(n_pois: usize, edges: &[Edge]) -> Self {
        let mut neighbors = vec![Vec::new(); n_pois];
        for e in edges {
            neighbors[e.src.0 as usize].push(e.dst.0);
            neighbors[e.dst.0 as usize].push(e.src.0);
        }
        for list in neighbors.iter_mut() {
            list.sort_unstable();
            list.dedup();
        }
        UnionGraph { neighbors }
    }

    fn has_edge(&self, a: u32, b: u32) -> bool {
        self.neighbors[a as usize].binary_search(&b).is_ok()
    }
}

/// Generates the walk corpus.
fn generate_walks(graph: &UnionGraph, cfg: &WalkConfig, rng: &mut StdRng) -> Vec<Vec<u32>> {
    let n = graph.neighbors.len();
    let mut walks = Vec::new();
    for start in 0..n as u32 {
        if graph.neighbors[start as usize].is_empty() {
            continue;
        }
        for _ in 0..cfg.walks_per_node {
            let mut walk = Vec::with_capacity(cfg.walk_length);
            walk.push(start);
            let mut prev: Option<u32> = None;
            let mut cur = start;
            for _ in 1..cfg.walk_length {
                let nbrs = &graph.neighbors[cur as usize];
                if nbrs.is_empty() {
                    break;
                }
                let next = match prev {
                    // node2vec second-order transition via rejection
                    // sampling: weight 1/p to return, 1 for common
                    // neighbours, 1/q otherwise.
                    Some(p_node) if cfg.p != 1.0 || cfg.q != 1.0 => {
                        let max_w = (1.0 / cfg.p).max(1.0).max(1.0 / cfg.q);
                        loop {
                            let cand = nbrs[rng.gen_range(0..nbrs.len())];
                            let w = if cand == p_node {
                                1.0 / cfg.p
                            } else if graph.has_edge(cand, p_node) {
                                1.0
                            } else {
                                1.0 / cfg.q
                            };
                            if rng.gen_range(0.0..max_w) < w {
                                break cand;
                            }
                        }
                    }
                    _ => nbrs[rng.gen_range(0..nbrs.len())],
                };
                walk.push(next);
                prev = Some(cur);
                cur = next;
            }
            walks.push(walk);
        }
    }
    walks
}

/// Trains SGNS over the walks, returning `n_pois × dim` embeddings.
/// Isolated nodes keep their small random initialisation.
pub fn sgns_embeddings(n_pois: usize, edges: &[Edge], cfg: &WalkConfig) -> Matrix {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let graph = UnionGraph::build(n_pois, edges);
    let walks = generate_walks(&graph, cfg, &mut rng);

    let bound = 0.5 / cfg.dim as f32;
    let mut emb_in = Matrix::from_fn(n_pois, cfg.dim, |_, _| rng.gen_range(-bound..bound));
    let mut emb_out = Matrix::zeros(n_pois, cfg.dim);

    // Unigram^0.75 negative table over walk occurrences.
    let mut freq = vec![0usize; n_pois];
    for w in &walks {
        for &v in w {
            freq[v as usize] += 1;
        }
    }
    let mut neg_table = Vec::with_capacity(n_pois * 4);
    for (v, &f) in freq.iter().enumerate() {
        let slots = (f as f64).powf(0.75).ceil() as usize;
        for _ in 0..slots {
            neg_table.push(v as u32);
        }
    }
    if neg_table.is_empty() {
        return emb_in;
    }

    let total_steps = (cfg.epochs * walks.len()).max(1);
    let mut step = 0usize;
    for _epoch in 0..cfg.epochs {
        for walk in &walks {
            let lr = cfg.lr * (1.0 - step as f32 / total_steps as f32).max(0.05);
            step += 1;
            for (i, &center) in walk.iter().enumerate() {
                let lo = i.saturating_sub(cfg.window);
                let hi = (i + cfg.window + 1).min(walk.len());
                for (j, &context) in walk.iter().enumerate().take(hi).skip(lo) {
                    if j == i {
                        continue;
                    }
                    // One positive + negatives, classic SGNS update.
                    let mut grad_center = vec![0.0f32; cfg.dim];
                    {
                        let c_in: Vec<f32> = emb_in.row(center as usize).to_vec();
                        for k in 0..=cfg.negatives {
                            let (target, label) = if k == 0 {
                                (context, 1.0f32)
                            } else {
                                (neg_table[rng.gen_range(0..neg_table.len())], 0.0)
                            };
                            if k > 0 && target == context {
                                continue;
                            }
                            let t_out = emb_out.row_mut(target as usize);
                            let dot: f32 = c_in.iter().zip(t_out.iter()).map(|(a, b)| a * b).sum();
                            let g = (prim_tensor::stable_sigmoid(dot) - label) * lr;
                            for d in 0..cfg.dim {
                                grad_center[d] += g * t_out[d];
                                t_out[d] -= g * c_in[d];
                            }
                        }
                    }
                    let c_in = emb_in.row_mut(center as usize);
                    for d in 0..cfg.dim {
                        c_in[d] -= grad_center[d];
                    }
                }
            }
        }
    }
    emb_in
}

/// Frozen-embedding DistMult scorer: the [`PairModel`] wrapper that puts
/// DeepWalk/node2vec embeddings through the shared evaluation pipeline.
pub struct WalkModel {
    name: &'static str,
    store: ParamStore,
    cfg: BaselineConfig,
    embeddings: Matrix,
    /// Learned alignment `W : d_emb → dim`.
    w_align: ParamId,
    rel_table: ParamId,
    n_relations: usize,
}

impl WalkModel {
    /// Builds the model from precomputed walk embeddings.
    pub fn new(
        name: &'static str,
        embeddings: Matrix,
        inputs: &ModelInputs,
        cfg: BaselineConfig,
    ) -> Self {
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let mut store = ParamStore::new();
        let w_align = store.add(
            "w_align",
            init::xavier_uniform(&mut rng, embeddings.cols(), cfg.dim),
        );
        let rel_table = store.add_no_decay(
            "rel",
            init::embedding(&mut rng, inputs.n_relations + 1, cfg.dim),
        );
        WalkModel {
            name,
            store,
            cfg,
            embeddings,
            w_align,
            rel_table,
            n_relations: inputs.n_relations,
        }
    }
}

impl PairModel for WalkModel {
    type Fwd = (Var, Var);

    fn name(&self) -> &'static str {
        self.name
    }

    fn store(&self) -> &ParamStore {
        &self.store
    }

    fn store_mut(&mut self) -> &mut ParamStore {
        &mut self.store
    }

    fn config(&self) -> &BaselineConfig {
        &self.cfg
    }

    fn n_relations(&self) -> usize {
        self.n_relations
    }

    fn forward(&self, g: &mut Graph, bind: &Binding, _inputs: &ModelInputs) -> Self::Fwd {
        let emb = g.constant(self.embeddings.clone());
        let h = g.matmul(emb, bind.var(self.w_align));
        (h, bind.var(self.rel_table))
    }

    fn score(
        &self,
        g: &mut Graph,
        _bind: &Binding,
        fwd: &Self::Fwd,
        src: &[usize],
        rel: &[usize],
        dst: &[usize],
    ) -> Var {
        distmult_score(g, fwd.0, fwd.1, src, rel, dst)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use prim_graph::{PoiId, RelationId};

    /// Two disjoint cliques: walk embeddings must separate them.
    fn two_cliques(size: usize) -> Vec<Edge> {
        let mut edges = Vec::new();
        for block in 0..2u32 {
            let base = block * size as u32;
            for a in 0..size as u32 {
                for b in a + 1..size as u32 {
                    edges.push(Edge::new(PoiId(base + a), PoiId(base + b), RelationId(0)));
                }
            }
        }
        edges
    }

    #[test]
    fn embeddings_separate_communities() {
        let edges = two_cliques(8);
        let cfg = WalkConfig {
            dim: 8,
            ..WalkConfig::deepwalk_quick()
        };
        let emb = sgns_embeddings(16, &edges, &cfg);
        // Mean within-clique cosine similarity must beat across-clique.
        let cos = |a: usize, b: usize| {
            let (ra, rb) = (emb.row(a), emb.row(b));
            let dot: f32 = ra.iter().zip(rb).map(|(x, y)| x * y).sum();
            dot / (emb.row_norm(a) * emb.row_norm(b)).max(1e-9)
        };
        let mut within = 0.0;
        let mut across = 0.0;
        let mut nw = 0;
        let mut na = 0;
        for a in 0..16 {
            for b in 0..16 {
                if a >= b {
                    continue;
                }
                if (a < 8) == (b < 8) {
                    within += cos(a, b);
                    nw += 1;
                } else {
                    across += cos(a, b);
                    na += 1;
                }
            }
        }
        let (within, across) = (within / nw as f32, across / na as f32);
        assert!(
            within > across + 0.2,
            "communities not separated: within {within}, across {across}"
        );
    }

    #[test]
    fn isolated_nodes_keep_finite_embeddings() {
        let edges = two_cliques(4);
        let cfg = WalkConfig {
            dim: 8,
            ..WalkConfig::deepwalk_quick()
        };
        // 4 extra isolated nodes.
        let emb = sgns_embeddings(12, &edges, &cfg);
        assert_eq!(emb.rows(), 12);
        assert!(emb.all_finite());
    }

    #[test]
    fn node2vec_differs_from_deepwalk() {
        let edges = two_cliques(6);
        let dw = sgns_embeddings(12, &edges, &WalkConfig::deepwalk_quick());
        let n2v = sgns_embeddings(12, &edges, &WalkConfig::node2vec_quick());
        assert_ne!(dw.row(0), n2v.row(0));
    }

    #[test]
    fn walks_stay_within_components() {
        let edges = two_cliques(5);
        let graph = UnionGraph::build(10, &edges);
        let cfg = WalkConfig::deepwalk_quick();
        let mut rng = StdRng::seed_from_u64(1);
        for walk in generate_walks(&graph, &cfg, &mut rng) {
            let first_block = walk[0] < 5;
            assert!(walk.iter().all(|&v| (v < 5) == first_block));
        }
    }
}
