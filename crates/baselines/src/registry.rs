//! Unified method registry: every method of the paper's Tables 2–3 behind
//! one `run` entry point, so experiment harnesses iterate over
//! [`Method`] values instead of hand-wiring thirteen training pipelines.

use crate::common::{predict_pairs, train_pair_model, BaselineConfig, PairModel};
use crate::decoupled::{DecGcnModel, DeepRModel};
use crate::encoders::{
    CompGcnEncoder, EncoderModel, GatEncoder, GcnEncoder, HanEncoder, HgtEncoder, RgcnEncoder,
};
use crate::rules::fit_rules;
use crate::walks::{sgns_embeddings, WalkConfig, WalkModel};
use prim_core::{fit, ModelInputs, PrimConfig, PrimModel, Variant};
use prim_data::Dataset;
use prim_eval::Task;
use prim_graph::{sample_non_relation_pairs, PoiId};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// A method under evaluation.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Method {
    /// Category-distance threshold rule.
    Cat,
    /// Category + geographic distance threshold rule.
    CatD,
    /// DeepWalk + DistMult scorer.
    DeepWalk,
    /// node2vec + DistMult scorer.
    Node2Vec,
    /// Vanilla GCN.
    Gcn,
    /// Vanilla GAT.
    Gat,
    /// Heterogeneous graph attention network.
    Han,
    /// Heterogeneous graph transformer.
    Hgt,
    /// Relational GCN.
    RGcn,
    /// Composition-based multi-relational GCN.
    CompGcn,
    /// Decoupled GCN (per-relation sub-graphs + co-attention).
    DecGcn,
    /// Sector-based competitive analysis GNN.
    DeepR,
    /// The paper's model, optionally ablated.
    Prim(Variant),
}

impl Method {
    /// Display name matching the paper's tables.
    pub fn name(&self) -> String {
        match self {
            Method::Cat => "CAT".into(),
            Method::CatD => "CAT-D".into(),
            Method::DeepWalk => "Deepwalk".into(),
            Method::Node2Vec => "node2vec".into(),
            Method::Gcn => "GCN".into(),
            Method::Gat => "GAT".into(),
            Method::Han => "HAN".into(),
            Method::Hgt => "HGT".into(),
            Method::RGcn => "R-GCN".into(),
            Method::CompGcn => "CompGCN".into(),
            Method::DecGcn => "DecGCN".into(),
            Method::DeepR => "DeepR".into(),
            Method::Prim(v) => v.name(),
        }
    }

    /// The 13 methods of Table 2, in column order.
    pub fn table2() -> Vec<Method> {
        vec![
            Method::Cat,
            Method::CatD,
            Method::DeepWalk,
            Method::Node2Vec,
            Method::Gcn,
            Method::Gat,
            Method::Han,
            Method::Hgt,
            Method::RGcn,
            Method::CompGcn,
            Method::DecGcn,
            Method::DeepR,
            Method::Prim(Variant::full()),
        ]
    }

    /// The 10 GNN/embedding methods of Table 3 (rules and DecGCN excluded,
    /// as in the paper).
    pub fn table3() -> Vec<Method> {
        vec![
            Method::DeepWalk,
            Method::Node2Vec,
            Method::Gcn,
            Method::Gat,
            Method::Han,
            Method::Hgt,
            Method::RGcn,
            Method::CompGcn,
            Method::DeepR,
            Method::Prim(Variant::full()),
        ]
    }

    /// The GNN methods compared in the Figure 4 scalability study.
    pub fn scalability_set() -> Vec<Method> {
        vec![
            Method::Gcn,
            Method::Gat,
            Method::Han,
            Method::Hgt,
            Method::RGcn,
            Method::CompGcn,
            Method::DeepR,
            Method::Prim(Variant::full()),
        ]
    }

    /// The four strongest baselines used in the sparse/unseen analyses.
    pub fn best_baselines() -> Vec<Method> {
        vec![Method::Han, Method::Hgt, Method::CompGcn, Method::DeepR]
    }
}

/// Hyper-parameter bundle for a full run.
#[derive(Clone, Debug)]
pub struct RunConfig {
    /// PRIM hyper-parameters.
    pub prim: PrimConfig,
    /// Shared baseline hyper-parameters.
    pub baseline: BaselineConfig,
    /// DeepWalk walk settings.
    pub deepwalk: WalkConfig,
    /// node2vec walk settings.
    pub node2vec: WalkConfig,
}

impl RunConfig {
    /// Laptop-scale defaults.
    pub fn quick() -> Self {
        RunConfig {
            prim: PrimConfig::quick(),
            baseline: BaselineConfig::quick(),
            deepwalk: WalkConfig::deepwalk_quick(),
            node2vec: WalkConfig::node2vec_quick(),
        }
    }

    /// Paper-faithful sizes (slow).
    pub fn paper() -> Self {
        RunConfig {
            prim: PrimConfig::paper(),
            baseline: BaselineConfig::paper(),
            ..Self::quick()
        }
    }
}

/// Outcome of training + predicting one method on one task.
#[derive(Clone, Debug)]
pub struct MethodRun {
    /// Predicted class per eval pair.
    pub predictions: Vec<usize>,
    /// Total training wall-clock seconds.
    pub train_seconds: f64,
    /// Mean seconds per training epoch (Figure 4's quantity).
    pub mean_epoch_seconds: f64,
}

fn run_pair_model<M: PairModel>(
    mut model: M,
    inputs: &ModelInputs,
    dataset: &Dataset,
    task: &Task,
) -> MethodRun {
    let t0 = std::time::Instant::now();
    let report = train_pair_model(
        &mut model,
        inputs,
        &dataset.graph,
        &task.train,
        task.visible.as_ref(),
        Some(&task.val),
    );
    let train_seconds = t0.elapsed().as_secs_f64();
    let predictions = predict_pairs(&model, inputs, &task.eval_pairs);
    MethodRun {
        predictions,
        train_seconds,
        mean_epoch_seconds: report.mean_epoch_seconds(),
    }
}

/// Trains `method` on `task` and predicts its evaluation pairs.
pub fn run_method(method: Method, dataset: &Dataset, task: &Task, cfg: &RunConfig) -> MethodRun {
    let inputs = ModelInputs::build(
        &dataset.graph,
        &dataset.taxonomy,
        &dataset.attrs,
        &task.train,
        task.visible.as_ref(),
        &cfg.prim,
    );
    match method {
        Method::Cat | Method::CatD => {
            let t0 = std::time::Instant::now();
            // Tune thresholds on validation edges + φ pairs.
            let mut rng = StdRng::seed_from_u64(task.seed.wrapping_add(0xCA7));
            let mut val_pairs: Vec<(PoiId, PoiId)> =
                task.val.iter().map(|e| (e.src, e.dst)).collect();
            let mut val_expected: Vec<usize> = task.val.iter().map(|e| e.rel.0 as usize).collect();
            for (a, b) in sample_non_relation_pairs(&dataset.graph, task.val.len(), &mut rng) {
                val_pairs.push((a, b));
                val_expected.push(task.phi);
            }
            let model = fit_rules(dataset, &val_pairs, &val_expected, method == Method::CatD);
            let train_seconds = t0.elapsed().as_secs_f64();
            MethodRun {
                predictions: model.predict(dataset, &task.eval_pairs),
                train_seconds,
                mean_epoch_seconds: train_seconds,
            }
        }
        Method::DeepWalk | Method::Node2Vec => {
            let wcfg = if method == Method::DeepWalk {
                &cfg.deepwalk
            } else {
                &cfg.node2vec
            };
            let t0 = std::time::Instant::now();
            let emb = sgns_embeddings(dataset.graph.num_pois(), &task.train, wcfg);
            let name: &'static str = if method == Method::DeepWalk {
                "Deepwalk"
            } else {
                "node2vec"
            };
            let model = WalkModel::new(name, emb, &inputs, cfg.baseline.clone());
            let mut run = run_pair_model(model, &inputs, dataset, task);
            run.train_seconds = t0.elapsed().as_secs_f64();
            run
        }
        Method::Gcn => run_pair_model(
            EncoderModel::<GcnEncoder>::new(cfg.baseline.clone(), &inputs),
            &inputs,
            dataset,
            task,
        ),
        Method::Gat => run_pair_model(
            EncoderModel::<GatEncoder>::new(cfg.baseline.clone(), &inputs),
            &inputs,
            dataset,
            task,
        ),
        Method::Han => run_pair_model(
            EncoderModel::<HanEncoder>::new(cfg.baseline.clone(), &inputs),
            &inputs,
            dataset,
            task,
        ),
        Method::Hgt => run_pair_model(
            EncoderModel::<HgtEncoder>::new(cfg.baseline.clone(), &inputs),
            &inputs,
            dataset,
            task,
        ),
        Method::RGcn => run_pair_model(
            EncoderModel::<RgcnEncoder>::new(cfg.baseline.clone(), &inputs),
            &inputs,
            dataset,
            task,
        ),
        Method::CompGcn => run_pair_model(
            EncoderModel::<CompGcnEncoder>::new(cfg.baseline.clone(), &inputs),
            &inputs,
            dataset,
            task,
        ),
        Method::DecGcn => run_pair_model(
            DecGcnModel::new(cfg.baseline.clone(), &inputs),
            &inputs,
            dataset,
            task,
        ),
        Method::DeepR => run_pair_model(
            DeepRModel::new(cfg.baseline.clone(), &inputs),
            &inputs,
            dataset,
            task,
        ),
        Method::Prim(variant) => {
            let prim_cfg = cfg.prim.clone().with_variant(variant);
            let mut model = PrimModel::new(prim_cfg, &inputs);
            let t0 = std::time::Instant::now();
            let report = fit(
                &mut model,
                &inputs,
                &dataset.graph,
                &task.train,
                task.visible.as_ref(),
                Some(&task.val),
            );
            let train_seconds = t0.elapsed().as_secs_f64();
            let table = model.embed(&inputs);
            let predictions = model.predict_pairs(&table, &inputs, &task.eval_pairs);
            MethodRun {
                predictions,
                train_seconds,
                mean_epoch_seconds: report.mean_epoch_seconds(),
            }
        }
    }
}

/// Trains `method` for a fixed number of epochs on the full edge set of a
/// dataset and reports mean seconds per epoch — the Figure 4 measurement
/// (no evaluation, matching the paper's randomly-related Singapore set).
pub fn time_training_epochs(
    method: Method,
    dataset: &Dataset,
    epochs: usize,
    cfg: &RunConfig,
) -> f64 {
    let mut cfg = cfg.clone();
    cfg.prim.epochs = epochs;
    cfg.prim.val_check_every = 0;
    cfg.baseline.epochs = epochs;
    cfg.baseline.val_check_every = 0;
    let task = Task {
        train: dataset.graph.edges().to_vec(),
        val: Vec::new(),
        eval_pairs: Vec::new(),
        expected: Vec::new(),
        phi: dataset.graph.num_relations(),
        visible: None,
        seed: 7,
    };
    let run = run_method(method, dataset, &task, &cfg);
    run.mean_epoch_seconds
}

#[cfg(test)]
mod tests {
    use super::*;
    use prim_data::Scale;
    use prim_eval::transductive_task;

    fn quick_cfg() -> RunConfig {
        let mut cfg = RunConfig::quick();
        cfg.prim.epochs = 10;
        cfg.prim.dim = 12;
        cfg.prim.cat_dim = 6;
        cfg.baseline.epochs = 10;
        cfg.baseline.dim = 12;
        cfg
    }

    #[test]
    fn every_method_runs_end_to_end() {
        let ds = Dataset::beijing(Scale::Quick).subsample(0.15, 41);
        let task = transductive_task(&ds, 0.5, 5);
        let cfg = quick_cfg();
        for method in Method::table2() {
            let run = run_method(method, &ds, &task, &cfg);
            assert_eq!(
                run.predictions.len(),
                task.eval_pairs.len(),
                "{} produced wrong prediction count",
                method.name()
            );
            assert!(
                run.predictions.iter().all(|&p| p <= task.phi),
                "{} produced out-of-range class",
                method.name()
            );
            let f1 = task.score(&run.predictions);
            assert!(f1.micro_f1 >= 0.0 && f1.micro_f1 <= 1.0);
        }
    }

    #[test]
    fn method_lists_have_expected_sizes() {
        assert_eq!(Method::table2().len(), 13);
        assert_eq!(Method::table3().len(), 10);
        assert_eq!(Method::scalability_set().len(), 8);
        assert_eq!(Method::best_baselines().len(), 4);
    }

    #[test]
    fn timing_runs_for_a_gnn() {
        let ds = Dataset::scalability(300, 4, 2);
        let secs = time_training_epochs(Method::Gcn, &ds, 2, &quick_cfg());
        assert!(secs > 0.0 && secs < 60.0);
    }
}
