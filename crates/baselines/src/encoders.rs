//! GNN encoder baselines producing a single node-embedding matrix:
//! GCN, GAT (homogeneous), R-GCN, CompGCN, HGT, HAN (heterogeneous).
//!
//! Each implements [`Encoder`]; the [`EncoderModel`] wrapper pairs an
//! encoder with the shared initial features and a DistMult relation table
//! (with a φ row) so the generic trainer/predictor in [`crate::common`]
//! applies. All encoders add a self-transform term, ELU activations, and
//! follow the paper's setting of equal depth and width across methods.

use crate::common::{
    distmult_score, edges_by_relation, segment_mean_coeffs, BaselineConfig, InitialFeatures,
    PairModel,
};
use prim_core::ModelInputs;
use prim_nn::{init, Binding, ParamId, ParamStore};
use prim_tensor::{Graph, Matrix, SegmentPlan, Var};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;

/// What an encoder produces.
pub enum EncOut {
    /// Node embeddings only; the wrapper supplies relation embeddings.
    Nodes(Var),
    /// Node embeddings plus relation embeddings learned by the encoder
    /// itself (CompGCN).
    NodesAndRelations(Var, Var),
}

/// A graph encoder.
pub trait Encoder {
    /// Display name.
    const NAME: &'static str;

    /// Registers parameters.
    fn new(
        store: &mut ParamStore,
        rng: &mut StdRng,
        cfg: &BaselineConfig,
        inputs: &ModelInputs,
    ) -> Self;

    /// Encodes initial features `h0` into final node embeddings.
    fn encode(&self, g: &mut Graph, bind: &Binding, inputs: &ModelInputs, h0: Var) -> EncOut;
}

/// Wraps an [`Encoder`] into a [`PairModel`].
pub struct EncoderModel<E: Encoder> {
    store: ParamStore,
    cfg: BaselineConfig,
    feats: InitialFeatures,
    rel_table: ParamId,
    encoder: E,
    n_relations: usize,
}

impl<E: Encoder> EncoderModel<E> {
    /// Builds the model for a dataset.
    pub fn new(cfg: BaselineConfig, inputs: &ModelInputs) -> Self {
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let mut store = ParamStore::new();
        let feats = InitialFeatures::new(
            &mut store,
            &mut rng,
            inputs.attr_dim(),
            inputs.n_categories,
            inputs.n_pois,
            cfg.dim,
        );
        let rel_table = store.add_no_decay(
            "rel",
            init::embedding(&mut rng, inputs.n_relations + 1, cfg.dim),
        );
        let encoder = E::new(&mut store, &mut rng, &cfg, inputs);
        EncoderModel {
            store,
            cfg,
            feats,
            rel_table,
            encoder,
            n_relations: inputs.n_relations,
        }
    }
}

impl<E: Encoder> PairModel for EncoderModel<E> {
    type Fwd = (Var, Var);

    fn name(&self) -> &'static str {
        E::NAME
    }

    fn store(&self) -> &ParamStore {
        &self.store
    }

    fn store_mut(&mut self) -> &mut ParamStore {
        &mut self.store
    }

    fn config(&self) -> &BaselineConfig {
        &self.cfg
    }

    fn n_relations(&self) -> usize {
        self.n_relations
    }

    fn forward(&self, g: &mut Graph, bind: &Binding, inputs: &ModelInputs) -> Self::Fwd {
        let h0 = self
            .feats
            .features(g, bind, inputs, self.cfg.use_node_embeddings);
        match self.encoder.encode(g, bind, inputs, h0) {
            EncOut::Nodes(h) => (h, bind.var(self.rel_table)),
            EncOut::NodesAndRelations(h, rel) => (h, rel),
        }
    }

    fn score(
        &self,
        g: &mut Graph,
        _bind: &Binding,
        fwd: &Self::Fwd,
        src: &[usize],
        rel: &[usize],
        dst: &[usize],
    ) -> Var {
        distmult_score(g, fwd.0, fwd.1, src, rel, dst)
    }
}

/// Symmetric GCN normalisation coefficients `1/√((d_i+1)(d_j+1))` over the
/// union (relation-agnostic) adjacency.
fn gcn_coeffs(inputs: &ModelInputs) -> Matrix {
    let deg = inputs.adjacency.in_degrees();
    Matrix::from_fn(inputs.adjacency.num_directed_edges(), 1, |k, _| {
        let s = inputs.adjacency.src()[k] as usize;
        let d = inputs.adjacency.dst()[k] as usize;
        1.0 / (((deg[s] + 1) * (deg[d] + 1)) as f32).sqrt()
    })
}

/// Precomputed plans for one GAT-style aggregation over an edge subset.
struct GatPlans {
    src: Arc<SegmentPlan>,
    dst: Arc<SegmentPlan>,
    /// Broadcast gather repeating the single attention row per edge.
    bcast: Arc<SegmentPlan>,
}

impl GatPlans {
    fn new(src: Vec<usize>, dst: Vec<usize>, n_pois: usize) -> Self {
        let n_edges = src.len();
        GatPlans {
            src: Arc::new(SegmentPlan::new(src, n_pois)),
            dst: Arc::new(SegmentPlan::new(dst, n_pois)),
            bcast: Arc::new(SegmentPlan::new(vec![0usize; n_edges], 1)),
        }
    }

    /// Shares the whole-edge-set plans already held by `inputs`.
    fn over_all_edges(inputs: &ModelInputs) -> Self {
        let n_edges = inputs.adjacency.num_directed_edges();
        GatPlans {
            src: Arc::clone(&inputs.plans.edge_src),
            dst: Arc::clone(&inputs.plans.edge_dst),
            bcast: Arc::new(SegmentPlan::new(vec![0usize; n_edges], 1)),
        }
    }
}

/// One GAT-style attention aggregation over an edge subset.
///
/// Returns the per-node aggregation `(n_pois × out_dim)` of
/// `softmax_dst(LeakyReLU(aᵀ[Wh_dst ‖ Wh_src])) · Wh_src`.
fn gat_aggregate(g: &mut Graph, h_proj: Var, att_vec: Var, plans: &GatPlans) -> Var {
    let h_dst = g.gather_rows_planned(h_proj, &plans.dst);
    let h_src = g.gather_rows_planned(h_proj, &plans.src);
    let feats = g.concat_cols(&[h_dst, h_src]);
    let a_rows = g.gather_rows_planned(att_vec, &plans.bcast);
    let raw = g.rows_dot(feats, a_rows);
    let logits = g.leaky_relu(raw, 0.2);
    // `dst` ids double as segment ids (arbitrary segment maps are allowed).
    let alpha = g.segment_softmax_planned(logits, &plans.dst);
    let weighted = g.scale_rows(h_src, alpha);
    g.segment_sum_planned(weighted, &plans.dst)
}

// ---------------------------------------------------------------------------
// GCN
// ---------------------------------------------------------------------------

/// Vanilla GCN (Kipf & Welling): relation-agnostic normalised aggregation.
pub struct GcnEncoder {
    layers: Vec<(ParamId, ParamId)>, // (W_msg, W_self)
    coeffs: Matrix,
}

impl Encoder for GcnEncoder {
    const NAME: &'static str = "GCN";

    fn new(
        store: &mut ParamStore,
        rng: &mut StdRng,
        cfg: &BaselineConfig,
        inputs: &ModelInputs,
    ) -> Self {
        let layers = (0..cfg.n_layers)
            .map(|l| {
                (
                    store.add(
                        format!("gcn.l{l}.w"),
                        init::xavier_uniform(rng, cfg.dim, cfg.dim),
                    ),
                    store.add(
                        format!("gcn.l{l}.w0"),
                        init::xavier_uniform(rng, cfg.dim, cfg.dim),
                    ),
                )
            })
            .collect();
        GcnEncoder {
            layers,
            coeffs: gcn_coeffs(inputs),
        }
    }

    fn encode(&self, g: &mut Graph, bind: &Binding, inputs: &ModelInputs, h0: Var) -> EncOut {
        let plans = &inputs.plans;
        let coeffs = g.constant_ref(&self.coeffs);
        let mut h = h0;
        for &(w, w0) in &self.layers {
            let msgs = g.gather_rows_planned(h, &plans.edge_src);
            let scaled = g.scale_rows(msgs, coeffs);
            let agg = g.segment_sum_planned(scaled, &plans.edge_dst);
            let agg_p = g.matmul(agg, bind.var(w));
            let self_p = g.matmul(h, bind.var(w0));
            let sum = g.add(agg_p, self_p);
            h = g.elu(sum);
        }
        EncOut::Nodes(h)
    }
}

// ---------------------------------------------------------------------------
// GAT
// ---------------------------------------------------------------------------

/// Vanilla multi-head GAT: relation-agnostic attention aggregation.
pub struct GatEncoder {
    /// Per layer: per head (W_proj, a), plus W_self.
    layers: Vec<(Vec<(ParamId, ParamId)>, ParamId)>,
    plans: GatPlans,
}

impl Encoder for GatEncoder {
    const NAME: &'static str = "GAT";

    fn new(
        store: &mut ParamStore,
        rng: &mut StdRng,
        cfg: &BaselineConfig,
        inputs: &ModelInputs,
    ) -> Self {
        let head_dim = cfg.dim / cfg.n_heads;
        assert!(head_dim * cfg.n_heads == cfg.dim, "dim must divide n_heads");
        let layers = (0..cfg.n_layers)
            .map(|l| {
                let heads = (0..cfg.n_heads)
                    .map(|k| {
                        (
                            store.add(
                                format!("gat.l{l}.h{k}.w"),
                                init::xavier_uniform(rng, cfg.dim, head_dim),
                            ),
                            store.add(
                                format!("gat.l{l}.h{k}.a"),
                                init::xavier_uniform(rng, 1, 2 * head_dim),
                            ),
                        )
                    })
                    .collect();
                let w_self = store.add(
                    format!("gat.l{l}.w0"),
                    init::xavier_uniform(rng, cfg.dim, cfg.dim),
                );
                (heads, w_self)
            })
            .collect();
        GatEncoder {
            layers,
            plans: GatPlans::over_all_edges(inputs),
        }
    }

    fn encode(&self, g: &mut Graph, bind: &Binding, _inputs: &ModelInputs, h0: Var) -> EncOut {
        let mut h = h0;
        for (heads, w_self) in &self.layers {
            let mut outs = Vec::with_capacity(heads.len());
            for &(w, a) in heads {
                let proj = g.matmul(h, bind.var(w));
                outs.push(gat_aggregate(g, proj, bind.var(a), &self.plans));
            }
            let agg = g.concat_cols(&outs);
            let self_p = g.matmul(h, bind.var(*w_self));
            let sum = g.add(agg, self_p);
            h = g.elu(sum);
        }
        EncOut::Nodes(h)
    }
}

// ---------------------------------------------------------------------------
// R-GCN
// ---------------------------------------------------------------------------

/// R-GCN (Schlichtkrull et al.): one weight matrix per relation type,
/// mean-normalised within each `(target, relation)` neighbourhood.
pub struct RgcnEncoder {
    /// Per layer: per relation W_r, plus W_self.
    layers: Vec<(Vec<ParamId>, ParamId)>,
    /// Per relation: gather/scatter plans and mean coefficients for its edge
    /// subset (`None` when the relation has no edges).
    rel_plans: Vec<Option<RelSubset>>,
}

/// Structure-derived constants for one relation's edge subset.
struct RelSubset {
    src: Arc<SegmentPlan>,
    dst: Arc<SegmentPlan>,
    coeffs: Matrix,
}

/// Builds per-relation edge-subset plans (shared by R-GCN and HAN).
fn relation_subsets(inputs: &ModelInputs) -> Vec<Option<RelSubset>> {
    let by_rel = edges_by_relation(inputs);
    let coeffs = segment_mean_coeffs(inputs);
    let src = inputs.adjacency.src();
    let dst = inputs.adjacency.dst();
    by_rel
        .iter()
        .map(|edges| {
            if edges.is_empty() {
                return None;
            }
            let src_r: Vec<usize> = edges.iter().map(|&k| src[k] as usize).collect();
            let dst_r: Vec<usize> = edges.iter().map(|&k| dst[k] as usize).collect();
            Some(RelSubset {
                src: Arc::new(SegmentPlan::new(src_r, inputs.n_pois)),
                dst: Arc::new(SegmentPlan::new(dst_r, inputs.n_pois)),
                coeffs: Matrix::from_fn(edges.len(), 1, |i, _| coeffs[edges[i]]),
            })
        })
        .collect()
}

impl Encoder for RgcnEncoder {
    const NAME: &'static str = "R-GCN";

    fn new(
        store: &mut ParamStore,
        rng: &mut StdRng,
        cfg: &BaselineConfig,
        inputs: &ModelInputs,
    ) -> Self {
        let layers = (0..cfg.n_layers)
            .map(|l| {
                let rels = (0..inputs.n_relations)
                    .map(|r| {
                        store.add(
                            format!("rgcn.l{l}.w{r}"),
                            init::xavier_uniform(rng, cfg.dim, cfg.dim),
                        )
                    })
                    .collect();
                let w_self = store.add(
                    format!("rgcn.l{l}.w0"),
                    init::xavier_uniform(rng, cfg.dim, cfg.dim),
                );
                (rels, w_self)
            })
            .collect();
        RgcnEncoder {
            layers,
            rel_plans: relation_subsets(inputs),
        }
    }

    fn encode(&self, g: &mut Graph, bind: &Binding, _inputs: &ModelInputs, h0: Var) -> EncOut {
        let mut h = h0;
        for (rels, w_self) in &self.layers {
            let mut total = g.matmul(h, bind.var(*w_self));
            for (r, w_r) in rels.iter().enumerate() {
                let Some(sub) = &self.rel_plans[r] else {
                    continue;
                };
                let coeff_r = g.constant_ref(&sub.coeffs);
                let msgs = g.gather_rows_planned(h, &sub.src);
                let proj = g.matmul(msgs, bind.var(*w_r));
                let scaled = g.scale_rows(proj, coeff_r);
                let agg = g.segment_sum_planned(scaled, &sub.dst);
                total = g.add(total, agg);
            }
            h = g.elu(total);
        }
        EncOut::Nodes(h)
    }
}

// ---------------------------------------------------------------------------
// CompGCN
// ---------------------------------------------------------------------------

/// CompGCN (Vashishth et al.): composition `h_j ⊙ h_r` messages with jointly
/// learned relation embeddings, updated per layer and used for scoring.
pub struct CompGcnEncoder {
    rel_emb: ParamId,
    /// Per layer: (W_msg, W_self, W_rel).
    layers: Vec<(ParamId, ParamId, ParamId)>,
    coeffs: Matrix,
}

impl Encoder for CompGcnEncoder {
    const NAME: &'static str = "CompGCN";

    fn new(
        store: &mut ParamStore,
        rng: &mut StdRng,
        cfg: &BaselineConfig,
        inputs: &ModelInputs,
    ) -> Self {
        let rel_emb = store.add_no_decay(
            "compgcn.rel",
            init::embedding(rng, inputs.n_relations + 1, cfg.dim),
        );
        let layers = (0..cfg.n_layers)
            .map(|l| {
                (
                    store.add(
                        format!("compgcn.l{l}.w"),
                        init::xavier_uniform(rng, cfg.dim, cfg.dim),
                    ),
                    store.add(
                        format!("compgcn.l{l}.w0"),
                        init::xavier_uniform(rng, cfg.dim, cfg.dim),
                    ),
                    store.add(
                        format!("compgcn.l{l}.wr"),
                        init::xavier_uniform(rng, cfg.dim, cfg.dim),
                    ),
                )
            })
            .collect();
        let deg = inputs.adjacency.in_degrees();
        let coeffs = Matrix::from_fn(inputs.adjacency.num_directed_edges(), 1, |k, _| {
            1.0 / (deg[inputs.adjacency.dst()[k] as usize].max(1)) as f32
        });
        CompGcnEncoder {
            rel_emb,
            layers,
            coeffs,
        }
    }

    fn encode(&self, g: &mut Graph, bind: &Binding, inputs: &ModelInputs, h0: Var) -> EncOut {
        let plans = &inputs.plans;
        let coeffs = g.constant_ref(&self.coeffs);
        let mut h = h0;
        let mut rel = bind.var(self.rel_emb);
        for &(w, w0, wr) in &self.layers {
            let h_src = g.gather_rows_planned(h, &plans.edge_src);
            let r_edge = g.gather_rows_planned(rel, &plans.edge_rel_all);
            let msg = g.mul(h_src, r_edge);
            let proj = g.matmul(msg, bind.var(w));
            let scaled = g.scale_rows(proj, coeffs);
            let agg = g.segment_sum_planned(scaled, &plans.edge_dst);
            let self_p = g.matmul(h, bind.var(w0));
            let sum = g.add(agg, self_p);
            h = g.elu(sum);
            rel = g.matmul(rel, bind.var(wr));
        }
        EncOut::NodesAndRelations(h, rel)
    }
}

// ---------------------------------------------------------------------------
// HGT
// ---------------------------------------------------------------------------

/// Simplified HGT (Hu et al.): relation-specific key/value projections with
/// scaled-dot attention normalised across *all* neighbours of a target.
/// Per layer: `W_q`, per-relation `(W_k, W_v)`, `W_self`.
type HgtLayer = (ParamId, Vec<(ParamId, ParamId)>, ParamId);

/// Simplified HGT (Hu et al.): relation-specific key/value projections with
/// scaled-dot attention normalised across *all* neighbours of a target.
pub struct HgtEncoder {
    layers: Vec<HgtLayer>,
    dim: usize,
    /// Per-edge gather into the vertically stacked per-relation projections:
    /// row = rel·n_pois + src.
    stacked: Arc<SegmentPlan>,
}

impl Encoder for HgtEncoder {
    const NAME: &'static str = "HGT";

    fn new(
        store: &mut ParamStore,
        rng: &mut StdRng,
        cfg: &BaselineConfig,
        inputs: &ModelInputs,
    ) -> Self {
        let layers = (0..cfg.n_layers)
            .map(|l| {
                let wq = store.add(
                    format!("hgt.l{l}.wq"),
                    init::xavier_uniform(rng, cfg.dim, cfg.dim),
                );
                let rels = (0..inputs.n_relations)
                    .map(|r| {
                        (
                            store.add(
                                format!("hgt.l{l}.wk{r}"),
                                init::xavier_uniform(rng, cfg.dim, cfg.dim),
                            ),
                            store.add(
                                format!("hgt.l{l}.wv{r}"),
                                init::xavier_uniform(rng, cfg.dim, cfg.dim),
                            ),
                        )
                    })
                    .collect();
                let w_self = store.add(
                    format!("hgt.l{l}.w0"),
                    init::xavier_uniform(rng, cfg.dim, cfg.dim),
                );
                (wq, rels, w_self)
            })
            .collect();
        let n = inputs.n_pois;
        let stacked_idx: Vec<usize> = inputs
            .adjacency
            .rel()
            .iter()
            .zip(inputs.adjacency.src().iter())
            .map(|(&r, &s)| r as usize * n + s as usize)
            .collect();
        HgtEncoder {
            layers,
            dim: cfg.dim,
            stacked: Arc::new(SegmentPlan::new(stacked_idx, inputs.n_relations * n)),
        }
    }

    fn encode(&self, g: &mut Graph, bind: &Binding, inputs: &ModelInputs, h0: Var) -> EncOut {
        let plans = &inputs.plans;
        let mut h = h0;
        for (wq, rels, w_self) in &self.layers {
            let q = g.matmul(h, bind.var(*wq));
            let k_parts: Vec<Var> = rels
                .iter()
                .map(|&(wk, _)| g.matmul(h, bind.var(wk)))
                .collect();
            let v_parts: Vec<Var> = rels
                .iter()
                .map(|&(_, wv)| g.matmul(h, bind.var(wv)))
                .collect();
            let k_all = g.vstack(&k_parts);
            let v_all = g.vstack(&v_parts);
            let q_dst = g.gather_rows_planned(q, &plans.edge_dst);
            let k_edge = g.gather_rows_planned(k_all, &self.stacked);
            let dots = g.rows_dot(q_dst, k_edge);
            let scaled = g.scale(dots, 1.0 / (self.dim as f32).sqrt());
            let alpha = g.segment_softmax_planned(scaled, &plans.edge_dst);
            let v_edge = g.gather_rows_planned(v_all, &self.stacked);
            let weighted = g.scale_rows(v_edge, alpha);
            let agg = g.segment_sum_planned(weighted, &plans.edge_dst);
            let self_p = g.matmul(h, bind.var(*w_self));
            let sum = g.add(agg, self_p);
            h = g.elu(sum);
        }
        EncOut::Nodes(h)
    }
}

// ---------------------------------------------------------------------------
// HAN
// ---------------------------------------------------------------------------

/// HAN (Wang et al.): per-relation (meta-path) node-level GAT attention,
/// fused by semantic attention over the relation-specific embeddings.
pub struct HanEncoder {
    /// Per layer: per relation (W_proj, a), plus semantic (W_s, b_s, q_s)
    /// and W_self.
    layers: Vec<HanLayer>,
    /// Per relation: GAT plans over its edge subset (`None` when empty).
    rel_plans: Vec<Option<GatPlans>>,
    /// Softmax over the stacked semantic scores (one segment).
    sem_plan: Arc<SegmentPlan>,
    /// Single-row gathers pulling β_r out of the semantic weights.
    row_plans: Vec<Arc<SegmentPlan>>,
}

struct HanLayer {
    rel_heads: Vec<(ParamId, ParamId)>,
    w_sem: ParamId,
    b_sem: ParamId,
    q_sem: ParamId,
    w_self: ParamId,
}

impl Encoder for HanEncoder {
    const NAME: &'static str = "HAN";

    fn new(
        store: &mut ParamStore,
        rng: &mut StdRng,
        cfg: &BaselineConfig,
        inputs: &ModelInputs,
    ) -> Self {
        let layers = (0..cfg.n_layers)
            .map(|l| HanLayer {
                rel_heads: (0..inputs.n_relations)
                    .map(|r| {
                        (
                            store.add(
                                format!("han.l{l}.r{r}.w"),
                                init::xavier_uniform(rng, cfg.dim, cfg.dim),
                            ),
                            store.add(
                                format!("han.l{l}.r{r}.a"),
                                init::xavier_uniform(rng, 1, 2 * cfg.dim),
                            ),
                        )
                    })
                    .collect(),
                w_sem: store.add(
                    format!("han.l{l}.ws"),
                    init::xavier_uniform(rng, cfg.dim, cfg.dim),
                ),
                b_sem: store.add(format!("han.l{l}.bs"), Matrix::zeros(1, cfg.dim)),
                q_sem: store.add(
                    format!("han.l{l}.qs"),
                    init::xavier_uniform(rng, cfg.dim, 1),
                ),
                w_self: store.add(
                    format!("han.l{l}.w0"),
                    init::xavier_uniform(rng, cfg.dim, cfg.dim),
                ),
            })
            .collect();
        let by_rel = edges_by_relation(inputs);
        let src = inputs.adjacency.src();
        let dst = inputs.adjacency.dst();
        let rel_plans = by_rel
            .iter()
            .map(|edges| {
                if edges.is_empty() {
                    return None;
                }
                let src_r: Vec<usize> = edges.iter().map(|&k| src[k] as usize).collect();
                let dst_r: Vec<usize> = edges.iter().map(|&k| dst[k] as usize).collect();
                Some(GatPlans::new(src_r, dst_r, inputs.n_pois))
            })
            .collect();
        let sem_plan = Arc::new(SegmentPlan::new(vec![0usize; inputs.n_relations], 1));
        let row_plans = (0..inputs.n_relations)
            .map(|r| Arc::new(SegmentPlan::new(vec![r], inputs.n_relations)))
            .collect();
        HanEncoder {
            layers,
            rel_plans,
            sem_plan,
            row_plans,
        }
    }

    fn encode(&self, g: &mut Graph, bind: &Binding, _inputs: &ModelInputs, h0: Var) -> EncOut {
        let mut h = h0;
        for layer in &self.layers {
            let mut z_rels = Vec::with_capacity(layer.rel_heads.len());
            let mut sem_scores = Vec::with_capacity(layer.rel_heads.len());
            for (r, &(w, a)) in layer.rel_heads.iter().enumerate() {
                let proj = g.matmul(h, bind.var(w));
                let z = match &self.rel_plans[r] {
                    None => proj,
                    Some(plans) => gat_aggregate(g, proj, bind.var(a), plans),
                };
                // Semantic importance: mean over nodes of qᵀ tanh(W z + b).
                let t0 = g.matmul(z, bind.var(layer.w_sem));
                let t1 = g.add_row_broadcast(t0, bind.var(layer.b_sem));
                let t = g.tanh(t1);
                let s = g.matmul(t, bind.var(layer.q_sem));
                sem_scores.push(g.mean_all(s));
                z_rels.push(z);
            }
            let stacked = g.vstack(&sem_scores);
            let beta = g.segment_softmax_planned(stacked, &self.sem_plan);
            let mut fused: Option<Var> = None;
            for (r, &z) in z_rels.iter().enumerate() {
                let b_r = g.gather_rows_planned(beta, &self.row_plans[r]);
                let weighted = g.mul_scalar_var(z, b_r);
                fused = Some(match fused {
                    Some(acc) => g.add(acc, weighted),
                    None => weighted,
                });
            }
            let agg = fused.expect("at least one relation");
            let self_p = g.matmul(h, bind.var(layer.w_self));
            let sum = g.add(agg, self_p);
            h = g.elu(sum);
        }
        EncOut::Nodes(h)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::{predict_pairs, train_pair_model};
    use prim_core::PrimConfig;
    use prim_data::{Dataset, Scale};
    use prim_graph::PoiId;

    fn small_inputs() -> (Dataset, ModelInputs) {
        let ds = Dataset::beijing(Scale::Quick).subsample(0.18, 21);
        let cfg = PrimConfig::quick();
        let inputs = ModelInputs::build(
            &ds.graph,
            &ds.taxonomy,
            &ds.attrs,
            ds.graph.edges(),
            None,
            &cfg,
        );
        (ds, inputs)
    }

    fn check_encoder<E: Encoder>() {
        let (ds, inputs) = small_inputs();
        let cfg = BaselineConfig {
            epochs: 12,
            dim: 12,
            n_layers: 2,
            ..BaselineConfig::quick()
        };
        let mut model = EncoderModel::<E>::new(cfg, &inputs);
        // Forward produces finite embeddings of the right shape.
        {
            let mut g = Graph::new();
            let bind = model.store().bind(&mut g);
            let (h, rel) = model.forward(&mut g, &bind, &inputs);
            assert_eq!(g.shape(h), (inputs.n_pois, 12));
            assert_eq!(g.shape(rel), (inputs.n_relations + 1, 12));
            assert!(
                g.value(h).all_finite(),
                "{} produced non-finite output",
                E::NAME
            );
        }
        // A few epochs reduce the loss.
        let report = train_pair_model(&mut model, &inputs, &ds.graph, ds.graph.edges(), None, None);
        assert!(
            report.losses[11] < report.losses[0],
            "{}: loss {:?} → {:?}",
            E::NAME,
            report.losses[0],
            report.losses[11]
        );
        // Predictions are valid class ids.
        let preds = predict_pairs(&model, &inputs, &[(PoiId(0), PoiId(1))]);
        assert!(preds[0] <= inputs.n_relations);
    }

    #[test]
    fn gcn_trains() {
        check_encoder::<GcnEncoder>();
    }

    #[test]
    fn gat_trains() {
        check_encoder::<GatEncoder>();
    }

    #[test]
    fn rgcn_trains() {
        check_encoder::<RgcnEncoder>();
    }

    #[test]
    fn compgcn_trains() {
        check_encoder::<CompGcnEncoder>();
    }

    #[test]
    fn hgt_trains() {
        check_encoder::<HgtEncoder>();
    }

    #[test]
    fn han_trains() {
        check_encoder::<HanEncoder>();
    }

    #[test]
    fn gcn_coeffs_positive_and_bounded() {
        let (_, inputs) = small_inputs();
        let c = gcn_coeffs(&inputs);
        assert!(c.data().iter().all(|&v| v > 0.0 && v <= 1.0));
    }
}
