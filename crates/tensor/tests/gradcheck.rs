//! Finite-difference gradient checks for every differentiable op.
//!
//! Each test builds the same loss eagerly (for numeric differentiation) and
//! on the tape (for analytic gradients), then compares.

use prim_tensor::check::{assert_gradients_match, numeric_gradients, TestRng};
use prim_tensor::{Graph, Matrix, Var};

const EPS: f32 = 1e-2;
const TOL: f32 = 2e-2;

/// Runs a gradient check: `build` wires inputs (as leaves) into a scalar loss.
fn check(inputs: &[Matrix], build: impl Fn(&mut Graph, &[Var]) -> Var) {
    let f = |ins: &[Matrix]| -> f32 {
        let mut g = Graph::new();
        let vars: Vec<Var> = ins.iter().map(|m| g.leaf(m.clone())).collect();
        let loss = build(&mut g, &vars);
        g.value(loss).scalar()
    };
    let numeric = numeric_gradients(f, inputs, EPS);

    let mut g = Graph::new();
    let vars: Vec<Var> = inputs.iter().map(|m| g.leaf(m.clone())).collect();
    let loss = build(&mut g, &vars);
    let grads = g.backward(loss);
    let analytic: Vec<Matrix> = vars
        .iter()
        .zip(inputs.iter())
        .map(|(&v, m)| grads.get_or_zeros(v, m.rows(), m.cols()).into_owned())
        .collect();
    assert_gradients_match(&analytic, &numeric, TOL);
}

fn rng_mats(seed: u64, shapes: &[(usize, usize)]) -> Vec<Matrix> {
    let mut rng = TestRng::new(seed);
    shapes.iter().map(|&(r, c)| rng.matrix(r, c)).collect()
}

#[test]
fn grad_matmul() {
    let ins = rng_mats(1, &[(3, 4), (4, 2)]);
    check(&ins, |g, v| {
        let c = g.matmul(v[0], v[1]);
        g.sum_all(c)
    });
}

#[test]
fn grad_add_sub_mul() {
    let ins = rng_mats(2, &[(3, 3), (3, 3), (3, 3)]);
    check(&ins, |g, v| {
        let a = g.add(v[0], v[1]);
        let b = g.sub(a, v[2]);
        let c = g.mul(b, v[0]);
        g.sum_all(c)
    });
}

#[test]
fn grad_add_row_broadcast() {
    let ins = rng_mats(3, &[(4, 3), (1, 3)]);
    check(&ins, |g, v| {
        let y = g.add_row_broadcast(v[0], v[1]);
        let sq = g.mul(y, y);
        g.sum_all(sq)
    });
}

#[test]
fn grad_scale_and_add_scalar() {
    let ins = rng_mats(4, &[(2, 5)]);
    check(&ins, |g, v| {
        let a = g.scale(v[0], 2.5);
        let b = g.add_scalar(a, -0.5);
        let c = g.mul(b, b);
        g.mean_all(c)
    });
}

#[test]
fn grad_mul_scalar_var() {
    let ins = rng_mats(5, &[(2, 3), (1, 1)]);
    check(&ins, |g, v| {
        let y = g.mul_scalar_var(v[0], v[1]);
        let sq = g.mul(y, y);
        g.sum_all(sq)
    });
}

#[test]
fn grad_concat_cols() {
    let ins = rng_mats(6, &[(3, 2), (3, 3), (3, 1)]);
    check(&ins, |g, v| {
        let cc = g.concat_cols(&[v[0], v[1], v[2]]);
        let sq = g.mul(cc, cc);
        g.sum_all(sq)
    });
}

#[test]
fn grad_vstack() {
    let ins = rng_mats(7, &[(2, 3), (1, 3), (3, 3)]);
    check(&ins, |g, v| {
        let vs = g.vstack(&[v[0], v[1], v[2]]);
        let sq = g.mul(vs, vs);
        g.sum_all(sq)
    });
}

#[test]
fn grad_gather_rows_with_repeats() {
    let ins = rng_mats(8, &[(4, 3)]);
    check(&ins, |g, v| {
        let gathered = g.gather_rows(v[0], &[0, 2, 2, 3, 0]);
        let sq = g.mul(gathered, gathered);
        g.sum_all(sq)
    });
}

#[test]
fn grad_segment_sum() {
    let ins = rng_mats(9, &[(6, 2)]);
    check(&ins, |g, v| {
        let s = g.segment_sum(v[0], &[0, 1, 0, 2, 2, 1], 3);
        let sq = g.mul(s, s);
        g.sum_all(sq)
    });
}

#[test]
fn grad_segment_softmax_single_column() {
    let ins = rng_mats(10, &[(6, 1), (6, 1)]);
    check(&ins, |g, v| {
        let sm = g.segment_softmax(v[0], &[0, 0, 1, 1, 1, 2]);
        let weighted = g.mul(sm, v[1]);
        g.sum_all(weighted)
    });
}

#[test]
fn grad_segment_softmax_multi_column() {
    let ins = rng_mats(11, &[(5, 3), (5, 3)]);
    check(&ins, |g, v| {
        let sm = g.segment_softmax(v[0], &[0, 1, 0, 1, 0]);
        let weighted = g.mul(sm, v[1]);
        g.sum_all(weighted)
    });
}

#[test]
fn grad_rows_dot() {
    let ins = rng_mats(12, &[(4, 3), (4, 3)]);
    check(&ins, |g, v| {
        let d = g.rows_dot(v[0], v[1]);
        let sq = g.mul(d, d);
        g.sum_all(sq)
    });
}

#[test]
fn grad_scale_rows() {
    let ins = rng_mats(13, &[(4, 3), (4, 1)]);
    check(&ins, |g, v| {
        let y = g.scale_rows(v[0], v[1]);
        let sq = g.mul(y, y);
        g.sum_all(sq)
    });
}

#[test]
fn grad_normalize_rows() {
    // Keep inputs away from zero rows for numeric stability.
    let mut rng = TestRng::new(14);
    let x = Matrix::from_fn(3, 4, |_, _| rng.unit() + 2.0);
    let w = rng.matrix(3, 4);
    check(&[x, w], |g, v| {
        let y = g.normalize_rows(v[0]);
        let weighted = g.mul(y, v[1]);
        g.sum_all(weighted)
    });
}

#[test]
fn grad_activations() {
    // Shift away from the ReLU kink to avoid spurious numeric error.
    let mut rng = TestRng::new(15);
    let x = Matrix::from_fn(3, 3, |_, _| {
        let v = rng.unit();
        if v.abs() < 0.2 {
            v + 0.3
        } else {
            v
        }
    });
    check(std::slice::from_ref(&x), |g, v| {
        let y = g.relu(v[0]);
        g.sum_all(y)
    });
    check(std::slice::from_ref(&x), |g, v| {
        let y = g.leaky_relu(v[0], 0.2);
        g.sum_all(y)
    });
    check(std::slice::from_ref(&x), |g, v| {
        let y = g.elu(v[0]);
        g.sum_all(y)
    });
    check(std::slice::from_ref(&x), |g, v| {
        let y = g.sigmoid(v[0]);
        g.sum_all(y)
    });
    check(&[x], |g, v| {
        let y = g.tanh(v[0]);
        g.sum_all(y)
    });
}

#[test]
fn grad_bce_with_logits() {
    let ins = rng_mats(16, &[(5, 1)]);
    check(&ins, |g, v| {
        g.bce_with_logits(v[0], &[1.0, 0.0, 1.0, 0.0, 1.0])
    });
}

#[test]
fn grad_mean_all() {
    let ins = rng_mats(17, &[(3, 4)]);
    check(&ins, |g, v| {
        let sq = g.mul(v[0], v[0]);
        g.mean_all(sq)
    });
}

/// A composite resembling one WRGNN attention head: gather, concat, project,
/// leaky-relu, segment softmax, weighted aggregation.
#[test]
fn grad_attention_composite() {
    let mut rng = TestRng::new(18);
    let h = rng.matrix(4, 3); // node states
    let wa = rng.matrix(3, 2);
    let att = rng.matrix(4, 1); // per-edge attention vectors (pre-reduced)
    let wmsg = rng.matrix(3, 3);
    let src = vec![0usize, 1, 2, 3];
    let dst = vec![1usize, 1, 0, 0];
    let seg = vec![1usize, 1, 0, 0];
    check(&[h, wa, att, wmsg], |g, v| {
        let proj = g.matmul(v[0], v[1]); // 4x2
        let hs = g.gather_rows(proj, &src);
        let hd = g.gather_rows(proj, &dst);
        let feats = g.concat_cols(&[hd, hs]); // 4x4
                                              // build per-edge attention vec by tiling v[2] columns
        let a = g.concat_cols(&[v[2], v[2], v[2], v[2]]);
        let prod = g.rows_dot(feats, a);
        let scores = g.leaky_relu(prod, 0.2);
        let alpha = g.segment_softmax(scores, &seg);
        let msgs = g.matmul(v[0], v[3]);
        let msrc = g.gather_rows(msgs, &src);
        let weighted = g.scale_rows(msrc, alpha);
        let agg = g.segment_sum(weighted, &seg, 2);
        let act = g.elu(agg);
        let sq = g.mul(act, act);
        g.sum_all(sq)
    });
}

/// Distance-specific hyperplane projection from the paper (Eq. 11):
/// h' = h − (h·ŵ) ŵ with ŵ the normalised bin vector.
#[test]
fn grad_hyperplane_projection() {
    let mut rng = TestRng::new(19);
    let h = rng.matrix(5, 3);
    let wb = Matrix::from_fn(2, 3, |_, _| rng.unit() + 1.5); // bin normals, away from 0
    let bins = vec![0usize, 1, 0, 1, 1];
    check(&[h, wb], |g, v| {
        let wn = g.normalize_rows(v[1]);
        let w_rows = g.gather_rows(wn, &bins);
        let dots = g.rows_dot(v[0], w_rows);
        let proj = g.scale_rows(w_rows, dots);
        let hd = g.sub(v[0], proj);
        let sq = g.mul(hd, hd);
        g.sum_all(sq)
    });
}

#[test]
fn grad_rows_circ_corr() {
    let ins = rng_mats(20, &[(3, 5), (3, 5)]);
    check(&ins, |g, v| {
        let y = g.rows_circ_corr(v[0], v[1]);
        let sq = g.mul(y, y);
        g.sum_all(sq)
    });
}

#[test]
fn circ_corr_forward_known_values() {
    // a = [1,2,0], b = [3,0,1]: (a⋆b)_k = Σ_i a_i b_{(k+i)%3}
    // k=0: 1·3 + 2·0 + 0·1 = 3; k=1: 1·0 + 2·1 + 0·3 = 2; k=2: 1·1 + 2·3 + 0·0 = 7.
    let mut g = Graph::new();
    let a = g.leaf(Matrix::from_vec(1, 3, vec![1.0, 2.0, 0.0]));
    let b = g.leaf(Matrix::from_vec(1, 3, vec![3.0, 0.0, 1.0]));
    let y = g.rows_circ_corr(a, b);
    assert_eq!(g.value(y).data(), &[3.0, 2.0, 7.0]);
}
