//! Property-based tests (proptest) for the autodiff engine: algebraic
//! identities of the eager ops and invariants of the GNN primitives.

use prim_tensor::check::TestRng;
use prim_tensor::segment::{
    broadcast_segments_into, segment_dot_into, segment_dot_serial_into, segment_max_into,
    segment_max_serial_into, segment_sum_into, segment_sum_serial_into,
};
use prim_tensor::{kernel, Graph, Matrix, SegmentPlan};
use proptest::prelude::*;
use std::sync::Arc;

fn mat(rows: usize, cols: usize) -> impl Strategy<Value = Matrix> {
    prop::collection::vec(-3.0f32..3.0, rows * cols)
        .prop_map(move |data| Matrix::from_vec(rows, cols, data))
}

/// Bitwise (not approximate) equality — the contract between the blocked /
/// parallel kernels and their naive reference implementations.
fn bits_equal(a: &Matrix, b: &Matrix) -> bool {
    a.shape() == b.shape()
        && a.data()
            .iter()
            .zip(b.data().iter())
            .all(|(x, y)| x.to_bits() == y.to_bits())
}

fn close(a: f32, b: f32) -> bool {
    (a - b).abs() <= 1e-3 * (1.0 + a.abs().max(b.abs()))
}

fn mats_close(a: &Matrix, b: &Matrix) -> bool {
    a.shape() == b.shape()
        && a.data()
            .iter()
            .zip(b.data().iter())
            .all(|(&x, &y)| close(x, y))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// (AB)C = A(BC) within float tolerance.
    #[test]
    fn matmul_associative(a in mat(4, 3), b in mat(3, 5), c in mat(5, 2)) {
        let left = a.matmul(&b).matmul(&c);
        let right = a.matmul(&b.matmul(&c));
        prop_assert!(mats_close(&left, &right));
    }

    /// (A + B)C = AC + BC.
    #[test]
    fn matmul_distributes(a in mat(3, 4), b in mat(3, 4), c in mat(4, 2)) {
        let left = a.add(&b).matmul(&c);
        let right = a.matmul(&c).add(&b.matmul(&c));
        prop_assert!(mats_close(&left, &right));
    }

    /// (AB)ᵀ = Bᵀ Aᵀ.
    #[test]
    fn matmul_transpose_identity(a in mat(3, 4), b in mat(4, 2)) {
        let left = a.matmul(&b).transpose();
        let right = b.transpose().matmul(&a.transpose());
        prop_assert!(mats_close(&left, &right));
    }

    /// Hadamard product is commutative, scale is linear.
    #[test]
    fn elementwise_algebra(a in mat(4, 4), b in mat(4, 4), k in -5.0f32..5.0) {
        prop_assert!(mats_close(&a.hadamard(&b), &b.hadamard(&a)));
        prop_assert!(mats_close(&a.add(&b).scale(k), &a.scale(k).add(&b.scale(k))));
    }

    /// segment_softmax output sums to 1 per (segment, column) and lies in
    /// (0, 1]; it is invariant to adding a constant to a segment's logits.
    #[test]
    fn segment_softmax_invariants(
        x in mat(12, 2),
        seg in prop::collection::vec(0usize..4, 12),
        shift in -10.0f32..10.0,
    ) {
        let mut g = Graph::new();
        let v = g.leaf(x.clone());
        let y = g.segment_softmax(v, &seg);
        let out = g.value(y).clone();
        // Sums per segment per column.
        let n_seg = seg.iter().copied().max().unwrap() + 1;
        for s in 0..n_seg {
            for c in 0..2 {
                let total: f32 = (0..12).filter(|&r| seg[r] == s).map(|r| out[(r, c)]).sum();
                let count = seg.iter().filter(|&&t| t == s).count();
                if count > 0 {
                    prop_assert!(close(total, 1.0), "segment {s} col {c} sums to {total}");
                }
            }
        }
        prop_assert!(out.data().iter().all(|&v| v > 0.0 && v <= 1.0 + 1e-6));

        // Shift invariance.
        let shifted = Matrix::from_fn(12, 2, |r, c| x[(r, c)] + shift);
        let mut g2 = Graph::new();
        let v2 = g2.leaf(shifted);
        let y2 = g2.segment_softmax(v2, &seg);
        prop_assert!(mats_close(&out, g2.value(y2)));
    }

    /// segment_sum is linear: seg(αx + y) = α·seg(x) + seg(y).
    #[test]
    fn segment_sum_linear(
        x in mat(10, 3),
        y in mat(10, 3),
        seg in prop::collection::vec(0usize..5, 10),
        alpha in -3.0f32..3.0,
    ) {
        let run = |m: &Matrix| {
            let mut g = Graph::new();
            let v = g.leaf(m.clone());
            let s = g.segment_sum(v, &seg, 5);
            g.value(s).clone()
        };
        let combined = run(&x.scale(alpha).add(&y));
        let separate = run(&x).scale(alpha).add(&run(&y));
        prop_assert!(mats_close(&combined, &separate));
    }

    /// gather then segment_sum by the same index is the "count-weighted"
    /// identity: each row appears exactly as often as it was gathered.
    #[test]
    fn gather_scatter_counts(
        x in mat(6, 2),
        idx in prop::collection::vec(0usize..6, 1..20),
    ) {
        let mut g = Graph::new();
        let v = g.leaf(x.clone());
        let gathered = g.gather_rows(v, &idx);
        let scattered = g.segment_sum(gathered, &idx, 6);
        let out = g.value(scattered);
        for r in 0..6 {
            let count = idx.iter().filter(|&&i| i == r).count() as f32;
            for c in 0..2 {
                prop_assert!(close(out[(r, c)], x[(r, c)] * count));
            }
        }
    }

    /// normalize_rows produces unit rows (for non-degenerate input) and is
    /// idempotent.
    #[test]
    fn normalize_rows_idempotent(x in mat(5, 4)) {
        let mut g = Graph::new();
        let v = g.leaf(x.clone());
        let y1 = g.normalize_rows(v);
        let y2 = g.normalize_rows(y1);
        let (o1, o2) = (g.value(y1).clone(), g.value(y2).clone());
        for r in 0..5 {
            if x.row_norm(r) > 1e-3 {
                prop_assert!(close(o1.row_norm(r), 1.0));
            }
        }
        prop_assert!(mats_close(&o1, &o2));
    }

    /// The hyperplane projection used by distance-specific scoring strictly
    /// reduces (or preserves) the norm and is idempotent: P(P(h)) = P(h).
    #[test]
    fn hyperplane_projection_contracts(h in mat(4, 6), w in mat(1, 6)) {
        prop_assume!(w.row_norm(0) > 1e-2);
        let mut g = Graph::new();
        let hv = g.leaf(h.clone());
        let wv = g.leaf(w.clone());
        let wn = g.normalize_rows(wv);
        let w_rows = g.gather_rows(wn, &[0usize; 4]);
        let project = |g: &mut Graph, hv| {
            let d = g.rows_dot(hv, w_rows);
            let p = g.scale_rows(w_rows, d);
            g.sub(hv, p)
        };
        let p1 = project(&mut g, hv);
        let p2 = project(&mut g, p1);
        let (o1, o2) = (g.value(p1).clone(), g.value(p2).clone());
        for r in 0..4 {
            prop_assert!(o1.row_norm(r) <= h.row_norm(r) + 1e-4);
        }
        prop_assert!(mats_close(&o1, &o2));
    }

    /// BCE with logits is non-negative and zero only for perfect confidence.
    #[test]
    fn bce_nonnegative(x in mat(6, 1), labels in prop::collection::vec(0u8..2, 6)) {
        let targets: Vec<f32> = labels.iter().map(|&l| l as f32).collect();
        let mut g = Graph::new();
        let v = g.leaf(x);
        let loss = g.bce_with_logits(v, &targets);
        prop_assert!(g.value(loss).scalar() >= 0.0);
    }

    /// Backward accumulates: d(sum(x + x))/dx = 2.
    #[test]
    fn gradient_accumulation_through_fanout(x in mat(3, 3)) {
        let mut g = Graph::new();
        let v = g.leaf(x);
        let doubled = g.add(v, v);
        let loss = g.sum_all(doubled);
        let grads = g.backward(loss);
        let dv = grads.get(v).unwrap();
        prop_assert!(dv.data().iter().all(|&d| close(d, 2.0)));
    }

    /// The blocked `matmul` is bitwise identical to the naive reference on
    /// random shapes (dimension 0 and 1×1 included in the ranges).
    #[test]
    fn matmul_blocked_matches_naive_bitwise(
        m in 0usize..40, k in 0usize..40, n in 0usize..40,
        data in prop::collection::vec(-3.0f32..3.0, 3200),
    ) {
        let a = Matrix::from_vec(m, k, data[..m * k].to_vec());
        let b = Matrix::from_vec(k, n, data[1600..1600 + k * n].to_vec());
        prop_assert!(bits_equal(&a.matmul(&b), &a.matmul_naive(&b)));
    }

    /// Same contract for `matmul_tn` (`AᵀB` without materialising `Aᵀ`).
    #[test]
    fn matmul_tn_blocked_matches_naive_bitwise(
        kd in 0usize..40, m in 0usize..40, n in 0usize..40,
        data in prop::collection::vec(-3.0f32..3.0, 3200),
    ) {
        let a = Matrix::from_vec(kd, m, data[..kd * m].to_vec());
        let b = Matrix::from_vec(kd, n, data[1600..1600 + kd * n].to_vec());
        prop_assert!(bits_equal(&a.matmul_tn(&b), &a.matmul_tn_naive(&b)));
    }

    /// Same contract for `matmul_nt` (`ABᵀ` without materialising `Bᵀ`).
    #[test]
    fn matmul_nt_blocked_matches_naive_bitwise(
        m in 0usize..40, k in 0usize..40, p in 0usize..40,
        data in prop::collection::vec(-3.0f32..3.0, 3200),
    ) {
        let a = Matrix::from_vec(m, k, data[..m * k].to_vec());
        let b = Matrix::from_vec(p, k, data[1600..1600 + p * k].to_vec());
        prop_assert!(bits_equal(&a.matmul_nt(&b), &a.matmul_nt_naive(&b)));
    }

    /// The output-partitioned segment reductions are bitwise identical to
    /// their serial references on random shapes: 0-row inputs, 0-column
    /// inputs, out-of-order segment ids, empty interior segments, and
    /// trailing empty segments (`n_segments` past the largest id), at every
    /// thread count.
    #[test]
    fn segment_kernels_parallel_match_serial_bitwise(
        rows in 0usize..40,
        cols in 0usize..8,
        extra_segments in 0usize..4,
        data in prop::collection::vec(-3.0f32..3.0, 640),
        seg_raw in prop::collection::vec(0usize..12, 40),
        threads in 1usize..6,
    ) {
        let x = Matrix::from_vec(rows, cols, data[..rows * cols].to_vec());
        let y = Matrix::from_vec(rows, cols, data[320..320 + rows * cols].to_vec());
        let seg: Vec<usize> = seg_raw[..rows].to_vec();
        let n_segments =
            seg.iter().copied().max().map_or(0, |m| m + 1) + extra_segments;
        let plan = SegmentPlan::new(seg.clone(), n_segments);
        kernel::set_threads(threads);

        let mut par = Matrix::zeros(n_segments, cols);
        segment_sum_into(&x, &plan, &mut par);
        let mut ser = Matrix::zeros(n_segments, cols);
        segment_sum_serial_into(&x, &seg, &mut ser);
        prop_assert!(bits_equal(&par, &ser), "segment_sum drifted");

        let mut par_max = Matrix::from_fn(n_segments, cols, |_, _| f32::NEG_INFINITY);
        segment_max_into(&x, &plan, &mut par_max);
        let mut ser_max = Matrix::from_fn(n_segments, cols, |_, _| f32::NEG_INFINITY);
        segment_max_serial_into(&x, &seg, &mut ser_max);
        prop_assert!(bits_equal(&par_max, &ser_max), "segment_max drifted");

        let mut par_dot = Matrix::zeros(n_segments, cols);
        segment_dot_into(&x, &y, &plan, &mut par_dot);
        let mut ser_dot = Matrix::zeros(n_segments, cols);
        segment_dot_serial_into(&x, &y, &seg, &mut ser_dot);
        prop_assert!(bits_equal(&par_dot, &ser_dot), "segment_dot drifted");

        // Broadcast (gather forward / segment-sum adjoint): each output row
        // must equal the source row its segment id names.
        let src = Matrix::from_vec(
            n_segments,
            cols,
            data[640 - n_segments * cols..].to_vec(),
        );
        let mut bcast = Matrix::zeros(rows, cols);
        broadcast_segments_into(&src, &plan, &mut bcast);
        let naive = Matrix::from_fn(rows, cols, |r, c| src[(seg[r], c)]);
        prop_assert!(bits_equal(&bcast, &naive), "broadcast drifted");
        kernel::set_threads(0);
    }

    /// A full planned pipeline on the tape — gather, segment softmax,
    /// segment sum, and the backward pass through all three (broadcast,
    /// segment-dot, scatter-add) — produces bitwise identical values and
    /// gradients at any thread count.
    #[test]
    fn planned_graph_pipeline_thread_invariant(
        table in mat(5, 3),
        idx in prop::collection::vec(0usize..5, 0..16),
        threads in 2usize..6,
    ) {
        let plan = Arc::new(SegmentPlan::new(idx, 5));
        let run = |plan: &Arc<SegmentPlan>| {
            let mut g = Graph::new();
            let t = g.leaf_ref(&table);
            let gathered = g.gather_rows_planned(t, plan);
            let alpha = g.segment_softmax_planned(gathered, plan);
            let agg = g.segment_sum_planned(alpha, plan);
            let loss = g.sum_all(agg);
            let out = g.value(agg).clone();
            let grads = g.backward(loss);
            (out, grads.get(t).unwrap().clone())
        };
        kernel::set_threads(1);
        let (v_serial, g_serial) = run(&plan);
        kernel::set_threads(threads);
        let (v_par, g_par) = run(&plan);
        kernel::set_threads(0);
        prop_assert!(bits_equal(&v_serial, &v_par), "planned values drifted");
        prop_assert!(bits_equal(&g_serial, &g_par), "planned gradients drifted");
    }

    /// The persistent-pool kernel helpers are bitwise identical to the
    /// scoped-spawn references they replaced, on random shapes, grains and
    /// thread counts — same partitioning arithmetic, different execution
    /// substrate (parked workers vs per-call `std::thread::scope`).
    #[test]
    fn pooled_helpers_match_scoped_spawn_bitwise(
        rows in 0usize..80,
        cols in 1usize..8,
        grain in 1usize..16,
        data in prop::collection::vec(-3.0f32..3.0, 1280),
        threads in 2usize..6,
    ) {
        let len = rows * cols;
        let base: Vec<f32> = data[..len].to_vec();
        kernel::set_threads(threads);

        let mut pooled = base.clone();
        kernel::par_row_chunks(&mut pooled, cols, grain, |r0, chunk| {
            for (dr, row) in chunk.chunks_mut(cols).enumerate() {
                let scale = (r0 + dr) as f32 + 0.5;
                row.iter_mut().for_each(|x| *x *= scale);
            }
        });
        let mut scoped = base.clone();
        kernel::scoped::par_row_chunks(&mut scoped, cols, grain, |r0, chunk| {
            for (dr, row) in chunk.chunks_mut(cols).enumerate() {
                let scale = (r0 + dr) as f32 + 0.5;
                row.iter_mut().for_each(|x| *x *= scale);
            }
        });
        prop_assert_eq!(&pooled, &scoped, "par_row_chunks drifted");

        let mut pooled = base.clone();
        kernel::par_apply(&mut pooled, |x| *x = x.exp());
        let mut scoped = base.clone();
        kernel::scoped::par_apply(&mut scoped, |x| *x = x.exp());
        prop_assert_eq!(
            pooled.iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
            scoped.iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
            "par_apply drifted"
        );

        let src: Vec<f32> = data[len..2 * len].to_vec();
        let mut pooled = base.clone();
        kernel::par_zip_apply(&mut pooled, &src, |a, b| *a += b * b);
        let mut scoped = base.clone();
        kernel::scoped::par_zip_apply(&mut scoped, &src, |a, b| *a += b * b);
        prop_assert_eq!(&pooled, &scoped, "par_zip_apply drifted");

        let items: Vec<f32> = base.clone();
        let pooled = kernel::par_map_chunks(&items, grain, |i, &x| x * i as f32);
        let scoped = kernel::scoped::par_map_chunks(&items, grain, |i, &x| x * i as f32);
        prop_assert_eq!(&pooled, &scoped, "par_map_chunks drifted");
        kernel::set_threads(0);
    }

    /// Reusing one pooled tape across training iterations (`reset()` +
    /// `recycle()`) is bitwise identical to building a fresh `Graph` per
    /// iteration: pooled buffers must never leak stale values into the next
    /// step.
    #[test]
    fn pooled_reset_matches_fresh_graph_bitwise(
        x in mat(6, 4),
        w0 in mat(4, 3),
        seg in prop::collection::vec(0usize..4, 10),
    ) {
        // One SGD-style step: h = x·w, gather, softmax, aggregate, then
        // follow the gradient of the summed output.
        let step = |g: &mut Graph, w: &Matrix| -> (f32, Matrix) {
            let xv = g.constant_ref(&x);
            let wv = g.leaf_ref(w);
            let h = g.matmul(xv, wv);
            let gathered = g.gather_rows(h, &seg);
            let alpha = g.segment_softmax(gathered, &seg);
            let agg = g.segment_sum(alpha, &seg, 4);
            let loss = g.sum_all(agg);
            let loss_val = g.value(loss).scalar();
            let grads = g.backward(loss);
            let dw = grads.get(wv).unwrap().clone();
            let next = w.add(&dw.scale(-0.1));
            g.recycle(grads);
            (loss_val, next)
        };

        let mut w_pooled = w0.clone();
        let mut w_fresh = w0;
        let mut pooled = Graph::new();
        for _ in 0..3 {
            pooled.reset();
            let (loss_pooled, next_pooled) = step(&mut pooled, &w_pooled);
            let mut fresh = Graph::new();
            let (loss_fresh, next_fresh) = step(&mut fresh, &w_fresh);
            prop_assert_eq!(loss_pooled.to_bits(), loss_fresh.to_bits());
            w_pooled = next_pooled;
            w_fresh = next_fresh;
            prop_assert!(bits_equal(&w_pooled, &w_fresh), "pooled step drifted");
        }
    }
}

/// Deterministic edge cases the random shapes above may not always hit:
/// empty dimensions, scalars, and shapes that straddle the cache-block
/// boundaries (`NB = 128`, `KB = 64`, `IB = 32`).
#[test]
fn matmul_parity_edge_and_boundary_shapes() {
    let mut rng = TestRng::new(0x5EED_B10C);
    for &(m, k, n) in &[
        (0, 5, 7),
        (5, 0, 7),
        (5, 7, 0),
        (1, 1, 1),
        (1, 64, 128),
        (32, 64, 128),
        (33, 65, 129),
        (129, 64, 1),
        (200, 3, 130),
        (3, 200, 5),
    ] {
        let a = rng.matrix(m, k);
        let b = rng.matrix(k, n);
        assert!(
            bits_equal(&a.matmul(&b), &a.matmul_naive(&b)),
            "matmul parity failed at {m}x{k}x{n}"
        );
        let at = rng.matrix(k, m);
        assert!(
            bits_equal(&at.matmul_tn(&b), &at.matmul_tn_naive(&b)),
            "matmul_tn parity failed at {m}x{k}x{n}"
        );
        let bt = rng.matrix(n, k);
        assert!(
            bits_equal(&a.matmul_nt(&bt), &a.matmul_nt_naive(&bt)),
            "matmul_nt parity failed at {m}x{k}x{n}"
        );
    }
}

/// Kernel outputs are invariant to the thread count: the same product
/// computed on 1, 2, 3 and 8 threads is bitwise identical. (The override is
/// process-wide, but since *every* kernel is thread-count invariant,
/// concurrent tests cannot disturb each other's results.)
#[test]
fn matmul_bitwise_identical_across_thread_counts() {
    let mut rng = TestRng::new(0xDE7E_2817);
    // Big enough that the parallel path actually engages (grain = 1 row).
    let a = rng.matrix(160, 96);
    let b = rng.matrix(96, 140);
    kernel::set_threads(1);
    let serial = a.matmul(&b);
    let serial_tn = a.matmul_tn(&a);
    let serial_nt = b.matmul_nt(&b);
    for threads in [2, 3, 8] {
        kernel::set_threads(threads);
        assert!(
            bits_equal(&a.matmul(&b), &serial),
            "matmul drifted at {threads} threads"
        );
        assert!(
            bits_equal(&a.matmul_tn(&a), &serial_tn),
            "matmul_tn drifted at {threads} threads"
        );
        assert!(
            bits_equal(&b.matmul_nt(&b), &serial_nt),
            "matmul_nt drifted at {threads} threads"
        );
    }
    kernel::set_threads(0);
}
