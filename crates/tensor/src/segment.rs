//! CSR-style segment plans and the parallel deterministic scatter kernels
//! built on them.
//!
//! The message-passing primitives (`segment_sum`, `segment_softmax`,
//! `gather_rows`' backward scatter-add) all reduce many input rows into
//! per-segment output rows. Executed naively that reduction is a serial
//! scatter: row `r` accumulates into output row `segment_of_row[r]`, and two
//! rows of the same segment must not race. A [`SegmentPlan`] inverts the map
//! once per graph structure — for each segment it lists the input rows that
//! feed it, **in ascending row order** — which turns the scatter into a
//! gather-reduce that parallelises by *output segment*: each output row is
//! owned by exactly one thread, and that thread accumulates the segment's
//! rows in the exact order the serial kernel would have. Results are
//! therefore bitwise identical for any thread count (the same contract
//! [`crate::kernel`] documents for the matmul family), which the serial
//! reference kernels kept in this module let the property tests assert.
//!
//! Plans are immutable after construction and meant to be built once per
//! graph structure, shared behind [`std::sync::Arc`], and passed to the
//! `*_planned` tape ops — eliminating the per-epoch clone of every E-sized
//! index vector that the slice-taking ops perform.

use crate::kernel;
use crate::matrix::Matrix;

/// Segment reductions touching fewer than this many input elements
/// (`rows × cols`) take the serial path outright. Even with the persistent
/// pool a wake costs a few microseconds, and a sub-threshold reduction
/// finishes in less than that — BENCH_kernels.json showed the 40k-edge
/// kernels *losing* at small widths under per-call spawning, and small
/// calls (validation batches, tiny heads) still lose under the pool.
pub const SEG_PAR_MIN_WORK: usize = 1 << 18;

/// Inverted segment map: for every output segment, the input rows that feed
/// it, grouped CSR-style and ascending within each segment.
///
/// Doubles as a gather plan: a gather by `indices` from an `n`-row source is
/// described by `SegmentPlan::new(indices, n)` — the forward pass reads
/// [`SegmentPlan::segment_of_row`] (the original index list, order
/// preserved), and the backward scatter-add reduces by segment.
#[derive(Clone, Debug)]
pub struct SegmentPlan {
    /// The original map: `segment_of_row[r]` is the segment (or gather
    /// source row) of input row `r`.
    segment_of_row: Vec<usize>,
    /// Number of output segments. May exceed `max(segment_of_row) + 1`;
    /// segments with no rows produce zero (or the reduction's identity).
    n_segments: usize,
    /// Input rows grouped by segment: rows of segment `s` are
    /// `rows[offsets[s]..offsets[s + 1]]`, ascending.
    rows: Vec<u32>,
    /// CSR offsets, `n_segments + 1` entries.
    offsets: Vec<usize>,
}

impl SegmentPlan {
    /// Builds a plan from a segment map via a stable counting sort.
    ///
    /// # Panics
    /// Panics if any segment id is `>= n_segments`, or if there are more
    /// than `u32::MAX` rows.
    pub fn new(segment_of_row: Vec<usize>, n_segments: usize) -> Self {
        assert!(
            u32::try_from(segment_of_row.len()).is_ok(),
            "SegmentPlan: row count {} exceeds u32 range",
            segment_of_row.len()
        );
        let mut offsets = vec![0usize; n_segments + 1];
        for &s in &segment_of_row {
            assert!(s < n_segments, "segment id {s} out of range {n_segments}");
            offsets[s + 1] += 1;
        }
        for s in 0..n_segments {
            offsets[s + 1] += offsets[s];
        }
        let mut cursor = offsets[..n_segments].to_vec();
        let mut rows = vec![0u32; segment_of_row.len()];
        for (r, &s) in segment_of_row.iter().enumerate() {
            rows[cursor[s]] = r as u32;
            cursor[s] += 1;
        }
        SegmentPlan {
            segment_of_row,
            n_segments,
            rows,
            offsets,
        }
    }

    /// Number of input rows the plan describes.
    pub fn len(&self) -> usize {
        self.segment_of_row.len()
    }

    /// True if the plan describes zero input rows.
    pub fn is_empty(&self) -> bool {
        self.segment_of_row.is_empty()
    }

    /// Number of output segments.
    pub fn n_segments(&self) -> usize {
        self.n_segments
    }

    /// The original (order-preserving) segment map / gather index list.
    pub fn segment_of_row(&self) -> &[usize] {
        &self.segment_of_row
    }

    /// Input rows of segment `s`, in ascending order.
    #[inline]
    pub fn rows_of(&self, s: usize) -> &[u32] {
        &self.rows[self.offsets[s]..self.offsets[s + 1]]
    }

    /// Row-chunk grain so one thread handles at least
    /// [`kernel::PAR_ELEM_CUTOFF`] accumulated elements: segments are cheap
    /// when sparse, so the grain scales with the average fan-in. Reductions
    /// below [`SEG_PAR_MIN_WORK`] total elements return an unsatisfiable
    /// grain, pinning them to the serial path (bitwise identical — the
    /// parallel kernel accumulates each segment in the same ascending row
    /// order).
    fn seg_grain(&self, cols: usize) -> usize {
        if self.len().saturating_mul(cols.max(1)) < SEG_PAR_MIN_WORK {
            return usize::MAX;
        }
        let per_seg = (self.len() / self.n_segments.max(1)).max(1) * cols.max(1);
        (kernel::PAR_ELEM_CUTOFF / per_seg).max(1)
    }
}

/// `out[s] += Σ input[r]` over `r ∈ rows_of(s)`, parallel by output segment.
///
/// `out` carries the reduction's initial value (zero it for a plain sum — it
/// is *not* cleared here, so gradient accumulation can reuse the kernel).
/// Bitwise identical to [`segment_sum_serial_into`] for any thread count:
/// each output row is owned by one thread which adds the segment's input
/// rows in the same ascending order as the serial scatter.
///
/// # Panics
/// Panics if `input` has `plan.len()` rows violated or `out` is not
/// `n_segments × cols`.
pub fn segment_sum_into(input: &Matrix, plan: &SegmentPlan, out: &mut Matrix) {
    let c = input.cols();
    assert_eq!(input.rows(), plan.len(), "segment_sum_into row mismatch");
    assert_eq!(
        out.shape(),
        (plan.n_segments(), c),
        "segment_sum_into output shape mismatch"
    );
    if c == 0 || plan.is_empty() {
        return;
    }
    kernel::par_row_chunks(out.data_mut(), c, plan.seg_grain(c), |s0, chunk| {
        for (ds, orow) in chunk.chunks_mut(c).enumerate() {
            for &r in plan.rows_of(s0 + ds) {
                for (o, &x) in orow.iter_mut().zip(input.row(r as usize)) {
                    *o += x;
                }
            }
        }
    });
}

/// Serial reference for [`segment_sum_into`]: the in-row-order scatter loop
/// the tape originally ran. Retained as the parity baseline for proptests
/// and the microbenchmarks.
pub fn segment_sum_serial_into(input: &Matrix, segment_of_row: &[usize], out: &mut Matrix) {
    assert_eq!(
        input.rows(),
        segment_of_row.len(),
        "segment_sum_serial_into row mismatch"
    );
    for (r, &s) in segment_of_row.iter().enumerate() {
        for (o, &x) in out.row_mut(s).iter_mut().zip(input.row(r)) {
            *o += x;
        }
    }
}

/// Per-segment, per-column maximum, parallel by output segment.
///
/// `out` carries the reduction's initial value (fill with
/// `f32::NEG_INFINITY`; empty segments keep it). Bitwise identical to
/// [`segment_max_serial_into`] for any thread count.
pub fn segment_max_into(input: &Matrix, plan: &SegmentPlan, out: &mut Matrix) {
    let c = input.cols();
    assert_eq!(input.rows(), plan.len(), "segment_max_into row mismatch");
    assert_eq!(
        out.shape(),
        (plan.n_segments(), c),
        "segment_max_into output shape mismatch"
    );
    if c == 0 || plan.is_empty() {
        return;
    }
    kernel::par_row_chunks(out.data_mut(), c, plan.seg_grain(c), |s0, chunk| {
        for (ds, orow) in chunk.chunks_mut(c).enumerate() {
            for &r in plan.rows_of(s0 + ds) {
                for (o, &x) in orow.iter_mut().zip(input.row(r as usize)) {
                    if x > *o {
                        *o = x;
                    }
                }
            }
        }
    });
}

/// Serial reference for [`segment_max_into`] (same `>` update, row order).
pub fn segment_max_serial_into(input: &Matrix, segment_of_row: &[usize], out: &mut Matrix) {
    assert_eq!(
        input.rows(),
        segment_of_row.len(),
        "segment_max_serial_into row mismatch"
    );
    for (r, &s) in segment_of_row.iter().enumerate() {
        for (o, &x) in out.row_mut(s).iter_mut().zip(input.row(r)) {
            if x > *o {
                *o = x;
            }
        }
    }
}

/// `out[s][c] += Σ a[r][c] · b[r][c]` over `r ∈ rows_of(s)`, parallel by
/// output segment — the fused `Σ_seg g ⊙ y` reduction of the segment-softmax
/// backward pass. `out` must be zeroed. Bitwise identical to
/// [`segment_dot_serial_into`] for any thread count.
pub fn segment_dot_into(a: &Matrix, b: &Matrix, plan: &SegmentPlan, out: &mut Matrix) {
    let c = a.cols();
    assert_eq!(
        a.shape(),
        b.shape(),
        "segment_dot_into input shape mismatch"
    );
    assert_eq!(a.rows(), plan.len(), "segment_dot_into row mismatch");
    assert_eq!(
        out.shape(),
        (plan.n_segments(), c),
        "segment_dot_into output shape mismatch"
    );
    if c == 0 || plan.is_empty() {
        return;
    }
    kernel::par_row_chunks(out.data_mut(), c, plan.seg_grain(c), |s0, chunk| {
        for (ds, orow) in chunk.chunks_mut(c).enumerate() {
            for &r in plan.rows_of(s0 + ds) {
                let (ra, rb) = (a.row(r as usize), b.row(r as usize));
                for ((o, &x), &y) in orow.iter_mut().zip(ra).zip(rb) {
                    *o += x * y;
                }
            }
        }
    });
}

/// Serial reference for [`segment_dot_into`].
pub fn segment_dot_serial_into(a: &Matrix, b: &Matrix, segment_of_row: &[usize], out: &mut Matrix) {
    assert_eq!(
        a.rows(),
        segment_of_row.len(),
        "segment_dot_serial_into row mismatch"
    );
    for (r, &s) in segment_of_row.iter().enumerate() {
        for ((o, &x), &y) in out.row_mut(s).iter_mut().zip(a.row(r)).zip(b.row(r)) {
            *o += x * y;
        }
    }
}

/// `out[r] = src[segment_of_row[r]]` — the broadcast adjoint of a segment
/// sum (and the forward of a gather). Every output row is written exactly
/// once, so this is plain per-row parallelism with no reduction at all.
pub fn broadcast_segments_into(src: &Matrix, plan: &SegmentPlan, out: &mut Matrix) {
    let c = src.cols();
    assert_eq!(src.rows(), plan.n_segments(), "broadcast segment mismatch");
    assert_eq!(
        out.shape(),
        (plan.len(), c),
        "broadcast_segments_into output shape mismatch"
    );
    if c == 0 {
        return;
    }
    let seg = plan.segment_of_row();
    let grain = if plan.len().saturating_mul(c) < SEG_PAR_MIN_WORK {
        usize::MAX // sub-threshold broadcast: serial (see SEG_PAR_MIN_WORK)
    } else {
        (kernel::PAR_ELEM_CUTOFF / c).max(1)
    };
    kernel::par_row_chunks(out.data_mut(), c, grain, |r0, chunk| {
        for (dr, row) in chunk.chunks_mut(c).enumerate() {
            row.copy_from_slice(src.row(seg[r0 + dr]));
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plan_groups_rows_in_ascending_order() {
        let plan = SegmentPlan::new(vec![2, 0, 2, 1, 0, 2], 4);
        assert_eq!(plan.rows_of(0), &[1, 4]);
        assert_eq!(plan.rows_of(1), &[3]);
        assert_eq!(plan.rows_of(2), &[0, 2, 5]);
        assert_eq!(plan.rows_of(3), &[] as &[u32]); // empty trailing segment
        assert_eq!(plan.len(), 6);
        assert_eq!(plan.n_segments(), 4);
    }

    #[test]
    fn planned_sum_matches_serial_reference() {
        let seg = vec![1usize, 0, 1, 3, 0];
        let input = Matrix::from_fn(5, 3, |r, c| (r * 3 + c) as f32 * 0.5 - 2.0);
        let plan = SegmentPlan::new(seg.clone(), 4);
        let mut par = Matrix::zeros(4, 3);
        segment_sum_into(&input, &plan, &mut par);
        let mut ser = Matrix::zeros(4, 3);
        segment_sum_serial_into(&input, &seg, &mut ser);
        assert_eq!(par.data(), ser.data());
    }

    #[test]
    fn zero_rows_and_zero_cols_are_noops() {
        let plan = SegmentPlan::new(vec![], 3);
        let input = Matrix::zeros(0, 4);
        let mut out = Matrix::zeros(3, 4);
        segment_sum_into(&input, &plan, &mut out);
        assert!(out.data().iter().all(|&v| v == 0.0));

        let plan = SegmentPlan::new(vec![0, 1], 2);
        let empty_cols = Matrix::zeros(2, 0);
        let mut out = Matrix::zeros(2, 0);
        segment_max_into(&empty_cols, &plan, &mut out);
        assert!(out.is_empty());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_segment_id_panics() {
        let _ = SegmentPlan::new(vec![0, 5], 3);
    }

    #[test]
    fn broadcast_copies_segment_rows() {
        let plan = SegmentPlan::new(vec![1, 0, 1], 2);
        let src = Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]);
        let mut out = Matrix::zeros(3, 2);
        broadcast_segments_into(&src, &plan, &mut out);
        assert_eq!(out.row(0), &[3.0, 4.0]);
        assert_eq!(out.row(1), &[1.0, 2.0]);
        assert_eq!(out.row(2), &[3.0, 4.0]);
    }
}
