//! Dense row-major `f32` matrices.
//!
//! [`Matrix`] is the storage type underneath every tensor in the PRIM
//! reproduction. It is deliberately simple: a shape plus a flat `Vec<f32>`.
//! All differentiable operations live in [`crate::graph`]; the methods here
//! are plain eager helpers used both by the autograd engine internally and by
//! non-differentiable code (data generation, metrics, classical baselines).

use crate::kernel;
use std::fmt;

/// Column-block width shared by the blocked matmul kernels: a `KB × NB` panel
/// of the right-hand matrix is 32 KiB of `f32`, sized to stay L1-resident
/// while it is streamed against many output rows.
const NB: usize = 128;

/// Reduction-depth of each cache block. Blocking `k` only changes *when* each
/// product is added, never the per-element order (blocks are visited in
/// ascending `k`), so blocked results are bitwise equal to the naive kernels.
const KB: usize = 64;

/// Register-tile height: output rows computed simultaneously by the
/// microkernels, each row a set of accumulators held in vector registers.
const MR: usize = 4;

/// Register-tile width for the row-major microkernels (`matmul`,
/// `matmul_tn`): `MR × NR` accumulators live in registers across a whole
/// `KB` reduction block, eliminating the per-`k` load/store of the output
/// that bounds the naive axpy loops.
const NR: usize = 32;

/// Register-tile width for `matmul_nt`: `MR × NTR` *independent* scalar
/// dot-product chains run in flight at once, hiding fma latency that a
/// single sequential chain cannot.
const NTR: usize = 4;

/// Minimum multiply-adds per row chunk before a matmul fans out to another
/// thread; below this the spawn costs more than the arithmetic.
const PAR_GRAIN_FLOPS: usize = 1 << 16;

/// The single multiply-accumulate step shared by every matmul kernel in this
/// module, naive references included: `a * b + acc`.
///
/// When the build target has hardware fused multiply-add (`target-cpu`
/// including `fma`, see `.cargo/config.toml`), this compiles to one fused
/// instruction; otherwise to a separate multiply and add. The branch is
/// resolved at compile time, so within any one build every kernel performs
/// the identical rounding sequence per output element — which is what makes
/// the blocked/parallel kernels bitwise comparable to the references.
#[inline(always)]
fn fmadd(a: f32, b: f32, acc: f32) -> f32 {
    if cfg!(target_feature = "fma") {
        a.mul_add(b, acc)
    } else {
        acc + a * b
    }
}

/// A dense, row-major matrix of `f32` values.
///
/// Rows × columns are fixed at construction. Vectors are represented as
/// `n × 1` (column vector) or `1 × n` (row vector) matrices.
#[derive(Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl fmt::Debug for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Matrix {}x{} [", self.rows, self.cols)?;
        let max_rows = 8.min(self.rows);
        for r in 0..max_rows {
            let max_cols = 8.min(self.cols);
            let row: Vec<String> = (0..max_cols)
                .map(|c| format!("{:.4}", self[(r, c)]))
                .collect();
            let ellipsis = if self.cols > max_cols { ", ..." } else { "" };
            writeln!(f, "  [{}{}]", row.join(", "), ellipsis)?;
        }
        if self.rows > max_rows {
            writeln!(f, "  ...")?;
        }
        write!(f, "]")
    }
}

impl Matrix {
    /// Creates a matrix of the given shape filled with zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates a matrix of the given shape filled with `value`.
    pub fn full(rows: usize, cols: usize, value: f32) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![value; rows * cols],
        }
    }

    /// Creates a matrix of the given shape filled with ones.
    pub fn ones(rows: usize, cols: usize) -> Self {
        Self::full(rows, cols, 1.0)
    }

    /// Builds a matrix from a closure over `(row, col)` indices.
    ///
    /// The buffer is allocated at its final size up front and filled by
    /// index; `f` is still called in row-major order, so closures that
    /// advance an RNG observe the same call sequence as a push-based build.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f32) -> Self {
        let mut data = vec![0.0f32; rows * cols];
        let mut idx = 0;
        for r in 0..rows {
            for c in 0..cols {
                data[idx] = f(r, c);
                idx += 1;
            }
        }
        Matrix { rows, cols, data }
    }

    /// Wraps an existing row-major buffer.
    ///
    /// # Panics
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Self {
        assert_eq!(
            data.len(),
            rows * cols,
            "Matrix::from_vec: buffer length {} does not match shape {}x{}",
            data.len(),
            rows,
            cols
        );
        Matrix { rows, cols, data }
    }

    /// Builds an `n × 1` column vector from a slice.
    pub fn column(values: &[f32]) -> Self {
        Matrix::from_vec(values.len(), 1, values.to_vec())
    }

    /// Builds a `1 × n` row vector from a slice.
    pub fn row_vector(values: &[f32]) -> Self {
        Matrix::from_vec(1, values.len(), values.to_vec())
    }

    /// Builds the `n × n` identity matrix.
    pub fn identity(n: usize) -> Self {
        Matrix::from_fn(n, n, |r, c| if r == c { 1.0 } else { 0.0 })
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)` pair.
    #[inline]
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Total number of elements.
    #[inline]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True if the matrix has no elements.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Raw row-major data.
    #[inline]
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Mutable raw row-major data.
    #[inline]
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the matrix, returning its buffer.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Borrow row `r` as a slice.
    #[inline]
    pub fn row(&self, r: usize) -> &[f32] {
        debug_assert!(r < self.rows);
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutably borrow row `r` as a slice.
    #[inline]
    pub fn row_mut(&mut self, r: usize) -> &mut [f32] {
        debug_assert!(r < self.rows);
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// The value of a `1 × 1` matrix.
    ///
    /// # Panics
    /// Panics if the matrix is not `1 × 1`.
    pub fn scalar(&self) -> f32 {
        assert_eq!(self.shape(), (1, 1), "Matrix::scalar on non-scalar matrix");
        self.data[0]
    }

    /// Matrix product `self × other`.
    ///
    /// Cache-blocked (`KB × NB` panels of `other` stay L1-resident across
    /// output rows) and parallelised over output-row chunks for large
    /// products. For every output element the `k`-reduction runs in ascending
    /// order into a single accumulator, so the result is bitwise identical to
    /// [`Matrix::matmul_naive`] for any block shape or thread count.
    ///
    /// # Panics
    /// Panics on inner-dimension mismatch.
    pub fn matmul(&self, other: &Matrix) -> Matrix {
        let mut out = Matrix::zeros(self.rows, other.cols);
        self.matmul_main(other, &mut out);
        out
    }

    /// [`Matrix::matmul`] writing into a caller-provided output (any prior
    /// contents are overwritten) — the allocation-free variant used by the
    /// tape's buffer pool.
    ///
    /// # Panics
    /// Panics on inner-dimension mismatch or if `out` is not `m × n`.
    pub fn matmul_into(&self, other: &Matrix, out: &mut Matrix) {
        assert_eq!(
            out.shape(),
            (self.rows, other.cols),
            "matmul_into output shape mismatch"
        );
        out.fill_zero();
        self.matmul_main(other, out);
    }

    /// Dispatches the blocked parallel matmul into `out`, which must already
    /// be zeroed (the kernels accumulate).
    fn matmul_main(&self, other: &Matrix, out: &mut Matrix) {
        assert_eq!(
            self.cols, other.rows,
            "matmul shape mismatch: {}x{} × {}x{}",
            self.rows, self.cols, other.rows, other.cols
        );
        let (m, k, n) = (self.rows, self.cols, other.cols);
        if m == 0 || n == 0 || k == 0 {
            return;
        }
        let grain = (PAR_GRAIN_FLOPS / (k * n)).max(1);
        let (a, b) = (&self.data, &other.data);
        kernel::par_row_chunks(&mut out.data, n, grain, |r0, chunk| {
            Self::matmul_block(a, b, chunk, r0, k, n);
        });
    }

    /// Blocked kernel for a contiguous band of `matmul` output rows starting
    /// at global row `r0`. Loop order `jb → kb → i-tile → j-tile`: the
    /// `KB × NB` panel of `b` loaded by the two outer blocks stays
    /// L1-resident while every `MR × NR` register tile of the band sweeps
    /// it. Edge rows/columns fall back to the axpy loop, which visits `k` in
    /// the same ascending order, so tiling never changes any element's
    /// accumulation sequence.
    fn matmul_block(a: &[f32], b: &[f32], out: &mut [f32], r0: usize, k: usize, n: usize) {
        let rows = out.len() / n;
        let mut jb = 0;
        while jb < n {
            let jend = (jb + NB).min(n);
            let mut kb = 0;
            while kb < k {
                let kend = (kb + KB).min(k);
                let mut i = 0;
                while i + MR <= rows {
                    let mut j = jb;
                    while j + NR <= jend {
                        Self::mk_tile(out, i, j, n, kb, kend, |r, kk| a[(r0 + i + r) * k + kk], b);
                        j += NR;
                    }
                    for r in 0..MR {
                        Self::axpy_edge(
                            out,
                            i + r,
                            j,
                            jend,
                            n,
                            kb,
                            kend,
                            |kk| a[(r0 + i + r) * k + kk],
                            b,
                        );
                    }
                    i += MR;
                }
                for ii in i..rows {
                    Self::axpy_edge(
                        out,
                        ii,
                        jb,
                        jend,
                        n,
                        kb,
                        kend,
                        |kk| a[(r0 + ii) * k + kk],
                        b,
                    );
                }
                kb = kend;
            }
            jb = jend;
        }
    }

    /// `MR × NR` register microkernel: loads the output tile into
    /// accumulator registers, runs the `kb..kend` slice of the reduction
    /// (ascending `k`, one [`fmadd`] per element per step — the exact
    /// sequence the naive loops perform through memory), and stores the tile
    /// back once.
    #[inline(always)]
    #[allow(clippy::too_many_arguments)] // innermost kernel: all scalars, no struct worth making
    fn mk_tile(
        out: &mut [f32],
        i: usize,
        j: usize,
        n: usize,
        kb: usize,
        kend: usize,
        av: impl Fn(usize, usize) -> f32,
        b: &[f32],
    ) {
        let mut acc = [[0.0f32; NR]; MR];
        for (r, acc_row) in acc.iter_mut().enumerate() {
            acc_row.copy_from_slice(&out[(i + r) * n + j..(i + r) * n + j + NR]);
        }
        for kk in kb..kend {
            let bv: &[f32; NR] = b[kk * n + j..kk * n + j + NR].try_into().unwrap();
            for (r, acc_row) in acc.iter_mut().enumerate() {
                let a_val = av(r, kk);
                for (o, &b_val) in acc_row.iter_mut().zip(bv) {
                    *o = fmadd(a_val, b_val, *o);
                }
            }
        }
        for (r, acc_row) in acc.iter().enumerate() {
            out[(i + r) * n + j..(i + r) * n + j + NR].copy_from_slice(acc_row);
        }
    }

    /// Axpy fallback for tile-edge regions (`< NR` columns or `< MR` rows):
    /// same ascending-`k` [`fmadd`] sequence as the microkernel, accumulated
    /// through memory.
    #[inline(always)]
    #[allow(clippy::too_many_arguments)] // innermost kernel: all scalars, no struct worth making
    fn axpy_edge(
        out: &mut [f32],
        i: usize,
        j0: usize,
        j1: usize,
        n: usize,
        kb: usize,
        kend: usize,
        av: impl Fn(usize) -> f32,
        b: &[f32],
    ) {
        if j0 >= j1 {
            return;
        }
        let out_row = &mut out[i * n + j0..i * n + j1];
        for kk in kb..kend {
            let a_val = av(kk);
            let b_row = &b[kk * n + j0..kk * n + j1];
            for (o, &bv) in out_row.iter_mut().zip(b_row) {
                *o = fmadd(a_val, bv, *o);
            }
        }
    }

    /// Reference `self × other`: the straightforward i-k-j triple loop.
    ///
    /// Retained as the ground truth the blocked/parallel [`Matrix::matmul`]
    /// is property-tested (bitwise) against, and as the baseline the kernel
    /// microbenchmark measures speedups from. Uses the shared [`fmadd`]
    /// step so reference and blocked kernels round identically per element.
    pub fn matmul_naive(&self, other: &Matrix) -> Matrix {
        assert_eq!(
            self.cols, other.rows,
            "matmul shape mismatch: {}x{} × {}x{}",
            self.rows, self.cols, other.rows, other.cols
        );
        let mut out = Matrix::zeros(self.rows, other.cols);
        let n = other.cols;
        for i in 0..self.rows {
            let a_row = self.row(i);
            let out_row = &mut out.data[i * n..(i + 1) * n];
            for (k, &a) in a_row.iter().enumerate() {
                let b_row = &other.data[k * n..(k + 1) * n];
                for (o, &b) in out_row.iter_mut().zip(b_row.iter()) {
                    *o = fmadd(a, b, *o);
                }
            }
        }
        out
    }

    /// `selfᵀ × other` without materialising the transpose.
    ///
    /// Cache-blocked and parallelised over output-row chunks (columns of
    /// `self`); bitwise identical to [`Matrix::matmul_tn_naive`] — the
    /// `k`-reduction per element always runs ascending in one accumulator.
    pub fn matmul_tn(&self, other: &Matrix) -> Matrix {
        let mut out = Matrix::zeros(self.cols, other.cols);
        self.matmul_tn_main(other, &mut out);
        out
    }

    /// [`Matrix::matmul_tn`] writing into a caller-provided output (any prior
    /// contents are overwritten).
    ///
    /// # Panics
    /// Panics on shape mismatch or if `out` is not `selfᵀ.rows × n`.
    pub fn matmul_tn_into(&self, other: &Matrix, out: &mut Matrix) {
        assert_eq!(
            out.shape(),
            (self.cols, other.cols),
            "matmul_tn_into output shape mismatch"
        );
        out.fill_zero();
        self.matmul_tn_main(other, out);
    }

    /// Dispatches the blocked parallel `selfᵀ × other` into `out`, which must
    /// already be zeroed (the kernels accumulate).
    fn matmul_tn_main(&self, other: &Matrix, out: &mut Matrix) {
        assert_eq!(
            self.rows, other.rows,
            "matmul_tn shape mismatch: {}x{} ᵀ× {}x{}",
            self.rows, self.cols, other.rows, other.cols
        );
        let (kdim, m2, n) = (self.rows, self.cols, other.cols);
        if m2 == 0 || n == 0 || kdim == 0 {
            return;
        }
        let grain = (PAR_GRAIN_FLOPS / (kdim * n)).max(1);
        let (a, b) = (&self.data, &other.data);
        kernel::par_row_chunks(&mut out.data, n, grain, |r0, chunk| {
            Self::matmul_tn_block(a, b, chunk, r0, m2, kdim, n);
        });
    }

    /// Blocked kernel for a band of `matmul_tn` output rows (`selfᵀ` rows,
    /// i.e. columns of `self`) starting at global row `r0`. Same
    /// `jb → kb → i-tile → j-tile` structure as [`Matrix::matmul_block`];
    /// only the `a` access differs — for one `kk`, the `MR` tile values
    /// `a[kk][r0+i..r0+i+MR]` sit contiguously in the `kk`-th row of `a`.
    fn matmul_tn_block(
        a: &[f32],
        b: &[f32],
        out: &mut [f32],
        r0: usize,
        m2: usize,
        kdim: usize,
        n: usize,
    ) {
        let rows = out.len() / n;
        let mut jb = 0;
        while jb < n {
            let jend = (jb + NB).min(n);
            let mut kb = 0;
            while kb < kdim {
                let kend = (kb + KB).min(kdim);
                let mut i = 0;
                while i + MR <= rows {
                    let mut j = jb;
                    while j + NR <= jend {
                        Self::mk_tile(out, i, j, n, kb, kend, |r, kk| a[kk * m2 + r0 + i + r], b);
                        j += NR;
                    }
                    for r in 0..MR {
                        Self::axpy_edge(
                            out,
                            i + r,
                            j,
                            jend,
                            n,
                            kb,
                            kend,
                            |kk| a[kk * m2 + r0 + i + r],
                            b,
                        );
                    }
                    i += MR;
                }
                for ii in i..rows {
                    Self::axpy_edge(out, ii, jb, jend, n, kb, kend, |kk| a[kk * m2 + r0 + ii], b);
                }
                kb = kend;
            }
            jb = jend;
        }
    }

    /// Reference `selfᵀ × other`: the k-outer loop the crate started with
    /// (inner step shared with the blocked kernel via [`fmadd`]).
    /// Ground truth for [`Matrix::matmul_tn`] parity tests and benchmarks.
    pub fn matmul_tn_naive(&self, other: &Matrix) -> Matrix {
        assert_eq!(
            self.rows, other.rows,
            "matmul_tn shape mismatch: {}x{} ᵀ× {}x{}",
            self.rows, self.cols, other.rows, other.cols
        );
        let mut out = Matrix::zeros(self.cols, other.cols);
        let n = other.cols;
        for k in 0..self.rows {
            let a_row = self.row(k);
            let b_row = other.row(k);
            for (i, &a) in a_row.iter().enumerate() {
                let out_row = &mut out.data[i * n..(i + 1) * n];
                for (o, &b) in out_row.iter_mut().zip(b_row.iter()) {
                    *o = fmadd(a, b, *o);
                }
            }
        }
        out
    }

    /// `self × otherᵀ` without materialising the transpose.
    ///
    /// Parallelised over output-row chunks; within a chunk, `MR × NTR`
    /// register tiles run that many *independent* dot-product chains in
    /// flight at once, hiding the fma latency that serialises a lone chain.
    /// Each element is still one full-`k` dot product accumulated in
    /// ascending order (the reduction is never split or reassociated), so
    /// results are bitwise identical to [`Matrix::matmul_nt_naive`].
    pub fn matmul_nt(&self, other: &Matrix) -> Matrix {
        let mut out = Matrix::zeros(self.rows, other.rows);
        self.matmul_nt_main(other, &mut out);
        out
    }

    /// [`Matrix::matmul_nt`] writing into a caller-provided output (any prior
    /// contents are overwritten).
    ///
    /// # Panics
    /// Panics on shape mismatch or if `out` is not `m × other.rows`.
    pub fn matmul_nt_into(&self, other: &Matrix, out: &mut Matrix) {
        assert_eq!(
            out.shape(),
            (self.rows, other.rows),
            "matmul_nt_into output shape mismatch"
        );
        out.fill_zero();
        self.matmul_nt_main(other, out);
    }

    /// Dispatches the tiled parallel `self × otherᵀ` into `out`, which must
    /// already be zeroed (every element is overwritten unless a dimension is
    /// zero, in which case the zeroed output is the correct product).
    fn matmul_nt_main(&self, other: &Matrix, out: &mut Matrix) {
        assert_eq!(
            self.cols, other.cols,
            "matmul_nt shape mismatch: {}x{} × {}x{} ᵀ",
            self.rows, self.cols, other.rows, other.cols
        );
        let (m, k, p) = (self.rows, self.cols, other.rows);
        if m == 0 || p == 0 || k == 0 {
            return;
        }
        let grain = (PAR_GRAIN_FLOPS / (k * p)).max(1);
        let (a, b) = (&self.data, &other.data);
        kernel::par_row_chunks(&mut out.data, p, grain, |r0, chunk| {
            Self::matmul_nt_block(a, b, chunk, r0, k, p);
        });
    }

    /// Kernel for a band of `matmul_nt` output rows starting at global row
    /// `r0`. Full `MR × NTR` tiles accumulate their dot products in a block
    /// of registers (one independent ascending-`k` chain per element); edge
    /// rows and columns fall back to the plain zip dot, which is the exact
    /// same chain.
    fn matmul_nt_block(a: &[f32], b: &[f32], out: &mut [f32], r0: usize, k: usize, p: usize) {
        let rows = out.len() / p;
        let mut i = 0;
        while i + MR <= rows {
            let mut j = 0;
            while j + NTR <= p {
                let mut acc = [[0.0f32; NTR]; MR];
                for kk in 0..k {
                    let mut bv = [0.0f32; NTR];
                    for (c, b_val) in bv.iter_mut().enumerate() {
                        *b_val = b[(j + c) * k + kk];
                    }
                    for (r, acc_row) in acc.iter_mut().enumerate() {
                        let a_val = a[(r0 + i + r) * k + kk];
                        for (o, &b_val) in acc_row.iter_mut().zip(&bv) {
                            *o = fmadd(a_val, b_val, *o);
                        }
                    }
                }
                for (r, acc_row) in acc.iter().enumerate() {
                    out[(i + r) * p + j..(i + r) * p + j + NTR].copy_from_slice(acc_row);
                }
                j += NTR;
            }
            for r in 0..MR {
                Self::dot_edge(a, b, out, r0, i + r, j, p, k);
            }
            i += MR;
        }
        for ii in i..rows {
            Self::dot_edge(a, b, out, r0, ii, 0, p, k);
        }
    }

    /// Plain zip-dot fallback for `matmul_nt` edge regions: columns
    /// `j0..p` of output row `i`.
    #[inline(always)]
    #[allow(clippy::too_many_arguments)] // innermost kernel: all scalars, no struct worth making
    fn dot_edge(
        a: &[f32],
        b: &[f32],
        out: &mut [f32],
        r0: usize,
        i: usize,
        j0: usize,
        p: usize,
        k: usize,
    ) {
        let a_row = &a[(r0 + i) * k..(r0 + i + 1) * k];
        let out_row = &mut out[i * p + j0..i * p + p];
        for (o, j) in out_row.iter_mut().zip(j0..p) {
            let b_row = &b[j * k..(j + 1) * k];
            let mut acc = 0.0f32;
            for (&av, &bv) in a_row.iter().zip(b_row) {
                acc = fmadd(av, bv, acc);
            }
            *o = acc;
        }
    }

    /// Reference `self × otherᵀ`: row-against-row zip dot products (inner
    /// step shared with the tiled kernel via [`fmadd`]).
    /// Ground truth for [`Matrix::matmul_nt`] parity tests and benchmarks.
    pub fn matmul_nt_naive(&self, other: &Matrix) -> Matrix {
        assert_eq!(
            self.cols, other.cols,
            "matmul_nt shape mismatch: {}x{} × {}x{} ᵀ",
            self.rows, self.cols, other.rows, other.cols
        );
        let mut out = Matrix::zeros(self.rows, other.rows);
        for i in 0..self.rows {
            let a_row = self.row(i);
            for j in 0..other.rows {
                let b_row = other.row(j);
                let mut acc = 0.0f32;
                for (&a, &b) in a_row.iter().zip(b_row.iter()) {
                    acc = fmadd(a, b, acc);
                }
                out[(i, j)] = acc;
            }
        }
        out
    }

    /// Returns the transpose.
    pub fn transpose(&self) -> Matrix {
        let mut out = Matrix::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                out[(c, r)] = self[(r, c)];
            }
        }
        out
    }

    /// Element-wise in-place addition.
    ///
    /// # Panics
    /// Panics on shape mismatch.
    pub fn add_assign(&mut self, other: &Matrix) {
        assert_eq!(self.shape(), other.shape(), "add_assign shape mismatch");
        kernel::par_zip_apply(&mut self.data, &other.data, |a, b| *a += b);
    }

    /// Element-wise `self + other`.
    pub fn add(&self, other: &Matrix) -> Matrix {
        let mut out = self.clone();
        out.add_assign(other);
        out
    }

    /// Element-wise `self - other`.
    pub fn sub(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.shape(), other.shape(), "sub shape mismatch");
        let mut out = self.clone();
        kernel::par_zip_apply(&mut out.data, &other.data, |a, b| *a -= b);
        out
    }

    /// Element-wise (Hadamard) product.
    pub fn hadamard(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.shape(), other.shape(), "hadamard shape mismatch");
        let mut out = self.clone();
        kernel::par_zip_apply(&mut out.data, &other.data, |a, b| *a *= b);
        out
    }

    /// Multiplies every element by `k`.
    pub fn scale(&self, k: f32) -> Matrix {
        let mut out = self.clone();
        kernel::par_apply(&mut out.data, |a| *a *= k);
        out
    }

    /// In-place `self += k * other` (axpy).
    pub fn axpy(&mut self, k: f32, other: &Matrix) {
        assert_eq!(self.shape(), other.shape(), "axpy shape mismatch");
        kernel::par_zip_apply(&mut self.data, &other.data, |a, b| *a += k * b);
    }

    /// Applies `f` element-wise, returning a new matrix. `f` must be `Sync`:
    /// large matrices are mapped on several threads (one value per element
    /// regardless of chunking, so the result never depends on thread count).
    pub fn map(&self, f: impl Fn(f32) -> f32 + Sync) -> Matrix {
        let mut out = self.clone();
        kernel::par_apply(&mut out.data, |a| *a = f(*a));
        out
    }

    /// Sets every element to zero, keeping the allocation.
    pub fn fill_zero(&mut self) {
        self.data.iter_mut().for_each(|a| *a = 0.0);
    }

    /// Sets every element to `value`, keeping the allocation.
    pub fn fill(&mut self, value: f32) {
        self.data.iter_mut().for_each(|a| *a = value);
    }

    /// Sum of all elements.
    pub fn sum(&self) -> f32 {
        self.data.iter().sum()
    }

    /// Mean of all elements (0 for an empty matrix).
    pub fn mean(&self) -> f32 {
        if self.data.is_empty() {
            0.0
        } else {
            self.sum() / self.data.len() as f32
        }
    }

    /// Frobenius norm.
    pub fn frobenius_norm(&self) -> f32 {
        self.data.iter().map(|v| v * v).sum::<f32>().sqrt()
    }

    /// Largest absolute element (0 for an empty matrix).
    pub fn max_abs(&self) -> f32 {
        self.data.iter().fold(0.0f32, |m, v| m.max(v.abs()))
    }

    /// True if every element is finite.
    pub fn all_finite(&self) -> bool {
        self.data.iter().all(|v| v.is_finite())
    }

    /// Stacks `mats` vertically (all must share a column count).
    pub fn vstack(mats: &[&Matrix]) -> Matrix {
        assert!(!mats.is_empty(), "vstack of zero matrices");
        let cols = mats[0].cols;
        let rows: usize = mats.iter().map(|m| m.rows).sum();
        let mut data = Vec::with_capacity(rows * cols);
        for m in mats {
            assert_eq!(m.cols, cols, "vstack column mismatch");
            data.extend_from_slice(&m.data);
        }
        Matrix { rows, cols, data }
    }

    /// Concatenates `mats` horizontally (all must share a row count).
    pub fn hstack(mats: &[&Matrix]) -> Matrix {
        assert!(!mats.is_empty(), "hstack of zero matrices");
        let rows = mats[0].rows;
        let cols: usize = mats.iter().map(|m| m.cols).sum();
        let mut out = Matrix::zeros(rows, cols);
        for r in 0..rows {
            let mut offset = 0;
            for m in mats {
                assert_eq!(m.rows, rows, "hstack row mismatch");
                out.data[r * cols + offset..r * cols + offset + m.cols].copy_from_slice(m.row(r));
                offset += m.cols;
            }
        }
        out
    }

    /// Gathers the given rows into a new matrix (row `k` of the output is
    /// row `indices[k]` of `self`).
    ///
    /// # Panics
    /// Panics if any index is out of bounds.
    pub fn gather_rows(&self, indices: &[usize]) -> Matrix {
        let mut out = Matrix::zeros(indices.len(), self.cols);
        if self.cols == 0 {
            for &i in indices {
                assert!(
                    i < self.rows,
                    "gather_rows index {i} out of bounds ({} rows)",
                    self.rows
                );
            }
            return out;
        }
        let grain = (kernel::PAR_ELEM_CUTOFF / self.cols).max(1);
        kernel::par_row_chunks(&mut out.data, self.cols, grain, |r0, chunk| {
            for (k, row) in chunk.chunks_mut(self.cols).enumerate() {
                let i = indices[r0 + k];
                assert!(
                    i < self.rows,
                    "gather_rows index {i} out of bounds ({} rows)",
                    self.rows
                );
                row.copy_from_slice(self.row(i));
            }
        });
        out
    }

    /// Dot product between row `r` of `self` and row `r2` of `other`.
    pub fn row_dot(&self, r: usize, other: &Matrix, r2: usize) -> f32 {
        assert_eq!(self.cols, other.cols, "row_dot column mismatch");
        self.row(r)
            .iter()
            .zip(other.row(r2).iter())
            .map(|(&a, &b)| a * b)
            .sum()
    }

    /// L2 norm of row `r`.
    pub fn row_norm(&self, r: usize) -> f32 {
        self.row(r).iter().map(|v| v * v).sum::<f32>().sqrt()
    }
}

impl std::ops::Index<(usize, usize)> for Matrix {
    type Output = f32;
    #[inline]
    fn index(&self, (r, c): (usize, usize)) -> &f32 {
        debug_assert!(r < self.rows && c < self.cols);
        &self.data[r * self.cols + c]
    }
}

impl std::ops::IndexMut<(usize, usize)> for Matrix {
    #[inline]
    fn index_mut(&mut self, (r, c): (usize, usize)) -> &mut f32 {
        debug_assert!(r < self.rows && c < self.cols);
        &mut self.data[r * self.cols + c]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn approx(a: f32, b: f32) -> bool {
        (a - b).abs() < 1e-5
    }

    #[test]
    fn zeros_ones_full() {
        let z = Matrix::zeros(2, 3);
        assert_eq!(z.shape(), (2, 3));
        assert!(z.data().iter().all(|&v| v == 0.0));
        let o = Matrix::ones(3, 2);
        assert!(o.data().iter().all(|&v| v == 1.0));
        let f = Matrix::full(1, 4, 2.5);
        assert!(f.data().iter().all(|&v| v == 2.5));
    }

    #[test]
    fn from_fn_indexing() {
        let m = Matrix::from_fn(3, 4, |r, c| (r * 10 + c) as f32);
        assert_eq!(m[(2, 3)], 23.0);
        assert_eq!(m[(0, 0)], 0.0);
        assert_eq!(m.row(1), &[10.0, 11.0, 12.0, 13.0]);
    }

    #[test]
    #[should_panic(expected = "buffer length")]
    fn from_vec_bad_len_panics() {
        let _ = Matrix::from_vec(2, 2, vec![1.0; 3]);
    }

    #[test]
    fn matmul_known_values() {
        let a = Matrix::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let b = Matrix::from_vec(3, 2, vec![7.0, 8.0, 9.0, 10.0, 11.0, 12.0]);
        let c = a.matmul(&b);
        assert_eq!(c.shape(), (2, 2));
        assert!(approx(c[(0, 0)], 58.0));
        assert!(approx(c[(0, 1)], 64.0));
        assert!(approx(c[(1, 0)], 139.0));
        assert!(approx(c[(1, 1)], 154.0));
    }

    #[test]
    fn matmul_identity() {
        let a = Matrix::from_fn(4, 4, |r, c| (r * 4 + c) as f32);
        let i = Matrix::identity(4);
        assert_eq!(a.matmul(&i), a);
        assert_eq!(i.matmul(&a), a);
    }

    #[test]
    fn matmul_tn_matches_explicit_transpose() {
        let a = Matrix::from_fn(3, 2, |r, c| (r + c) as f32 + 0.5);
        let b = Matrix::from_fn(3, 4, |r, c| (r * c) as f32 - 1.0);
        let expected = a.transpose().matmul(&b);
        let got = a.matmul_tn(&b);
        for (x, y) in expected.data().iter().zip(got.data().iter()) {
            assert!(approx(*x, *y));
        }
    }

    #[test]
    fn matmul_nt_matches_explicit_transpose() {
        let a = Matrix::from_fn(3, 2, |r, c| (r * 2 + c) as f32);
        let b = Matrix::from_fn(5, 2, |r, c| (r + 2 * c) as f32);
        let expected = a.matmul(&b.transpose());
        let got = a.matmul_nt(&b);
        for (x, y) in expected.data().iter().zip(got.data().iter()) {
            assert!(approx(*x, *y));
        }
    }

    #[test]
    fn transpose_involution() {
        let a = Matrix::from_fn(3, 5, |r, c| (r * 5 + c) as f32);
        assert_eq!(a.transpose().transpose(), a);
    }

    #[test]
    fn elementwise_ops() {
        let a = Matrix::from_vec(1, 3, vec![1.0, 2.0, 3.0]);
        let b = Matrix::from_vec(1, 3, vec![4.0, 5.0, 6.0]);
        assert_eq!(a.add(&b).data(), &[5.0, 7.0, 9.0]);
        assert_eq!(b.sub(&a).data(), &[3.0, 3.0, 3.0]);
        assert_eq!(a.hadamard(&b).data(), &[4.0, 10.0, 18.0]);
        assert_eq!(a.scale(2.0).data(), &[2.0, 4.0, 6.0]);
        let mut c = a.clone();
        c.axpy(0.5, &b);
        assert_eq!(c.data(), &[3.0, 4.5, 6.0]);
    }

    #[test]
    fn reductions() {
        let a = Matrix::from_vec(2, 2, vec![1.0, -2.0, 3.0, -4.0]);
        assert!(approx(a.sum(), -2.0));
        assert!(approx(a.mean(), -0.5));
        assert!(approx(a.max_abs(), 4.0));
        assert!(approx(a.frobenius_norm(), (30.0f32).sqrt()));
    }

    #[test]
    fn stacking() {
        let a = Matrix::from_vec(1, 2, vec![1.0, 2.0]);
        let b = Matrix::from_vec(2, 2, vec![3.0, 4.0, 5.0, 6.0]);
        let v = Matrix::vstack(&[&a, &b]);
        assert_eq!(v.shape(), (3, 2));
        assert_eq!(v.row(2), &[5.0, 6.0]);

        let c = Matrix::from_vec(1, 3, vec![7.0, 8.0, 9.0]);
        let h = Matrix::hstack(&[&a, &c]);
        assert_eq!(h.shape(), (1, 5));
        assert_eq!(h.data(), &[1.0, 2.0, 7.0, 8.0, 9.0]);
    }

    #[test]
    fn gather_rows_basic() {
        let a = Matrix::from_fn(4, 2, |r, c| (r * 2 + c) as f32);
        let g = a.gather_rows(&[3, 0, 3]);
        assert_eq!(g.shape(), (3, 2));
        assert_eq!(g.row(0), &[6.0, 7.0]);
        assert_eq!(g.row(1), &[0.0, 1.0]);
        assert_eq!(g.row(2), &[6.0, 7.0]);
    }

    #[test]
    fn row_helpers() {
        let a = Matrix::from_vec(2, 3, vec![3.0, 4.0, 0.0, 1.0, 0.0, 0.0]);
        assert!(approx(a.row_norm(0), 5.0));
        assert!(approx(a.row_dot(0, &a, 1), 3.0));
    }

    #[test]
    fn all_finite_detects_nan() {
        let mut a = Matrix::ones(2, 2);
        assert!(a.all_finite());
        a[(0, 1)] = f32::NAN;
        assert!(!a.all_finite());
    }

    #[test]
    fn all_finite_detects_infinities() {
        let mut a = Matrix::zeros(1, 3);
        a[(0, 0)] = f32::INFINITY;
        assert!(!a.all_finite());
        a[(0, 0)] = f32::NEG_INFINITY;
        assert!(!a.all_finite());
        a[(0, 0)] = f32::MAX;
        assert!(a.all_finite(), "f32::MAX is finite");
    }

    #[test]
    fn all_finite_accepts_signed_zero_and_subnormals() {
        // -0.0 and subnormals are finite values; the finite guard built on
        // this predicate must not abort training over them.
        let a = Matrix::from_vec(1, 4, vec![-0.0, 0.0, f32::MIN_POSITIVE / 2.0, -1.0e-40]);
        assert!(a.all_finite());
    }

    #[test]
    fn all_finite_on_empty_matrix() {
        assert!(Matrix::zeros(0, 0).all_finite());
    }
}
