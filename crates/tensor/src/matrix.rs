//! Dense row-major `f32` matrices.
//!
//! [`Matrix`] is the storage type underneath every tensor in the PRIM
//! reproduction. It is deliberately simple: a shape plus a flat `Vec<f32>`.
//! All differentiable operations live in [`crate::graph`]; the methods here
//! are plain eager helpers used both by the autograd engine internally and by
//! non-differentiable code (data generation, metrics, classical baselines).

use std::fmt;

/// A dense, row-major matrix of `f32` values.
///
/// Rows × columns are fixed at construction. Vectors are represented as
/// `n × 1` (column vector) or `1 × n` (row vector) matrices.
#[derive(Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl fmt::Debug for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Matrix {}x{} [", self.rows, self.cols)?;
        let max_rows = 8.min(self.rows);
        for r in 0..max_rows {
            let max_cols = 8.min(self.cols);
            let row: Vec<String> = (0..max_cols)
                .map(|c| format!("{:.4}", self[(r, c)]))
                .collect();
            let ellipsis = if self.cols > max_cols { ", ..." } else { "" };
            writeln!(f, "  [{}{}]", row.join(", "), ellipsis)?;
        }
        if self.rows > max_rows {
            writeln!(f, "  ...")?;
        }
        write!(f, "]")
    }
}

impl Matrix {
    /// Creates a matrix of the given shape filled with zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix { rows, cols, data: vec![0.0; rows * cols] }
    }

    /// Creates a matrix of the given shape filled with `value`.
    pub fn full(rows: usize, cols: usize, value: f32) -> Self {
        Matrix { rows, cols, data: vec![value; rows * cols] }
    }

    /// Creates a matrix of the given shape filled with ones.
    pub fn ones(rows: usize, cols: usize) -> Self {
        Self::full(rows, cols, 1.0)
    }

    /// Builds a matrix from a closure over `(row, col)` indices.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f32) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for r in 0..rows {
            for c in 0..cols {
                data.push(f(r, c));
            }
        }
        Matrix { rows, cols, data }
    }

    /// Wraps an existing row-major buffer.
    ///
    /// # Panics
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Self {
        assert_eq!(
            data.len(),
            rows * cols,
            "Matrix::from_vec: buffer length {} does not match shape {}x{}",
            data.len(),
            rows,
            cols
        );
        Matrix { rows, cols, data }
    }

    /// Builds an `n × 1` column vector from a slice.
    pub fn column(values: &[f32]) -> Self {
        Matrix::from_vec(values.len(), 1, values.to_vec())
    }

    /// Builds a `1 × n` row vector from a slice.
    pub fn row_vector(values: &[f32]) -> Self {
        Matrix::from_vec(1, values.len(), values.to_vec())
    }

    /// Builds the `n × n` identity matrix.
    pub fn identity(n: usize) -> Self {
        Matrix::from_fn(n, n, |r, c| if r == c { 1.0 } else { 0.0 })
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)` pair.
    #[inline]
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Total number of elements.
    #[inline]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True if the matrix has no elements.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Raw row-major data.
    #[inline]
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Mutable raw row-major data.
    #[inline]
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the matrix, returning its buffer.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Borrow row `r` as a slice.
    #[inline]
    pub fn row(&self, r: usize) -> &[f32] {
        debug_assert!(r < self.rows);
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutably borrow row `r` as a slice.
    #[inline]
    pub fn row_mut(&mut self, r: usize) -> &mut [f32] {
        debug_assert!(r < self.rows);
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// The value of a `1 × 1` matrix.
    ///
    /// # Panics
    /// Panics if the matrix is not `1 × 1`.
    pub fn scalar(&self) -> f32 {
        assert_eq!(self.shape(), (1, 1), "Matrix::scalar on non-scalar matrix");
        self.data[0]
    }

    /// Matrix product `self × other`.
    ///
    /// Uses an i-k-j loop order so the inner loop streams rows of `other`,
    /// which the compiler auto-vectorises.
    ///
    /// # Panics
    /// Panics on inner-dimension mismatch.
    pub fn matmul(&self, other: &Matrix) -> Matrix {
        assert_eq!(
            self.cols, other.rows,
            "matmul shape mismatch: {}x{} × {}x{}",
            self.rows, self.cols, other.rows, other.cols
        );
        let mut out = Matrix::zeros(self.rows, other.cols);
        let n = other.cols;
        for i in 0..self.rows {
            let a_row = self.row(i);
            let out_row = &mut out.data[i * n..(i + 1) * n];
            for (k, &a) in a_row.iter().enumerate() {
                if a == 0.0 {
                    continue;
                }
                let b_row = &other.data[k * n..(k + 1) * n];
                for (o, &b) in out_row.iter_mut().zip(b_row.iter()) {
                    *o += a * b;
                }
            }
        }
        out
    }

    /// `selfᵀ × other` without materialising the transpose.
    pub fn matmul_tn(&self, other: &Matrix) -> Matrix {
        assert_eq!(
            self.rows, other.rows,
            "matmul_tn shape mismatch: {}x{} ᵀ× {}x{}",
            self.rows, self.cols, other.rows, other.cols
        );
        let mut out = Matrix::zeros(self.cols, other.cols);
        let n = other.cols;
        for k in 0..self.rows {
            let a_row = self.row(k);
            let b_row = other.row(k);
            for (i, &a) in a_row.iter().enumerate() {
                if a == 0.0 {
                    continue;
                }
                let out_row = &mut out.data[i * n..(i + 1) * n];
                for (o, &b) in out_row.iter_mut().zip(b_row.iter()) {
                    *o += a * b;
                }
            }
        }
        out
    }

    /// `self × otherᵀ` without materialising the transpose.
    pub fn matmul_nt(&self, other: &Matrix) -> Matrix {
        assert_eq!(
            self.cols, other.cols,
            "matmul_nt shape mismatch: {}x{} × {}x{} ᵀ",
            self.rows, self.cols, other.rows, other.cols
        );
        let mut out = Matrix::zeros(self.rows, other.rows);
        for i in 0..self.rows {
            let a_row = self.row(i);
            for j in 0..other.rows {
                let b_row = other.row(j);
                let mut acc = 0.0f32;
                for (&a, &b) in a_row.iter().zip(b_row.iter()) {
                    acc += a * b;
                }
                out[(i, j)] = acc;
            }
        }
        out
    }

    /// Returns the transpose.
    pub fn transpose(&self) -> Matrix {
        let mut out = Matrix::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                out[(c, r)] = self[(r, c)];
            }
        }
        out
    }

    /// Element-wise in-place addition.
    ///
    /// # Panics
    /// Panics on shape mismatch.
    pub fn add_assign(&mut self, other: &Matrix) {
        assert_eq!(self.shape(), other.shape(), "add_assign shape mismatch");
        for (a, &b) in self.data.iter_mut().zip(other.data.iter()) {
            *a += b;
        }
    }

    /// Element-wise `self + other`.
    pub fn add(&self, other: &Matrix) -> Matrix {
        let mut out = self.clone();
        out.add_assign(other);
        out
    }

    /// Element-wise `self - other`.
    pub fn sub(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.shape(), other.shape(), "sub shape mismatch");
        let mut out = self.clone();
        for (a, &b) in out.data.iter_mut().zip(other.data.iter()) {
            *a -= b;
        }
        out
    }

    /// Element-wise (Hadamard) product.
    pub fn hadamard(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.shape(), other.shape(), "hadamard shape mismatch");
        let mut out = self.clone();
        for (a, &b) in out.data.iter_mut().zip(other.data.iter()) {
            *a *= b;
        }
        out
    }

    /// Multiplies every element by `k`.
    pub fn scale(&self, k: f32) -> Matrix {
        let mut out = self.clone();
        for a in out.data.iter_mut() {
            *a *= k;
        }
        out
    }

    /// In-place `self += k * other` (axpy).
    pub fn axpy(&mut self, k: f32, other: &Matrix) {
        assert_eq!(self.shape(), other.shape(), "axpy shape mismatch");
        for (a, &b) in self.data.iter_mut().zip(other.data.iter()) {
            *a += k * b;
        }
    }

    /// Applies `f` element-wise, returning a new matrix.
    pub fn map(&self, f: impl Fn(f32) -> f32) -> Matrix {
        let mut out = self.clone();
        for a in out.data.iter_mut() {
            *a = f(*a);
        }
        out
    }

    /// Sets every element to zero, keeping the allocation.
    pub fn fill_zero(&mut self) {
        self.data.iter_mut().for_each(|a| *a = 0.0);
    }

    /// Sum of all elements.
    pub fn sum(&self) -> f32 {
        self.data.iter().sum()
    }

    /// Mean of all elements (0 for an empty matrix).
    pub fn mean(&self) -> f32 {
        if self.data.is_empty() {
            0.0
        } else {
            self.sum() / self.data.len() as f32
        }
    }

    /// Frobenius norm.
    pub fn frobenius_norm(&self) -> f32 {
        self.data.iter().map(|v| v * v).sum::<f32>().sqrt()
    }

    /// Largest absolute element (0 for an empty matrix).
    pub fn max_abs(&self) -> f32 {
        self.data.iter().fold(0.0f32, |m, v| m.max(v.abs()))
    }

    /// True if every element is finite.
    pub fn all_finite(&self) -> bool {
        self.data.iter().all(|v| v.is_finite())
    }

    /// Stacks `mats` vertically (all must share a column count).
    pub fn vstack(mats: &[&Matrix]) -> Matrix {
        assert!(!mats.is_empty(), "vstack of zero matrices");
        let cols = mats[0].cols;
        let rows: usize = mats.iter().map(|m| m.rows).sum();
        let mut data = Vec::with_capacity(rows * cols);
        for m in mats {
            assert_eq!(m.cols, cols, "vstack column mismatch");
            data.extend_from_slice(&m.data);
        }
        Matrix { rows, cols, data }
    }

    /// Concatenates `mats` horizontally (all must share a row count).
    pub fn hstack(mats: &[&Matrix]) -> Matrix {
        assert!(!mats.is_empty(), "hstack of zero matrices");
        let rows = mats[0].rows;
        let cols: usize = mats.iter().map(|m| m.cols).sum();
        let mut out = Matrix::zeros(rows, cols);
        for r in 0..rows {
            let mut offset = 0;
            for m in mats {
                assert_eq!(m.rows, rows, "hstack row mismatch");
                out.data[r * cols + offset..r * cols + offset + m.cols]
                    .copy_from_slice(m.row(r));
                offset += m.cols;
            }
        }
        out
    }

    /// Gathers the given rows into a new matrix (row `k` of the output is
    /// row `indices[k]` of `self`).
    ///
    /// # Panics
    /// Panics if any index is out of bounds.
    pub fn gather_rows(&self, indices: &[usize]) -> Matrix {
        let mut out = Matrix::zeros(indices.len(), self.cols);
        for (k, &i) in indices.iter().enumerate() {
            assert!(i < self.rows, "gather_rows index {i} out of bounds ({} rows)", self.rows);
            out.row_mut(k).copy_from_slice(self.row(i));
        }
        out
    }

    /// Dot product between row `r` of `self` and row `r2` of `other`.
    pub fn row_dot(&self, r: usize, other: &Matrix, r2: usize) -> f32 {
        assert_eq!(self.cols, other.cols, "row_dot column mismatch");
        self.row(r)
            .iter()
            .zip(other.row(r2).iter())
            .map(|(&a, &b)| a * b)
            .sum()
    }

    /// L2 norm of row `r`.
    pub fn row_norm(&self, r: usize) -> f32 {
        self.row(r).iter().map(|v| v * v).sum::<f32>().sqrt()
    }
}

impl std::ops::Index<(usize, usize)> for Matrix {
    type Output = f32;
    #[inline]
    fn index(&self, (r, c): (usize, usize)) -> &f32 {
        debug_assert!(r < self.rows && c < self.cols);
        &self.data[r * self.cols + c]
    }
}

impl std::ops::IndexMut<(usize, usize)> for Matrix {
    #[inline]
    fn index_mut(&mut self, (r, c): (usize, usize)) -> &mut f32 {
        debug_assert!(r < self.rows && c < self.cols);
        &mut self.data[r * self.cols + c]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn approx(a: f32, b: f32) -> bool {
        (a - b).abs() < 1e-5
    }

    #[test]
    fn zeros_ones_full() {
        let z = Matrix::zeros(2, 3);
        assert_eq!(z.shape(), (2, 3));
        assert!(z.data().iter().all(|&v| v == 0.0));
        let o = Matrix::ones(3, 2);
        assert!(o.data().iter().all(|&v| v == 1.0));
        let f = Matrix::full(1, 4, 2.5);
        assert!(f.data().iter().all(|&v| v == 2.5));
    }

    #[test]
    fn from_fn_indexing() {
        let m = Matrix::from_fn(3, 4, |r, c| (r * 10 + c) as f32);
        assert_eq!(m[(2, 3)], 23.0);
        assert_eq!(m[(0, 0)], 0.0);
        assert_eq!(m.row(1), &[10.0, 11.0, 12.0, 13.0]);
    }

    #[test]
    #[should_panic(expected = "buffer length")]
    fn from_vec_bad_len_panics() {
        let _ = Matrix::from_vec(2, 2, vec![1.0; 3]);
    }

    #[test]
    fn matmul_known_values() {
        let a = Matrix::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let b = Matrix::from_vec(3, 2, vec![7.0, 8.0, 9.0, 10.0, 11.0, 12.0]);
        let c = a.matmul(&b);
        assert_eq!(c.shape(), (2, 2));
        assert!(approx(c[(0, 0)], 58.0));
        assert!(approx(c[(0, 1)], 64.0));
        assert!(approx(c[(1, 0)], 139.0));
        assert!(approx(c[(1, 1)], 154.0));
    }

    #[test]
    fn matmul_identity() {
        let a = Matrix::from_fn(4, 4, |r, c| (r * 4 + c) as f32);
        let i = Matrix::identity(4);
        assert_eq!(a.matmul(&i), a);
        assert_eq!(i.matmul(&a), a);
    }

    #[test]
    fn matmul_tn_matches_explicit_transpose() {
        let a = Matrix::from_fn(3, 2, |r, c| (r + c) as f32 + 0.5);
        let b = Matrix::from_fn(3, 4, |r, c| (r * c) as f32 - 1.0);
        let expected = a.transpose().matmul(&b);
        let got = a.matmul_tn(&b);
        for (x, y) in expected.data().iter().zip(got.data().iter()) {
            assert!(approx(*x, *y));
        }
    }

    #[test]
    fn matmul_nt_matches_explicit_transpose() {
        let a = Matrix::from_fn(3, 2, |r, c| (r * 2 + c) as f32);
        let b = Matrix::from_fn(5, 2, |r, c| (r + 2 * c) as f32);
        let expected = a.matmul(&b.transpose());
        let got = a.matmul_nt(&b);
        for (x, y) in expected.data().iter().zip(got.data().iter()) {
            assert!(approx(*x, *y));
        }
    }

    #[test]
    fn transpose_involution() {
        let a = Matrix::from_fn(3, 5, |r, c| (r * 5 + c) as f32);
        assert_eq!(a.transpose().transpose(), a);
    }

    #[test]
    fn elementwise_ops() {
        let a = Matrix::from_vec(1, 3, vec![1.0, 2.0, 3.0]);
        let b = Matrix::from_vec(1, 3, vec![4.0, 5.0, 6.0]);
        assert_eq!(a.add(&b).data(), &[5.0, 7.0, 9.0]);
        assert_eq!(b.sub(&a).data(), &[3.0, 3.0, 3.0]);
        assert_eq!(a.hadamard(&b).data(), &[4.0, 10.0, 18.0]);
        assert_eq!(a.scale(2.0).data(), &[2.0, 4.0, 6.0]);
        let mut c = a.clone();
        c.axpy(0.5, &b);
        assert_eq!(c.data(), &[3.0, 4.5, 6.0]);
    }

    #[test]
    fn reductions() {
        let a = Matrix::from_vec(2, 2, vec![1.0, -2.0, 3.0, -4.0]);
        assert!(approx(a.sum(), -2.0));
        assert!(approx(a.mean(), -0.5));
        assert!(approx(a.max_abs(), 4.0));
        assert!(approx(a.frobenius_norm(), (30.0f32).sqrt()));
    }

    #[test]
    fn stacking() {
        let a = Matrix::from_vec(1, 2, vec![1.0, 2.0]);
        let b = Matrix::from_vec(2, 2, vec![3.0, 4.0, 5.0, 6.0]);
        let v = Matrix::vstack(&[&a, &b]);
        assert_eq!(v.shape(), (3, 2));
        assert_eq!(v.row(2), &[5.0, 6.0]);

        let c = Matrix::from_vec(1, 3, vec![7.0, 8.0, 9.0]);
        let h = Matrix::hstack(&[&a, &c]);
        assert_eq!(h.shape(), (1, 5));
        assert_eq!(h.data(), &[1.0, 2.0, 7.0, 8.0, 9.0]);
    }

    #[test]
    fn gather_rows_basic() {
        let a = Matrix::from_fn(4, 2, |r, c| (r * 2 + c) as f32);
        let g = a.gather_rows(&[3, 0, 3]);
        assert_eq!(g.shape(), (3, 2));
        assert_eq!(g.row(0), &[6.0, 7.0]);
        assert_eq!(g.row(1), &[0.0, 1.0]);
        assert_eq!(g.row(2), &[6.0, 7.0]);
    }

    #[test]
    fn row_helpers() {
        let a = Matrix::from_vec(2, 3, vec![3.0, 4.0, 0.0, 1.0, 0.0, 0.0]);
        assert!(approx(a.row_norm(0), 5.0));
        assert!(approx(a.row_dot(0, &a, 1), 3.0));
    }

    #[test]
    fn all_finite_detects_nan() {
        let mut a = Matrix::ones(2, 2);
        assert!(a.all_finite());
        a[(0, 1)] = f32::NAN;
        assert!(!a.all_finite());
    }
}
