//! # prim-tensor
//!
//! Dense `f32` matrices plus a tape-based reverse-mode autodiff engine,
//! built from scratch for the PRIM (VLDB 2021) reproduction. Rust has no
//! mature GNN/autodiff stack we could depend on, so this crate is the
//! numerical substrate for the whole workspace:
//!
//! * [`Matrix`] — row-major dense matrix with eager helper ops;
//! * [`Graph`] / [`Var`] — the autodiff tape, with GNN-specific primitives
//!   (`gather_rows`, `segment_sum`, `segment_softmax`, `rows_dot`,
//!   `scale_rows`, `normalize_rows`);
//! * [`SegmentPlan`] — CSR-style inverted segment maps that let the scatter
//!   reductions (`segment_sum`, `segment_softmax`, gather backward) run in
//!   parallel by output segment, bitwise identical to their serial
//!   references, and be shared across epochs behind an `Arc`;
//! * [`check`] — finite-difference gradient checking used by every model's
//!   test suite;
//! * [`kernel`] — the execution-policy layer: cache-blocked, row-parallel
//!   kernels whose results are bitwise identical for any thread count
//!   (see that module's docs for the determinism contract). Thread count
//!   comes from `PRIM_NUM_THREADS` / `RAYON_NUM_THREADS` / the machine;
//!   the `serial` cargo feature pins it to one thread at compile time.
//!
//! ## Example
//!
//! ```
//! use prim_tensor::{Graph, Matrix};
//!
//! let mut g = Graph::new();
//! let w = g.leaf(Matrix::from_vec(2, 1, vec![0.5, -0.25]));
//! let x = g.constant(Matrix::from_vec(3, 2, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]));
//! let logits = g.matmul(x, w);
//! let loss = g.bce_with_logits(logits, &[1.0, 0.0, 1.0]);
//! let grads = g.backward(loss);
//! assert_eq!(grads.get(w).unwrap().shape(), (2, 1));
//! ```

pub mod check;
pub mod graph;
pub mod kernel;
pub mod matrix;
pub mod pool;
pub mod segment;

pub use graph::{stable_sigmoid, Gradients, Graph, Var};
pub use matrix::Matrix;
pub use segment::SegmentPlan;
