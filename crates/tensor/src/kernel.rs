//! Execution policy for the compute kernels in this crate.
//!
//! Every hot loop in `prim-tensor` (and, through it, the model layer) funnels
//! through the helpers here, which decide *how* a kernel runs — on how many
//! threads, over which contiguous chunks — without ever changing *what* it
//! computes. The contract that makes that safe:
//!
//! **Work is only ever partitioned along axes that are mathematically
//! independent** (output rows, disjoint element ranges, independent items).
//! Reduction axes — the `k` dimension of a matmul, a segment sum — are never
//! split across threads, so every output element is produced by exactly one
//! thread accumulating in exactly the same order as the serial kernel. Results
//! are therefore **bitwise identical** for any thread count, which the
//! property and determinism tests assert.
//!
//! Thread count resolution, in priority order:
//!
//! 1. the `serial` cargo feature pins everything to one thread at compile
//!    time (zero threading overhead, easiest debugging);
//! 2. [`set_threads`] — a process-wide runtime override, used by the
//!    determinism tests to compare pool sizes in-process;
//! 3. `PRIM_NUM_THREADS`, then `RAYON_NUM_THREADS` (honoured for
//!    familiarity), from the environment;
//! 4. [`std::thread::available_parallelism`].
//!
//! Parallel regions execute on the persistent worker pool in
//! [`crate::pool`]: the helpers here compute a shape-dependent partition
//! (chunk boundaries never depend on the thread count), then hand the chunk
//! indices to [`pool::run`], which fans them out over long-lived parked
//! workers. The previous implementation spawned a fresh
//! `std::thread::scope` per call; those scoped kernels are retained
//! verbatim in [`scoped`] as the parity baseline for property tests and the
//! "fresh spawn" benchmark reference. Spawn-free or not, parallelism is
//! only worth it for large inputs, so every helper takes (or hard-codes) a
//! grain size below which it stays on the calling thread.

use crate::pool;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::OnceLock;

/// Elementwise ops on fewer elements than this run serially: below ~64 KiB of
/// data the memory traffic is cheaper than waking the pool.
pub const PAR_ELEM_CUTOFF: usize = 1 << 16;

/// Runtime thread-count override; 0 means "not set".
static THREAD_OVERRIDE: AtomicUsize = AtomicUsize::new(0);

/// Environment/hardware default, resolved once per process.
static DEFAULT_THREADS: OnceLock<usize> = OnceLock::new();

/// Overrides the kernel thread count for the whole process (`0` clears the
/// override). Takes effect on the next kernel call; used by tests to prove
/// results are identical across pool sizes without re-execing.
pub fn set_threads(n: usize) {
    THREAD_OVERRIDE.store(n, Ordering::SeqCst);
}

/// True when this build uses hardware fused multiply-add in the matmul
/// kernels (compiled with a `target-cpu`/`target-feature` including `fma`;
/// the workspace's `.cargo/config.toml` sets `target-cpu=native`). The
/// microbenchmarks gate their speedup assertions on this: without fma the
/// naive axpy loops already sit at the same ALU ceiling as the register-tiled
/// kernels, so blocking buys parity-preserving structure but little speed.
pub fn fused_multiply_add() -> bool {
    cfg!(target_feature = "fma")
}

/// The number of threads kernels may fan out to, resolved per the
/// module-level priority order. Always ≥ 1.
pub fn configured_threads() -> usize {
    if cfg!(feature = "serial") {
        return 1;
    }
    let o = THREAD_OVERRIDE.load(Ordering::SeqCst);
    if o != 0 {
        return o;
    }
    *DEFAULT_THREADS.get_or_init(|| {
        for var in ["PRIM_NUM_THREADS", "RAYON_NUM_THREADS"] {
            if let Some(n) = std::env::var(var)
                .ok()
                .and_then(|v| v.parse::<usize>().ok())
            {
                if n >= 1 {
                    return n;
                }
            }
        }
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    })
}

use crate::pool::SendPtr;

/// First item index of chunk `c` when `n` items split into `chunks` parts
/// (the first `n % chunks` parts take one extra item).
#[inline]
fn chunk_start(n: usize, chunks: usize, c: usize) -> usize {
    let base = n / chunks;
    let rem = n % chunks;
    c * base + c.min(rem)
}

/// Runs `f(first_row, rows_chunk)` over contiguous row-chunks of `out`
/// (row-major, `cols` wide), in parallel when there are at least
/// `grain_rows` rows per thread. Chunks partition the rows exactly, so each
/// output row is written by one invocation; `f` must not depend on the chunk
/// boundaries for this to stay deterministic (and none of our kernels do —
/// they treat each row independently).
pub fn par_row_chunks<F>(out: &mut [f32], cols: usize, grain_rows: usize, f: F)
where
    F: Fn(usize, &mut [f32]) + Sync,
{
    let rows = out.len().checked_div(cols).unwrap_or(0);
    let chunks = configured_threads().min((rows / grain_rows.max(1)).max(1));
    if chunks <= 1 {
        f(0, out);
        return;
    }
    let ptr = SendPtr::new(out.as_mut_ptr());
    pool::run(chunks, |c| {
        let r0 = chunk_start(rows, chunks, c);
        let r1 = chunk_start(rows, chunks, c + 1);
        // Safety: rows [r0, r1) are disjoint across job indices and the
        // partition depends only on (rows, chunks); see `SendPtr`.
        let chunk =
            unsafe { std::slice::from_raw_parts_mut(ptr.get().add(r0 * cols), (r1 - r0) * cols) };
        f(r0, chunk);
    });
}

/// Applies `f` to every element of `data`, fanning out over contiguous
/// ranges when the slice is at least [`PAR_ELEM_CUTOFF`] long.
pub fn par_apply<F>(data: &mut [f32], f: F)
where
    F: Fn(&mut f32) + Sync,
{
    let threads = configured_threads();
    if threads <= 1 || data.len() < PAR_ELEM_CUTOFF {
        data.iter_mut().for_each(f);
        return;
    }
    let n = data.len();
    let ptr = SendPtr::new(data.as_mut_ptr());
    pool::run(threads, |c| {
        let s = chunk_start(n, threads, c);
        let e = chunk_start(n, threads, c + 1);
        // Safety: disjoint element ranges per job index; see `SendPtr`.
        let piece = unsafe { std::slice::from_raw_parts_mut(ptr.get().add(s), e - s) };
        piece.iter_mut().for_each(&f);
    });
}

/// Applies `f(dst_elem, src_elem)` pairwise, fanning out over aligned
/// contiguous ranges when the slices are at least [`PAR_ELEM_CUTOFF`] long.
///
/// # Panics
/// Panics if the slices differ in length.
pub fn par_zip_apply<F>(dst: &mut [f32], src: &[f32], f: F)
where
    F: Fn(&mut f32, f32) + Sync,
{
    assert_eq!(dst.len(), src.len(), "par_zip_apply length mismatch");
    let threads = configured_threads();
    if threads <= 1 || dst.len() < PAR_ELEM_CUTOFF {
        dst.iter_mut().zip(src).for_each(|(a, &b)| f(a, b));
        return;
    }
    let n = dst.len();
    let ptr = SendPtr::new(dst.as_mut_ptr());
    pool::run(threads, |c| {
        let s = chunk_start(n, threads, c);
        let e = chunk_start(n, threads, c + 1);
        // Safety: disjoint element ranges per job index; see `SendPtr`.
        let d = unsafe { std::slice::from_raw_parts_mut(ptr.get().add(s), e - s) };
        d.iter_mut().zip(&src[s..e]).for_each(|(a, &b)| f(a, b));
    });
}

/// Three-slice variant of [`par_zip_apply`]: `f(dst_elem, a_elem, b_elem)`.
///
/// # Panics
/// Panics if the slices differ in length.
pub fn par_zip2_apply<F>(dst: &mut [f32], a: &[f32], b: &[f32], f: F)
where
    F: Fn(&mut f32, f32, f32) + Sync,
{
    assert_eq!(dst.len(), a.len(), "par_zip2_apply length mismatch");
    assert_eq!(dst.len(), b.len(), "par_zip2_apply length mismatch");
    let threads = configured_threads();
    if threads <= 1 || dst.len() < PAR_ELEM_CUTOFF {
        for (d, (&x, &y)) in dst.iter_mut().zip(a.iter().zip(b)) {
            f(d, x, y);
        }
        return;
    }
    let n = dst.len();
    let ptr = SendPtr::new(dst.as_mut_ptr());
    pool::run(threads, |c| {
        let s = chunk_start(n, threads, c);
        let e = chunk_start(n, threads, c + 1);
        // Safety: disjoint element ranges per job index; see `SendPtr`.
        let d = unsafe { std::slice::from_raw_parts_mut(ptr.get().add(s), e - s) };
        for (dv, (&x, &y)) in d.iter_mut().zip(a[s..e].iter().zip(&b[s..e])) {
            f(dv, x, y);
        }
    });
}

/// Maps `f(index, item)` over `items`, splitting into per-thread chunks of at
/// least `grain` items and concatenating the per-chunk results in order —
/// the output is identical to a serial `items.iter().enumerate().map(..)`.
pub fn par_map_chunks<T, U, F>(items: &[T], grain: usize, f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(usize, &T) -> U + Sync,
{
    let n = items.len();
    let chunks = configured_threads().min((n / grain.max(1)).max(1));
    if chunks <= 1 {
        return items.iter().enumerate().map(|(i, t)| f(i, t)).collect();
    }
    let mut results: Vec<Vec<U>> = (0..chunks).map(|_| Vec::new()).collect();
    let ptr = SendPtr::new(results.as_mut_ptr());
    pool::run(chunks, |c| {
        let s = chunk_start(n, chunks, c);
        let e = chunk_start(n, chunks, c + 1);
        let out: Vec<U> = items[s..e]
            .iter()
            .enumerate()
            .map(|(i, t)| f(s + i, t))
            .collect();
        // Safety: slot `c` is written by exactly this job index (the
        // pre-sized placeholder Vec it replaces is empty); see `SendPtr`.
        unsafe { *ptr.get().add(c) = out };
    });
    results.into_iter().flatten().collect()
}

/// The original per-call `std::thread::scope` kernels, retained verbatim as
/// the parity baseline: property tests assert the pooled helpers above are
/// bitwise identical to these, and the microbenchmarks use them as the
/// "fresh spawn" reference the pool is measured against.
#[doc(hidden)]
pub mod scoped {
    use super::{configured_threads, PAR_ELEM_CUTOFF};

    /// Scoped-spawn reference for [`super::par_row_chunks`].
    pub fn par_row_chunks<F>(out: &mut [f32], cols: usize, grain_rows: usize, f: F)
    where
        F: Fn(usize, &mut [f32]) + Sync,
    {
        let rows = out.len().checked_div(cols).unwrap_or(0);
        let chunks = configured_threads().min((rows / grain_rows.max(1)).max(1));
        if chunks <= 1 {
            f(0, out);
            return;
        }
        let base = rows / chunks;
        let rem = rows % chunks;
        std::thread::scope(|s| {
            let f = &f;
            let mut rest = out;
            let mut row0 = 0usize;
            for c in 0..chunks {
                let take_rows = base + usize::from(c < rem);
                let (head, tail) = std::mem::take(&mut rest).split_at_mut(take_rows * cols);
                rest = tail;
                let r0 = row0;
                row0 += take_rows;
                s.spawn(move || f(r0, head));
            }
        });
    }

    /// Scoped-spawn reference for [`super::par_apply`].
    pub fn par_apply<F>(data: &mut [f32], f: F)
    where
        F: Fn(&mut f32) + Sync,
    {
        let threads = configured_threads();
        if threads <= 1 || data.len() < PAR_ELEM_CUTOFF {
            data.iter_mut().for_each(f);
            return;
        }
        let chunk = data.len().div_ceil(threads);
        std::thread::scope(|s| {
            let f = &f;
            for piece in data.chunks_mut(chunk) {
                s.spawn(move || piece.iter_mut().for_each(f));
            }
        });
    }

    /// Scoped-spawn reference for [`super::par_zip_apply`].
    pub fn par_zip_apply<F>(dst: &mut [f32], src: &[f32], f: F)
    where
        F: Fn(&mut f32, f32) + Sync,
    {
        assert_eq!(dst.len(), src.len(), "par_zip_apply length mismatch");
        let threads = configured_threads();
        if threads <= 1 || dst.len() < PAR_ELEM_CUTOFF {
            dst.iter_mut().zip(src).for_each(|(a, &b)| f(a, b));
            return;
        }
        let chunk = dst.len().div_ceil(threads);
        std::thread::scope(|s| {
            let f = &f;
            for (d, sc) in dst.chunks_mut(chunk).zip(src.chunks(chunk)) {
                s.spawn(move || d.iter_mut().zip(sc).for_each(|(a, &b)| f(a, b)));
            }
        });
    }

    /// Scoped-spawn reference for [`super::par_map_chunks`].
    pub fn par_map_chunks<T, U, F>(items: &[T], grain: usize, f: F) -> Vec<U>
    where
        T: Sync,
        U: Send,
        F: Fn(usize, &T) -> U + Sync,
    {
        let n = items.len();
        let chunks = configured_threads().min((n / grain.max(1)).max(1));
        if chunks <= 1 {
            return items.iter().enumerate().map(|(i, t)| f(i, t)).collect();
        }
        let base = n / chunks;
        let rem = n % chunks;
        let mut results: Vec<Vec<U>> = Vec::with_capacity(chunks);
        std::thread::scope(|s| {
            let f = &f;
            let mut handles = Vec::with_capacity(chunks);
            let mut start = 0usize;
            for c in 0..chunks {
                let len = base + usize::from(c < rem);
                let slice = &items[start..start + len];
                let s0 = start;
                start += len;
                handles.push(s.spawn(move || {
                    slice
                        .iter()
                        .enumerate()
                        .map(|(i, t)| f(s0 + i, t))
                        .collect::<Vec<U>>()
                }));
            }
            for h in handles {
                results.push(h.join().expect("kernel worker panicked"));
            }
        });
        results.into_iter().flatten().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn configured_threads_is_positive() {
        assert!(configured_threads() >= 1);
    }

    #[test]
    fn row_chunks_cover_all_rows_exactly_once() {
        // 37 rows x 5 cols with a tiny grain: every row must be visited once,
        // with the correct global row offset, regardless of chunking.
        let rows = 37;
        let cols = 5;
        let mut out = vec![0.0f32; rows * cols];
        par_row_chunks(&mut out, cols, 1, |r0, chunk| {
            for (local, row) in chunk.chunks_mut(cols).enumerate() {
                for v in row.iter_mut() {
                    *v += (r0 + local) as f32 + 1.0;
                }
            }
        });
        for r in 0..rows {
            for c in 0..cols {
                assert_eq!(out[r * cols + c], r as f32 + 1.0, "row {r} col {c}");
            }
        }
    }

    #[test]
    fn row_chunks_handle_empty_and_zero_cols() {
        let mut empty: Vec<f32> = vec![];
        par_row_chunks(&mut empty, 4, 1, |_, chunk| assert!(chunk.is_empty()));
        par_row_chunks(&mut empty, 0, 1, |_, chunk| assert!(chunk.is_empty()));
    }

    #[test]
    fn apply_matches_serial_above_cutoff() {
        let n = PAR_ELEM_CUTOFF + 123;
        let mut a: Vec<f32> = (0..n).map(|i| i as f32 * 0.25).collect();
        let mut b = a.clone();
        a.iter_mut().for_each(|v| *v = *v * 2.0 + 1.0);
        par_apply(&mut b, |v| *v = *v * 2.0 + 1.0);
        assert!(a.iter().zip(&b).all(|(x, y)| x.to_bits() == y.to_bits()));
    }

    #[test]
    fn zip_apply_matches_serial_above_cutoff() {
        let n = PAR_ELEM_CUTOFF + 7;
        let src: Vec<f32> = (0..n).map(|i| (i % 97) as f32).collect();
        let mut a: Vec<f32> = (0..n).map(|i| i as f32).collect();
        let mut b = a.clone();
        a.iter_mut().zip(&src).for_each(|(x, &s)| *x += 3.0 * s);
        par_zip_apply(&mut b, &src, |x, s| *x += 3.0 * s);
        assert!(a.iter().zip(&b).all(|(x, y)| x.to_bits() == y.to_bits()));
    }

    #[test]
    fn zip2_apply_matches_serial_above_cutoff() {
        let n = PAR_ELEM_CUTOFF + 11;
        let a: Vec<f32> = (0..n).map(|i| (i % 53) as f32).collect();
        let b: Vec<f32> = (0..n).map(|i| (i % 11) as f32 - 5.0).collect();
        let mut d1: Vec<f32> = (0..n).map(|i| i as f32 * 0.5).collect();
        let mut d2 = d1.clone();
        for (d, (&x, &y)) in d1.iter_mut().zip(a.iter().zip(&b)) {
            *d = *d * x + y;
        }
        par_zip2_apply(&mut d2, &a, &b, |d, x, y| *d = *d * x + y);
        assert!(d1.iter().zip(&d2).all(|(x, y)| x.to_bits() == y.to_bits()));
    }

    #[test]
    fn map_chunks_preserves_order() {
        let items: Vec<usize> = (0..1000).collect();
        let got = par_map_chunks(&items, 1, |i, &x| {
            assert_eq!(i, x);
            x * 3
        });
        assert_eq!(got, (0..1000).map(|x| x * 3).collect::<Vec<_>>());
    }

    #[test]
    fn pooled_helpers_match_scoped_references() {
        // Direct pooled-vs-scoped parity at a size that engages the pool
        // (the proptest suite covers randomized shapes).
        set_threads(4);
        let rows = 513;
        let cols = 7;
        let mut pooled = vec![0.0f32; rows * cols];
        let mut fresh = pooled.clone();
        let fill = |r0: usize, chunk: &mut [f32]| {
            for (local, row) in chunk.chunks_mut(cols).enumerate() {
                for (c, v) in row.iter_mut().enumerate() {
                    *v = ((r0 + local) * 31 + c) as f32 * 0.125;
                }
            }
        };
        par_row_chunks(&mut pooled, cols, 1, fill);
        scoped::par_row_chunks(&mut fresh, cols, 1, fill);
        set_threads(0);
        assert!(pooled
            .iter()
            .zip(&fresh)
            .all(|(x, y)| x.to_bits() == y.to_bits()));
    }

    #[test]
    fn thread_override_round_trips() {
        // Not asserting on configured_threads() here: other tests in this
        // binary run concurrently and the override is process-wide.
        set_threads(3);
        set_threads(0);
    }
}
