//! Persistent worker pool behind every parallel kernel in this crate.
//!
//! The original execution policy spawned a fresh `std::thread::scope` for
//! every parallel region. That is correct but pays thread creation
//! (~50–100 µs) on every call — fatal for the sub-millisecond kernels a
//! training step is made of, and the reason BENCH_kernels.json showed
//! 4-thread `train_epoch` *losing* to serial. This module replaces the
//! per-call spawn with long-lived workers parked on a condvar:
//!
//! * [`run`]`(njobs, f)` executes `f(0) .. f(njobs - 1)`, each index exactly
//!   once, fanning the indices out over the parked workers plus the calling
//!   thread. Waking a parked worker is a futex wake (~5 µs), three orders of
//!   magnitude cheaper than spawning it.
//! * Workers are spawned lazily on first use and grow to
//!   `configured_threads() - 1`, so the `serial` feature and
//!   single-threaded configurations never start a thread at all.
//! * **Determinism is the caller's contract, enforced by construction**: the
//!   pool only distributes *indices*; the caller partitions its output into
//!   per-index disjoint regions whose boundaries depend on the problem shape
//!   alone (never on the thread count or on claim order). Each output
//!   element is written by exactly one `f(i)` accumulating in serial order,
//!   so results are bitwise identical for any pool size — the same contract
//!   [`crate::kernel`] has always documented.
//! * Jobs are claimed with an atomic `fetch_add`, which load-balances
//!   ragged partitions without any determinism cost (claim order affects
//!   *who* computes an index, never *what* it computes).
//! * A panic inside `f` is caught on the worker, forwarded to the caller
//!   and re-raised there once the region completes, so `should_panic` tests
//!   and shape-assertion failures behave exactly as they did under scoped
//!   threads.
//!
//! Nested parallelism is folded to the inline path: a `run` issued from
//! inside a pool worker (or while another thread holds the submission lock)
//! executes serially on the calling thread. This keeps batch-level
//! parallelism in `prim-core` — which partitions *triples* across the pool
//! and calls matrix kernels from inside each job — deadlock-free by
//! construction: inner kernels simply run serially within their worker.
//!
//! Each worker additionally owns a thread-local [`Scratch`] arena (the
//! per-thread extension of the tape's `BufferPool`): size-keyed buffer
//! recycling so per-job temporaries are allocation-free in steady state.
//! [`stats`] exposes monotonic counters (runs, jobs, queue depth, worker vs
//! caller share) that `prim-obs` turns into per-phase utilization.

use std::any::Any;
use std::cell::{Cell, RefCell};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, OnceLock, TryLockError};

use crate::kernel;

/// Hard cap on pool workers, far above any sane `set_threads` request.
const MAX_WORKERS: usize = 64;

/// A raw pointer that may cross into pool jobs.
///
/// Safety contract for users: each job index must dereference a region
/// disjoint from every other index's, the partition must depend only on the
/// problem shape (never the thread count), and the owning [`run`] call joins
/// all jobs before the underlying borrow ends. Every kernel helper and the
/// batch-parallel scorer uphold exactly this.
pub struct SendPtr<T>(*mut T);
unsafe impl<T> Send for SendPtr<T> {}
unsafe impl<T> Sync for SendPtr<T> {}
impl<T> SendPtr<T> {
    /// Wraps a pointer for use inside [`run`] jobs under the contract above.
    pub fn new(p: *mut T) -> Self {
        SendPtr(p)
    }

    /// The wrapped pointer.
    #[inline]
    pub fn get(&self) -> *mut T {
        self.0
    }
}

/// A lifetime-erased `&dyn Fn(usize)` that may cross threads.
///
/// Safety: [`run`] does not return until every `f(i)` has completed (the
/// `pending` counter reaches zero), so the borrow outlives every
/// dereference; workers never call through the pointer after claiming an
/// index `>= njobs`.
#[derive(Clone, Copy)]
struct RawTask(*const (dyn Fn(usize) + Sync));
unsafe impl Send for RawTask {}
unsafe impl Sync for RawTask {}

/// One parallel region in flight.
#[derive(Clone)]
struct Job {
    f: RawTask,
    njobs: usize,
    /// Next unclaimed index (fetch_add ticket dispenser).
    next: Arc<AtomicUsize>,
    /// Indices not yet *completed*; the caller returns when this hits zero.
    pending: Arc<AtomicUsize>,
    /// First panic payload raised inside `f`, re-raised by the caller.
    panic: Arc<Mutex<Option<Box<dyn Any + Send>>>>,
}

struct State {
    /// The job currently being distributed, if any.
    job: Option<Job>,
    /// Bumped once per published job so parked workers can tell a fresh
    /// job from the one they already drained.
    epoch: u64,
    /// Workers spawned so far.
    workers: usize,
}

struct Shared {
    state: Mutex<State>,
    /// Workers park here waiting for a new epoch.
    work: Condvar,
    /// The submitting thread parks here waiting for `pending == 0`.
    done: Condvar,
}

/// Monotonic pool counters (see [`stats`]).
#[derive(Clone, Copy, Debug, Default)]
pub struct PoolStats {
    /// Parallel regions distributed to the pool.
    pub parallel_runs: u64,
    /// Regions that ran inline on the caller (serial config, single job,
    /// nested call, or contended submission).
    pub inline_runs: u64,
    /// Job indices executed by pool workers.
    pub worker_jobs: u64,
    /// Job indices executed by the submitting thread itself.
    pub caller_jobs: u64,
    /// Total job indices enqueued to parallel regions.
    pub queued_jobs: u64,
    /// Largest single-region queue depth (njobs) seen so far.
    pub peak_queue_depth: u64,
    /// Workers currently alive.
    pub workers: u64,
}

#[derive(Default)]
struct Counters {
    parallel_runs: AtomicU64,
    inline_runs: AtomicU64,
    worker_jobs: AtomicU64,
    caller_jobs: AtomicU64,
    queued_jobs: AtomicU64,
    peak_queue_depth: AtomicU64,
}

static COUNTERS: Counters = Counters {
    parallel_runs: AtomicU64::new(0),
    inline_runs: AtomicU64::new(0),
    worker_jobs: AtomicU64::new(0),
    caller_jobs: AtomicU64::new(0),
    queued_jobs: AtomicU64::new(0),
    peak_queue_depth: AtomicU64::new(0),
};

static SHARED: OnceLock<Arc<Shared>> = OnceLock::new();
/// Serializes submitters. Held for the whole region by the submitting
/// thread; a contended (or self-held, i.e. nested) submission falls back to
/// the inline path instead of blocking, so the pool can never deadlock.
static SUBMIT: Mutex<()> = Mutex::new(());

thread_local! {
    /// True on pool worker threads: a nested [`run`] goes inline.
    static IN_POOL: Cell<bool> = const { Cell::new(false) };
    static SCRATCH: RefCell<Scratch> = RefCell::new(Scratch::new());
}

fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    // A panic inside `f` unwinds through guard scopes and poisons these
    // mutexes; the pool state itself is always consistent (plain counters),
    // so poisoning is ignored.
    m.lock().unwrap_or_else(|e| e.into_inner())
}

fn shared() -> &'static Arc<Shared> {
    SHARED.get_or_init(|| {
        Arc::new(Shared {
            state: Mutex::new(State {
                job: None,
                epoch: 0,
                workers: 0,
            }),
            work: Condvar::new(),
            done: Condvar::new(),
        })
    })
}

/// True while executing on a pool worker thread.
pub fn in_worker() -> bool {
    IN_POOL.with(|f| f.get())
}

fn worker_loop(shared: Arc<Shared>) {
    IN_POOL.with(|f| f.set(true));
    let mut seen = 0u64;
    loop {
        let job = {
            let mut st = lock(&shared.state);
            loop {
                if st.epoch != seen {
                    seen = st.epoch;
                    if let Some(j) = st.job.clone() {
                        break j;
                    }
                    // Epoch advanced but the job was already retired;
                    // fall through and keep waiting.
                }
                st = shared.work.wait(st).unwrap_or_else(|e| e.into_inner());
            }
        };
        execute(&shared, &job, true);
    }
}

/// Claims and runs indices of `job` until the ticket dispenser runs dry.
fn execute(shared: &Shared, job: &Job, is_worker: bool) {
    // Safety: see `RawTask` — the submitting `run` call keeps the closure
    // alive until `pending` reaches zero, and we only dereference for
    // indices `< njobs`, each of which holds a unit of `pending`.
    let f = unsafe { &*job.f.0 };
    loop {
        let i = job.next.fetch_add(1, Ordering::Relaxed);
        if i >= job.njobs {
            break;
        }
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| f(i)));
        if let Err(payload) = result {
            let mut slot = lock(&job.panic);
            if slot.is_none() {
                *slot = Some(payload);
            }
        }
        if is_worker {
            COUNTERS.worker_jobs.fetch_add(1, Ordering::Relaxed);
        } else {
            COUNTERS.caller_jobs.fetch_add(1, Ordering::Relaxed);
        }
        if job.pending.fetch_sub(1, Ordering::AcqRel) == 1 {
            // Last index: wake the submitter. Taking the state lock orders
            // this wake after the submitter's wait registration.
            let _st = lock(&shared.state);
            shared.done.notify_all();
        }
    }
}

fn ensure_workers(shared: &Arc<Shared>, wanted: usize) {
    let wanted = wanted.min(MAX_WORKERS);
    let mut st = lock(&shared.state);
    while st.workers < wanted {
        let id = st.workers;
        let cloned = Arc::clone(shared);
        std::thread::Builder::new()
            .name(format!("prim-pool-{id}"))
            .spawn(move || worker_loop(cloned))
            .expect("failed to spawn pool worker");
        st.workers += 1;
    }
}

fn run_inline<F: Fn(usize)>(njobs: usize, f: F) {
    COUNTERS.inline_runs.fetch_add(1, Ordering::Relaxed);
    for i in 0..njobs {
        f(i);
    }
}

/// Executes `f(0) .. f(njobs - 1)`, each exactly once, across the persistent
/// pool plus the calling thread. Returns once every index has completed;
/// re-raises the first panic raised inside `f`.
///
/// Runs inline (serially, on the caller) when any of these hold: the
/// `serial` feature or a 1-thread configuration, a single job, a nested
/// call from inside a pool worker or from inside another region on this
/// thread, or a concurrent submitter already driving the pool. All of these
/// produce bitwise-identical results by the partitioning contract described
/// in the module docs.
pub fn run<F>(njobs: usize, f: F)
where
    F: Fn(usize) + Sync,
{
    if njobs == 0 {
        return;
    }
    let threads = kernel::configured_threads();
    if threads <= 1 || njobs == 1 || in_worker() {
        run_inline(njobs, f);
        return;
    }
    // One region at a time: a contended pool (another thread mid-region, or
    // a nested call from the submitting thread itself — `try_lock` on a
    // held std mutex is non-reentrant and returns `WouldBlock`) degrades to
    // the inline path rather than queueing.
    let _submit = match SUBMIT.try_lock() {
        Ok(guard) => guard,
        Err(TryLockError::Poisoned(p)) => p.into_inner(),
        Err(TryLockError::WouldBlock) => {
            run_inline(njobs, f);
            return;
        }
    };
    let shared = shared();
    ensure_workers(shared, threads.min(njobs) - 1);

    COUNTERS.parallel_runs.fetch_add(1, Ordering::Relaxed);
    COUNTERS
        .queued_jobs
        .fetch_add(njobs as u64, Ordering::Relaxed);
    COUNTERS
        .peak_queue_depth
        .fetch_max(njobs as u64, Ordering::Relaxed);

    let f_ref: &(dyn Fn(usize) + Sync) = &f;
    // Safety: lifetime erasure only; `run` joins the region before
    // returning, so the borrow outlives all uses (see `RawTask`).
    let raw = RawTask(unsafe {
        std::mem::transmute::<&(dyn Fn(usize) + Sync), *const (dyn Fn(usize) + Sync)>(f_ref)
    });
    let job = Job {
        f: raw,
        njobs,
        next: Arc::new(AtomicUsize::new(0)),
        pending: Arc::new(AtomicUsize::new(njobs)),
        panic: Arc::new(Mutex::new(None)),
    };
    {
        let mut st = lock(&shared.state);
        st.job = Some(job.clone());
        st.epoch = st.epoch.wrapping_add(1);
        shared.work.notify_all();
    }
    // The caller is a full participant — with N configured threads the
    // region runs on N-1 workers plus this thread.
    execute(shared, &job, false);
    {
        let mut st = lock(&shared.state);
        while job.pending.load(Ordering::Acquire) != 0 {
            st = shared.done.wait(st).unwrap_or_else(|e| e.into_inner());
        }
        st.job = None;
    }
    let payload = lock(&job.panic).take();
    if let Some(payload) = payload {
        std::panic::resume_unwind(payload);
    }
}

/// Snapshot of the monotonic pool counters. Deltas between snapshots give
/// per-phase utilization (worker share of executed jobs), which `prim-obs`
/// records alongside phase wall-times.
pub fn stats() -> PoolStats {
    let workers = SHARED
        .get()
        .map(|s| lock(&s.state).workers as u64)
        .unwrap_or(0);
    PoolStats {
        parallel_runs: COUNTERS.parallel_runs.load(Ordering::Relaxed),
        inline_runs: COUNTERS.inline_runs.load(Ordering::Relaxed),
        worker_jobs: COUNTERS.worker_jobs.load(Ordering::Relaxed),
        caller_jobs: COUNTERS.caller_jobs.load(Ordering::Relaxed),
        queued_jobs: COUNTERS.queued_jobs.load(Ordering::Relaxed),
        peak_queue_depth: COUNTERS.peak_queue_depth.load(Ordering::Relaxed),
        workers,
    }
}

impl PoolStats {
    /// Fraction of partitioned job indices absorbed by pool workers (vs the
    /// submitting thread) since `earlier`; `None` when nothing ran.
    pub fn worker_share_since(&self, earlier: &PoolStats) -> Option<f64> {
        let w = self.worker_jobs.saturating_sub(earlier.worker_jobs);
        let c = self.caller_jobs.saturating_sub(earlier.caller_jobs);
        let total = w + c;
        (total > 0).then(|| w as f64 / total as f64)
    }

    /// Parallel regions since `earlier`.
    pub fn parallel_runs_since(&self, earlier: &PoolStats) -> u64 {
        self.parallel_runs.saturating_sub(earlier.parallel_runs)
    }

    /// Inline (serial-path) regions since `earlier`.
    pub fn inline_runs_since(&self, earlier: &PoolStats) -> u64 {
        self.inline_runs.saturating_sub(earlier.inline_runs)
    }
}

/// Size-keyed recycling arena for per-thread scratch buffers — the
/// per-worker extension of the tape's `BufferPool`. `take` hands out a
/// zeroed buffer of exactly `len` (reusing a previously `put` buffer when
/// one of that size exists), so steady-state scratch use allocates nothing.
#[derive(Default)]
pub struct Scratch {
    buckets: HashMap<usize, Vec<Vec<f32>>>,
}

impl Scratch {
    fn new() -> Self {
        Scratch::default()
    }

    /// A zeroed buffer of length `len`, recycled when possible.
    pub fn take(&mut self, len: usize) -> Vec<f32> {
        match self.buckets.get_mut(&len).and_then(|b| b.pop()) {
            Some(mut v) => {
                v.iter_mut().for_each(|x| *x = 0.0);
                v
            }
            None => vec![0.0; len],
        }
    }

    /// Returns a buffer to the arena for reuse by later `take`s.
    pub fn put(&mut self, v: Vec<f32>) {
        self.buckets.entry(v.len()).or_default().push(v);
    }

    /// Buffers currently cached (test/diagnostic hook).
    pub fn cached(&self) -> usize {
        self.buckets.values().map(Vec::len).sum()
    }
}

/// Runs `f` with this thread's scratch arena. Every thread — pool workers
/// and callers alike — owns an independent arena, so scratch access is
/// lock-free and jobs on different workers never contend.
pub fn with_scratch<R>(f: impl FnOnce(&mut Scratch) -> R) -> R {
    SCRATCH.with(|s| f(&mut s.borrow_mut()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU32;

    #[test]
    fn run_covers_every_index_exactly_once() {
        let n = 97;
        let hits: Vec<AtomicU32> = (0..n).map(|_| AtomicU32::new(0)).collect();
        kernel::set_threads(4);
        run(n, |i| {
            hits[i].fetch_add(1, Ordering::Relaxed);
        });
        kernel::set_threads(0);
        for (i, h) in hits.iter().enumerate() {
            assert_eq!(h.load(Ordering::Relaxed), 1, "index {i}");
        }
    }

    #[test]
    fn zero_and_single_job_run_inline() {
        run(0, |_| panic!("must not be called"));
        let hit = AtomicU32::new(0);
        run(1, |i| {
            hit.store(i as u32 + 1, Ordering::Relaxed);
        });
        assert_eq!(hit.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn nested_run_goes_inline_and_completes() {
        kernel::set_threads(4);
        let total: Vec<AtomicU32> = (0..8).map(|_| AtomicU32::new(0)).collect();
        run(4, |outer| {
            // Nested region: must degrade to inline, not deadlock.
            run(2, |inner| {
                total[outer * 2 + inner].fetch_add(1, Ordering::Relaxed);
            });
        });
        kernel::set_threads(0);
        assert!(total.iter().all(|t| t.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn panics_propagate_to_the_caller() {
        kernel::set_threads(2);
        let result = std::panic::catch_unwind(|| {
            run(8, |i| {
                if i == 5 {
                    panic!("job 5 exploded");
                }
            });
        });
        kernel::set_threads(0);
        let payload = result.expect_err("panic must propagate");
        let msg = payload
            .downcast_ref::<&str>()
            .copied()
            .or_else(|| payload.downcast_ref::<String>().map(|s| s.as_str()))
            .unwrap_or("");
        assert!(msg.contains("job 5 exploded"), "{msg}");
        // The pool must still be usable after a panicked region.
        let ok = AtomicU32::new(0);
        kernel::set_threads(2);
        run(4, |_| {
            ok.fetch_add(1, Ordering::Relaxed);
        });
        kernel::set_threads(0);
        assert_eq!(ok.load(Ordering::Relaxed), 4);
    }

    #[test]
    fn scratch_recycles_buffers() {
        with_scratch(|s| {
            let a = s.take(128);
            assert_eq!(a.len(), 128);
            let ptr = a.as_ptr();
            s.put(a);
            let b = s.take(128);
            assert_eq!(b.as_ptr(), ptr, "same-size take must reuse the buffer");
            assert!(b.iter().all(|&x| x == 0.0), "recycled buffer is zeroed");
            s.put(b);
        });
    }

    #[test]
    fn stats_track_runs() {
        let before = stats();
        kernel::set_threads(2);
        run(16, |_| {});
        kernel::set_threads(0);
        let after = stats();
        assert!(
            after.parallel_runs + after.inline_runs > before.parallel_runs + before.inline_runs
        );
        assert!(after.queued_jobs >= before.queued_jobs);
    }
}
