//! Tape-based reverse-mode automatic differentiation.
//!
//! A [`Graph`] records every operation applied to [`Var`] handles; calling
//! [`Graph::backward`] replays the tape in reverse, producing gradients for
//! every leaf created with [`Graph::leaf`].
//!
//! The op set is tailored to graph neural networks: besides the usual dense
//! ops (matmul, element-wise arithmetic, activations) it provides the
//! message-passing primitives `gather_rows`, `segment_sum` and
//! `segment_softmax`, plus row-wise kernels (`rows_dot`, `scale_rows`,
//! `normalize_rows`) used by attention and the distance-specific scoring
//! function of the PRIM paper.

use crate::kernel;
use crate::matrix::Matrix;

/// Per-row parallel grain for an op whose rows each cost `row_work`
/// flops-ish units: chunks are sized so a thread gets at least
/// [`kernel::PAR_ELEM_CUTOFF`] units of work.
fn row_grain(row_work: usize) -> usize {
    (kernel::PAR_ELEM_CUTOFF / row_work.max(1)).max(1)
}

/// Handle to a node in a [`Graph`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Var(usize);

impl Var {
    /// Index of the node inside its graph (diagnostic use only).
    pub fn index(self) -> usize {
        self.0
    }
}

/// Recorded operation for one tape node.
enum Op {
    /// Leaf node; `trainable` leaves receive gradients.
    Leaf {
        /// Whether [`Gradients::get`] should report a gradient for this leaf.
        #[allow(dead_code)]
        trainable: bool,
    },
    MatMul(Var, Var),
    Add(Var, Var),
    Sub(Var, Var),
    Mul(Var, Var),
    /// `a (n×c) + b (1×c)` broadcast over rows.
    AddRowBroadcast(Var, Var),
    Scale(Var, f32),
    AddScalar(Var, #[allow(dead_code)] f32),
    /// `a × s` where `s` is a `1×1` variable.
    MulScalarVar(Var, Var),
    ConcatCols(Vec<Var>),
    /// Column window `[start, start+width)` of the source; `width` is the
    /// node's own column count.
    SliceCols(Var, usize),
    VStack(Vec<Var>),
    GatherRows(Var, Vec<usize>),
    /// Sums rows of the input into `n_segments` output rows keyed by
    /// `segment_of_row`.
    SegmentSum {
        input: Var,
        segment_of_row: Vec<usize>,
        #[allow(dead_code)]
        n_segments: usize,
    },
    /// Column-wise softmax within each segment.
    SegmentSoftmax {
        input: Var,
        segment_of_row: Vec<usize>,
    },
    /// Row-wise dot product of two equal-shape matrices → `n×1`.
    RowsDot(Var, Var),
    /// Row-wise circular correlation `(a ⋆ b)_k = Σ_i a_i·b_{(k+i) mod d}`.
    RowsCircCorr(Var, Var),
    /// `a (n×c)` with row `i` scaled by `s[i]` where `s` is `n×1`.
    ScaleRows(Var, Var),
    /// Each row divided by its L2 norm (plus epsilon).
    NormalizeRows(Var),
    Relu(Var),
    LeakyRelu(Var, f32),
    Elu(Var),
    Sigmoid(Var),
    Tanh(Var),
    SumAll(Var),
    MeanAll(Var),
    /// Mean binary cross-entropy over `n×1` logits against fixed targets.
    BceWithLogits {
        logits: Var,
        targets: Vec<f32>,
    },
}

struct Node {
    value: Matrix,
    op: Op,
    requires_grad: bool,
}

/// Gradients produced by [`Graph::backward`].
pub struct Gradients {
    grads: Vec<Option<Matrix>>,
}

impl Gradients {
    /// Gradient of the loss w.r.t. `var`, if it participated in the loss.
    pub fn get(&self, var: Var) -> Option<&Matrix> {
        self.grads.get(var.0).and_then(|g| g.as_ref())
    }

    /// Gradient of the loss w.r.t. `var`, or a zero matrix of the given shape.
    pub fn get_or_zeros(&self, var: Var, rows: usize, cols: usize) -> Matrix {
        match self.get(var) {
            Some(g) => g.clone(),
            None => Matrix::zeros(rows, cols),
        }
    }
}

/// A computation tape.
///
/// Build a fresh graph per training step: register parameter matrices with
/// [`Graph::leaf`], inputs with [`Graph::constant`], chain ops, then call
/// [`Graph::backward`] on the scalar loss.
#[derive(Default)]
pub struct Graph {
    nodes: Vec<Node>,
}

const NORM_EPS: f32 = 1e-12;

impl Graph {
    /// Creates an empty graph.
    pub fn new() -> Self {
        Graph { nodes: Vec::new() }
    }

    /// Number of recorded nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True if no node has been recorded.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    fn push(&mut self, value: Matrix, op: Op, requires_grad: bool) -> Var {
        self.nodes.push(Node {
            value,
            op,
            requires_grad,
        });
        Var(self.nodes.len() - 1)
    }

    fn rg(&self, v: Var) -> bool {
        self.nodes[v.0].requires_grad
    }

    /// Registers a non-trainable input (no gradient is computed for it).
    pub fn constant(&mut self, m: Matrix) -> Var {
        self.push(m, Op::Leaf { trainable: false }, false)
    }

    /// Registers a trainable leaf; [`Gradients::get`] will return its gradient.
    pub fn leaf(&mut self, m: Matrix) -> Var {
        self.push(m, Op::Leaf { trainable: true }, true)
    }

    /// Value of a node.
    pub fn value(&self, v: Var) -> &Matrix {
        &self.nodes[v.0].value
    }

    /// Shape of a node's value.
    pub fn shape(&self, v: Var) -> (usize, usize) {
        self.nodes[v.0].value.shape()
    }

    /// Matrix product.
    pub fn matmul(&mut self, a: Var, b: Var) -> Var {
        let value = self.value(a).matmul(self.value(b));
        let rg = self.rg(a) || self.rg(b);
        self.push(value, Op::MatMul(a, b), rg)
    }

    /// Element-wise sum.
    pub fn add(&mut self, a: Var, b: Var) -> Var {
        let value = self.value(a).add(self.value(b));
        let rg = self.rg(a) || self.rg(b);
        self.push(value, Op::Add(a, b), rg)
    }

    /// Element-wise difference.
    pub fn sub(&mut self, a: Var, b: Var) -> Var {
        let value = self.value(a).sub(self.value(b));
        let rg = self.rg(a) || self.rg(b);
        self.push(value, Op::Sub(a, b), rg)
    }

    /// Element-wise (Hadamard) product.
    pub fn mul(&mut self, a: Var, b: Var) -> Var {
        let value = self.value(a).hadamard(self.value(b));
        let rg = self.rg(a) || self.rg(b);
        self.push(value, Op::Mul(a, b), rg)
    }

    /// Adds a `1×c` row vector to every row of an `n×c` matrix.
    pub fn add_row_broadcast(&mut self, a: Var, b: Var) -> Var {
        let (n, c) = self.shape(a);
        assert_eq!(self.shape(b), (1, c), "add_row_broadcast: b must be 1x{c}");
        let mut value = self.value(a).clone();
        for r in 0..n {
            let brow = self.nodes[b.0].value.row(0).to_vec();
            for (x, y) in value.row_mut(r).iter_mut().zip(brow.iter()) {
                *x += *y;
            }
        }
        let rg = self.rg(a) || self.rg(b);
        self.push(value, Op::AddRowBroadcast(a, b), rg)
    }

    /// Multiplies every element by the constant `k`.
    pub fn scale(&mut self, a: Var, k: f32) -> Var {
        let value = self.value(a).scale(k);
        let rg = self.rg(a);
        self.push(value, Op::Scale(a, k), rg)
    }

    /// Adds the constant `k` to every element.
    pub fn add_scalar(&mut self, a: Var, k: f32) -> Var {
        let value = self.value(a).map(|v| v + k);
        let rg = self.rg(a);
        self.push(value, Op::AddScalar(a, k), rg)
    }

    /// Multiplies a matrix by a `1×1` variable.
    pub fn mul_scalar_var(&mut self, a: Var, s: Var) -> Var {
        assert_eq!(self.shape(s), (1, 1), "mul_scalar_var: s must be 1x1");
        let k = self.value(s).scalar();
        let value = self.value(a).scale(k);
        let rg = self.rg(a) || self.rg(s);
        self.push(value, Op::MulScalarVar(a, s), rg)
    }

    /// Horizontal concatenation of equally-tall matrices.
    pub fn concat_cols(&mut self, parts: &[Var]) -> Var {
        assert!(!parts.is_empty(), "concat_cols of zero parts");
        let mats: Vec<&Matrix> = parts.iter().map(|&v| self.value(v)).collect();
        let value = Matrix::hstack(&mats);
        let rg = parts.iter().any(|&v| self.rg(v));
        self.push(value, Op::ConcatCols(parts.to_vec()), rg)
    }

    /// Copies the column window `[start, start + width)` of `a` into a new
    /// node — the inverse of [`Graph::concat_cols`], used to fan a batched
    /// multi-head projection back out into per-head views.
    pub fn slice_cols(&mut self, a: Var, start: usize, width: usize) -> Var {
        let (n, c) = self.shape(a);
        assert!(
            start + width <= c,
            "slice_cols window [{start}, {}) out of range for {c} columns",
            start + width
        );
        let mut value = Matrix::zeros(n, width);
        if width > 0 {
            let input = &self.nodes[a.0].value;
            kernel::par_row_chunks(value.data_mut(), width, row_grain(width), |r0, chunk| {
                for (dr, row) in chunk.chunks_mut(width).enumerate() {
                    row.copy_from_slice(&input.row(r0 + dr)[start..start + width]);
                }
            });
        }
        let rg = self.rg(a);
        self.push(value, Op::SliceCols(a, start), rg)
    }

    /// Vertical concatenation of equally-wide matrices.
    pub fn vstack(&mut self, parts: &[Var]) -> Var {
        assert!(!parts.is_empty(), "vstack of zero parts");
        let mats: Vec<&Matrix> = parts.iter().map(|&v| self.value(v)).collect();
        let value = Matrix::vstack(&mats);
        let rg = parts.iter().any(|&v| self.rg(v));
        self.push(value, Op::VStack(parts.to_vec()), rg)
    }

    /// Gathers rows by index (rows may repeat). The backward pass
    /// scatter-adds into the source.
    pub fn gather_rows(&mut self, a: Var, indices: &[usize]) -> Var {
        let value = self.value(a).gather_rows(indices);
        let rg = self.rg(a);
        self.push(value, Op::GatherRows(a, indices.to_vec()), rg)
    }

    /// Sums rows into segments: output row `s` is the sum of input rows `r`
    /// with `segment_of_row[r] == s`.
    pub fn segment_sum(&mut self, a: Var, segment_of_row: &[usize], n_segments: usize) -> Var {
        let (n, c) = self.shape(a);
        assert_eq!(
            segment_of_row.len(),
            n,
            "segment_sum: segment map length mismatch"
        );
        let mut value = Matrix::zeros(n_segments, c);
        {
            let input = &self.nodes[a.0].value;
            for (r, &s) in segment_of_row.iter().enumerate() {
                assert!(s < n_segments, "segment id {s} out of range {n_segments}");
                for (o, &x) in value.row_mut(s).iter_mut().zip(input.row(r).iter()) {
                    *o += x;
                }
            }
        }
        let rg = self.rg(a);
        self.push(
            value,
            Op::SegmentSum {
                input: a,
                segment_of_row: segment_of_row.to_vec(),
                n_segments,
            },
            rg,
        )
    }

    /// Softmax within each segment, applied independently per column.
    ///
    /// For every column `c` and segment `s`, the entries
    /// `{a[r][c] : segment_of_row[r] == s}` are replaced by their softmax.
    /// Numerically stabilised by subtracting the per-segment maximum.
    pub fn segment_softmax(&mut self, a: Var, segment_of_row: &[usize]) -> Var {
        let (n, c) = self.shape(a);
        assert_eq!(
            segment_of_row.len(),
            n,
            "segment_softmax: segment map length mismatch"
        );
        let n_segments = segment_of_row.iter().copied().max().map_or(0, |m| m + 1);
        let input = self.value(a).clone();
        // Per-segment, per-column max for numerical stability.
        let mut seg_max = Matrix::full(n_segments, c, f32::NEG_INFINITY);
        for (r, &s) in segment_of_row.iter().enumerate() {
            for col in 0..c {
                let v = input[(r, col)];
                if v > seg_max[(s, col)] {
                    seg_max[(s, col)] = v;
                }
            }
        }
        // The exponentiation and division passes are per-row independent and
        // run in parallel; the two scatter reductions (max above, sum below)
        // stay serial so segments accumulate in a fixed row order.
        let mut value = Matrix::zeros(n, c);
        if c > 0 {
            kernel::par_row_chunks(value.data_mut(), c, row_grain(c), |r0, chunk| {
                for (dr, row) in chunk.chunks_mut(c).enumerate() {
                    let r = r0 + dr;
                    let s = segment_of_row[r];
                    for (col, e) in row.iter_mut().enumerate() {
                        *e = (input[(r, col)] - seg_max[(s, col)]).exp();
                    }
                }
            });
        }
        let mut seg_sum = Matrix::zeros(n_segments, c);
        for (r, &s) in segment_of_row.iter().enumerate() {
            for (o, &e) in seg_sum.row_mut(s).iter_mut().zip(value.row(r).iter()) {
                *o += e;
            }
        }
        if c > 0 {
            kernel::par_row_chunks(value.data_mut(), c, row_grain(c), |r0, chunk| {
                for (dr, row) in chunk.chunks_mut(c).enumerate() {
                    let s = segment_of_row[r0 + dr];
                    for (col, v) in row.iter_mut().enumerate() {
                        *v /= seg_sum[(s, col)].max(NORM_EPS);
                    }
                }
            });
        }
        let rg = self.rg(a);
        self.push(
            value,
            Op::SegmentSoftmax {
                input: a,
                segment_of_row: segment_of_row.to_vec(),
            },
            rg,
        )
    }

    /// Row-wise dot product of two equal-shape matrices, yielding `n×1`.
    pub fn rows_dot(&mut self, a: Var, b: Var) -> Var {
        let (n, c) = self.shape(a);
        assert_eq!(self.shape(b), (n, c), "rows_dot shape mismatch");
        let mut value = Matrix::zeros(n, 1);
        {
            let (ma, mb) = (&self.nodes[a.0].value, &self.nodes[b.0].value);
            kernel::par_row_chunks(value.data_mut(), 1, row_grain(c), |r0, chunk| {
                for (dr, out) in chunk.iter_mut().enumerate() {
                    *out = ma.row_dot(r0 + dr, mb, r0 + dr);
                }
            });
        }
        let rg = self.rg(a) || self.rg(b);
        self.push(value, Op::RowsDot(a, b), rg)
    }

    /// Row-wise circular correlation (Nickel et al.'s HolE composition,
    /// one of the relation-specific operators the PRIM paper lists for
    /// `γ(h_p, h_r)`): `out[r][k] = Σ_i a[r][i] · b[r][(k+i) mod d]`.
    pub fn rows_circ_corr(&mut self, a: Var, b: Var) -> Var {
        let (n, d) = self.shape(a);
        assert_eq!(self.shape(b), (n, d), "rows_circ_corr shape mismatch");
        let mut value = Matrix::zeros(n, d);
        if d > 0 {
            let (ma, mb) = (&self.nodes[a.0].value, &self.nodes[b.0].value);
            kernel::par_row_chunks(value.data_mut(), d, row_grain(d * d), |r0, chunk| {
                for (dr, out) in chunk.chunks_mut(d).enumerate() {
                    let (ra, rb) = (ma.row(r0 + dr), mb.row(r0 + dr));
                    for (k, o) in out.iter_mut().enumerate() {
                        let mut acc = 0.0f32;
                        for i in 0..d {
                            acc += ra[i] * rb[(k + i) % d];
                        }
                        *o = acc;
                    }
                }
            });
        }
        let rg = self.rg(a) || self.rg(b);
        self.push(value, Op::RowsCircCorr(a, b), rg)
    }

    /// Scales row `i` of `a (n×c)` by `s[i]`, where `s` is `n×1`.
    pub fn scale_rows(&mut self, a: Var, s: Var) -> Var {
        let (n, c) = self.shape(a);
        assert_eq!(self.shape(s), (n, 1), "scale_rows: scale must be {n}x1");
        let mut value = self.value(a).clone();
        if c > 0 {
            let sv = &self.nodes[s.0].value;
            kernel::par_row_chunks(value.data_mut(), c, row_grain(c), |r0, chunk| {
                for (dr, row) in chunk.chunks_mut(c).enumerate() {
                    let k = sv[(r0 + dr, 0)];
                    for x in row.iter_mut() {
                        *x *= k;
                    }
                }
            });
        }
        let rg = self.rg(a) || self.rg(s);
        self.push(value, Op::ScaleRows(a, s), rg)
    }

    /// L2-normalises each row (rows of zeros stay zero thanks to an epsilon).
    pub fn normalize_rows(&mut self, a: Var) -> Var {
        let (_, c) = self.shape(a);
        let mut value = self.value(a).clone();
        if c > 0 {
            kernel::par_row_chunks(value.data_mut(), c, row_grain(2 * c), |_, chunk| {
                for row in chunk.chunks_mut(c) {
                    let norm = row.iter().map(|v| v * v).sum::<f32>().sqrt().max(NORM_EPS);
                    for x in row.iter_mut() {
                        *x /= norm;
                    }
                }
            });
        }
        let rg = self.rg(a);
        self.push(value, Op::NormalizeRows(a), rg)
    }

    /// Rectified linear unit.
    pub fn relu(&mut self, a: Var) -> Var {
        let value = self.value(a).map(|v| v.max(0.0));
        let rg = self.rg(a);
        self.push(value, Op::Relu(a), rg)
    }

    /// Leaky ReLU with the given negative slope.
    pub fn leaky_relu(&mut self, a: Var, slope: f32) -> Var {
        let value = self.value(a).map(|v| if v >= 0.0 { v } else { slope * v });
        let rg = self.rg(a);
        self.push(value, Op::LeakyRelu(a, slope), rg)
    }

    /// Exponential linear unit (α = 1).
    pub fn elu(&mut self, a: Var) -> Var {
        let value = self
            .value(a)
            .map(|v| if v >= 0.0 { v } else { v.exp() - 1.0 });
        let rg = self.rg(a);
        self.push(value, Op::Elu(a), rg)
    }

    /// Logistic sigmoid.
    pub fn sigmoid(&mut self, a: Var) -> Var {
        let value = self.value(a).map(stable_sigmoid);
        let rg = self.rg(a);
        self.push(value, Op::Sigmoid(a), rg)
    }

    /// Hyperbolic tangent.
    pub fn tanh(&mut self, a: Var) -> Var {
        let value = self.value(a).map(f32::tanh);
        let rg = self.rg(a);
        self.push(value, Op::Tanh(a), rg)
    }

    /// Sum of all elements → `1×1`.
    pub fn sum_all(&mut self, a: Var) -> Var {
        let value = Matrix::from_vec(1, 1, vec![self.value(a).sum()]);
        let rg = self.rg(a);
        self.push(value, Op::SumAll(a), rg)
    }

    /// Mean of all elements → `1×1`.
    pub fn mean_all(&mut self, a: Var) -> Var {
        let value = Matrix::from_vec(1, 1, vec![self.value(a).mean()]);
        let rg = self.rg(a);
        self.push(value, Op::MeanAll(a), rg)
    }

    /// Numerically stable mean binary cross-entropy with logits.
    ///
    /// `logits` must be `n×1` and `targets` must have `n` entries in `[0, 1]`.
    pub fn bce_with_logits(&mut self, logits: Var, targets: &[f32]) -> Var {
        let (n, c) = self.shape(logits);
        assert_eq!(c, 1, "bce_with_logits expects n×1 logits");
        assert_eq!(targets.len(), n, "bce_with_logits target length mismatch");
        let mut total = 0.0f64;
        for (r, &y) in targets.iter().enumerate() {
            let x = self.value(logits)[(r, 0)];
            // max(x,0) - x*y + ln(1 + exp(-|x|))
            total += (x.max(0.0) - x * y + (-x.abs()).exp().ln_1p()) as f64;
        }
        let value = Matrix::from_vec(1, 1, vec![(total / n.max(1) as f64) as f32]);
        let rg = self.rg(logits);
        self.push(
            value,
            Op::BceWithLogits {
                logits,
                targets: targets.to_vec(),
            },
            rg,
        )
    }

    /// Runs the reverse pass from `loss` (which must be `1×1`) and returns
    /// gradients for every participating node.
    pub fn backward(&self, loss: Var) -> Gradients {
        assert_eq!(
            self.shape(loss),
            (1, 1),
            "backward: loss must be a 1×1 scalar"
        );
        let mut grads: Vec<Option<Matrix>> = vec![None; self.nodes.len()];
        grads[loss.0] = Some(Matrix::ones(1, 1));

        for idx in (0..=loss.0).rev() {
            if !self.nodes[idx].requires_grad {
                continue;
            }
            let g = match grads[idx].take() {
                Some(g) => g,
                None => continue,
            };
            self.backprop_node(idx, &g, &mut grads);
            grads[idx] = Some(g);
        }
        Gradients { grads }
    }

    fn accumulate(grads: &mut [Option<Matrix>], var: Var, delta: Matrix) {
        match &mut grads[var.0] {
            Some(g) => g.add_assign(&delta),
            slot @ None => *slot = Some(delta),
        }
    }

    fn backprop_node(&self, idx: usize, g: &Matrix, grads: &mut [Option<Matrix>]) {
        let node = &self.nodes[idx];
        match &node.op {
            Op::Leaf { .. } => {}
            Op::MatMul(a, b) => {
                if self.rg(*a) {
                    // dL/dA = G Bᵀ
                    let da = g.matmul_nt(self.value(*b));
                    Self::accumulate(grads, *a, da);
                }
                if self.rg(*b) {
                    // dL/dB = Aᵀ G
                    let db = self.value(*a).matmul_tn(g);
                    Self::accumulate(grads, *b, db);
                }
            }
            Op::Add(a, b) => {
                if self.rg(*a) {
                    Self::accumulate(grads, *a, g.clone());
                }
                if self.rg(*b) {
                    Self::accumulate(grads, *b, g.clone());
                }
            }
            Op::Sub(a, b) => {
                if self.rg(*a) {
                    Self::accumulate(grads, *a, g.clone());
                }
                if self.rg(*b) {
                    Self::accumulate(grads, *b, g.scale(-1.0));
                }
            }
            Op::Mul(a, b) => {
                if self.rg(*a) {
                    Self::accumulate(grads, *a, g.hadamard(self.value(*b)));
                }
                if self.rg(*b) {
                    Self::accumulate(grads, *b, g.hadamard(self.value(*a)));
                }
            }
            Op::AddRowBroadcast(a, b) => {
                if self.rg(*a) {
                    Self::accumulate(grads, *a, g.clone());
                }
                if self.rg(*b) {
                    let (n, c) = g.shape();
                    let mut db = Matrix::zeros(1, c);
                    for r in 0..n {
                        for (o, &x) in db.row_mut(0).iter_mut().zip(g.row(r).iter()) {
                            *o += x;
                        }
                    }
                    Self::accumulate(grads, *b, db);
                }
            }
            Op::Scale(a, k) => {
                if self.rg(*a) {
                    Self::accumulate(grads, *a, g.scale(*k));
                }
            }
            Op::AddScalar(a, _) => {
                if self.rg(*a) {
                    Self::accumulate(grads, *a, g.clone());
                }
            }
            Op::MulScalarVar(a, s) => {
                let k = self.value(*s).scalar();
                if self.rg(*a) {
                    Self::accumulate(grads, *a, g.scale(k));
                }
                if self.rg(*s) {
                    let ds = g.hadamard(self.value(*a)).sum();
                    Self::accumulate(grads, *s, Matrix::from_vec(1, 1, vec![ds]));
                }
            }
            Op::ConcatCols(parts) => {
                let mut offset = 0;
                for &p in parts {
                    let (rows, cols) = self.shape(p);
                    if self.rg(p) {
                        let mut dp = Matrix::zeros(rows, cols);
                        for r in 0..rows {
                            dp.row_mut(r)
                                .copy_from_slice(&g.row(r)[offset..offset + cols]);
                        }
                        Self::accumulate(grads, p, dp);
                    }
                    offset += cols;
                }
            }
            Op::SliceCols(a, start) => {
                if self.rg(*a) {
                    let (rows, cols) = self.shape(*a);
                    let width = node.value.cols();
                    let mut da = Matrix::zeros(rows, cols);
                    for r in 0..rows {
                        da.row_mut(r)[*start..*start + width].copy_from_slice(g.row(r));
                    }
                    Self::accumulate(grads, *a, da);
                }
            }
            Op::VStack(parts) => {
                let mut offset = 0;
                for &p in parts {
                    let (rows, cols) = self.shape(p);
                    if self.rg(p) {
                        let mut dp = Matrix::zeros(rows, cols);
                        for r in 0..rows {
                            dp.row_mut(r).copy_from_slice(g.row(offset + r));
                        }
                        Self::accumulate(grads, p, dp);
                    }
                    offset += rows;
                }
            }
            Op::GatherRows(a, indices) => {
                if self.rg(*a) {
                    let (rows, cols) = self.shape(*a);
                    let mut da = Matrix::zeros(rows, cols);
                    for (k, &i) in indices.iter().enumerate() {
                        for (o, &x) in da.row_mut(i).iter_mut().zip(g.row(k).iter()) {
                            *o += x;
                        }
                    }
                    Self::accumulate(grads, *a, da);
                }
            }
            Op::SegmentSum {
                input,
                segment_of_row,
                ..
            } => {
                if self.rg(*input) {
                    let (rows, cols) = self.shape(*input);
                    let mut da = Matrix::zeros(rows, cols);
                    for (r, &s) in segment_of_row.iter().enumerate() {
                        da.row_mut(r).copy_from_slice(g.row(s));
                    }
                    Self::accumulate(grads, *input, da);
                }
            }
            Op::SegmentSoftmax {
                input,
                segment_of_row,
            } => {
                if self.rg(*input) {
                    // dx = y ⊙ (g - Σ_seg g ⊙ y)
                    let y = &node.value;
                    let (n, c) = y.shape();
                    let n_segments = segment_of_row.iter().copied().max().map_or(0, |m| m + 1);
                    let mut seg_dot = Matrix::zeros(n_segments, c);
                    for (r, &s) in segment_of_row.iter().enumerate() {
                        for col in 0..c {
                            seg_dot[(s, col)] += g[(r, col)] * y[(r, col)];
                        }
                    }
                    let mut da = Matrix::zeros(n, c);
                    if c > 0 {
                        kernel::par_row_chunks(da.data_mut(), c, row_grain(c), |r0, chunk| {
                            for (dr, row) in chunk.chunks_mut(c).enumerate() {
                                let r = r0 + dr;
                                let s = segment_of_row[r];
                                for (col, o) in row.iter_mut().enumerate() {
                                    *o = y[(r, col)] * (g[(r, col)] - seg_dot[(s, col)]);
                                }
                            }
                        });
                    }
                    Self::accumulate(grads, *input, da);
                }
            }
            Op::RowsDot(a, b) => {
                let (_, c) = self.shape(*a);
                let scale_rows_by_g = |src: &Matrix| {
                    let mut d = src.clone();
                    if c > 0 {
                        kernel::par_row_chunks(d.data_mut(), c, row_grain(c), |r0, chunk| {
                            for (dr, row) in chunk.chunks_mut(c).enumerate() {
                                let k = g[(r0 + dr, 0)];
                                for x in row.iter_mut() {
                                    *x *= k;
                                }
                            }
                        });
                    }
                    d
                };
                if self.rg(*a) {
                    Self::accumulate(grads, *a, scale_rows_by_g(self.value(*b)));
                }
                if self.rg(*b) {
                    Self::accumulate(grads, *b, scale_rows_by_g(self.value(*a)));
                }
            }
            Op::RowsCircCorr(a, b) => {
                let (n, d) = self.shape(*a);
                let (ma, mb) = (self.value(*a), self.value(*b));
                if self.rg(*a) && d > 0 {
                    // dL/da_i = Σ_k g_k b_{(k+i) mod d} = (g ⋆ b)_i.
                    let mut da = Matrix::zeros(n, d);
                    kernel::par_row_chunks(da.data_mut(), d, row_grain(d * d), |r0, chunk| {
                        for (dr, out) in chunk.chunks_mut(d).enumerate() {
                            let (gr, rb) = (g.row(r0 + dr), mb.row(r0 + dr));
                            for (i, o) in out.iter_mut().enumerate() {
                                let mut acc = 0.0f32;
                                for k in 0..d {
                                    acc += gr[k] * rb[(k + i) % d];
                                }
                                *o = acc;
                            }
                        }
                    });
                    Self::accumulate(grads, *a, da);
                }
                if self.rg(*b) && d > 0 {
                    // dL/db_j = Σ_k g_k a_{(j-k) mod d} (circular convolution).
                    let mut db = Matrix::zeros(n, d);
                    kernel::par_row_chunks(db.data_mut(), d, row_grain(d * d), |r0, chunk| {
                        for (dr, out) in chunk.chunks_mut(d).enumerate() {
                            let (gr, ra) = (g.row(r0 + dr), ma.row(r0 + dr));
                            for (j, o) in out.iter_mut().enumerate() {
                                let mut acc = 0.0f32;
                                for k in 0..d {
                                    acc += gr[k] * ra[(j + d - k % d) % d];
                                }
                                *o = acc;
                            }
                        }
                    });
                    Self::accumulate(grads, *b, db);
                }
            }
            Op::ScaleRows(a, s) => {
                let (n, c) = self.shape(*a);
                if self.rg(*a) && c > 0 {
                    let sv = self.value(*s);
                    let mut da = g.clone();
                    kernel::par_row_chunks(da.data_mut(), c, row_grain(c), |r0, chunk| {
                        for (dr, row) in chunk.chunks_mut(c).enumerate() {
                            let k = sv[(r0 + dr, 0)];
                            for x in row.iter_mut() {
                                *x *= k;
                            }
                        }
                    });
                    Self::accumulate(grads, *a, da);
                }
                if self.rg(*s) {
                    let mut ds = Matrix::zeros(n, 1);
                    let ma = self.value(*a);
                    kernel::par_row_chunks(ds.data_mut(), 1, row_grain(c), |r0, chunk| {
                        for (dr, out) in chunk.iter_mut().enumerate() {
                            *out = ma
                                .row(r0 + dr)
                                .iter()
                                .zip(g.row(r0 + dr).iter())
                                .map(|(&x, &gy)| x * gy)
                                .sum();
                        }
                    });
                    Self::accumulate(grads, *s, ds);
                }
            }
            Op::NormalizeRows(a) => {
                if self.rg(*a) {
                    // y = x / ‖x‖; dx = (g - y (y·g)) / ‖x‖
                    let x = self.value(*a);
                    let y = &node.value;
                    let (n, c) = x.shape();
                    let mut da = Matrix::zeros(n, c);
                    if c > 0 {
                        kernel::par_row_chunks(da.data_mut(), c, row_grain(3 * c), |r0, chunk| {
                            for (dr, row) in chunk.chunks_mut(c).enumerate() {
                                let r = r0 + dr;
                                let norm = x.row_norm(r).max(NORM_EPS);
                                let ydotg: f32 = y
                                    .row(r)
                                    .iter()
                                    .zip(g.row(r).iter())
                                    .map(|(&yy, &gg)| yy * gg)
                                    .sum();
                                for (col, o) in row.iter_mut().enumerate() {
                                    *o = (g[(r, col)] - y[(r, col)] * ydotg) / norm;
                                }
                            }
                        });
                    }
                    Self::accumulate(grads, *a, da);
                }
            }
            Op::Relu(a) => {
                if self.rg(*a) {
                    let x = self.value(*a);
                    let mut da = g.clone();
                    kernel::par_zip_apply(da.data_mut(), x.data(), |d, v| {
                        if v <= 0.0 {
                            *d = 0.0;
                        }
                    });
                    Self::accumulate(grads, *a, da);
                }
            }
            Op::LeakyRelu(a, slope) => {
                if self.rg(*a) {
                    let slope = *slope;
                    let x = self.value(*a);
                    let mut da = g.clone();
                    kernel::par_zip_apply(da.data_mut(), x.data(), |d, v| {
                        if v < 0.0 {
                            *d *= slope;
                        }
                    });
                    Self::accumulate(grads, *a, da);
                }
            }
            Op::Elu(a) => {
                if self.rg(*a) {
                    // y = eˣ - 1 for x < 0, so dy/dx = y + 1.
                    let y = &node.value;
                    let x = self.value(*a);
                    let mut da = g.clone();
                    kernel::par_zip2_apply(da.data_mut(), x.data(), y.data(), |d, v, yy| {
                        if v < 0.0 {
                            *d *= yy + 1.0;
                        }
                    });
                    Self::accumulate(grads, *a, da);
                }
            }
            Op::Sigmoid(a) => {
                if self.rg(*a) {
                    let y = &node.value;
                    let mut da = g.clone();
                    kernel::par_zip_apply(da.data_mut(), y.data(), |d, yy| {
                        *d *= yy * (1.0 - yy);
                    });
                    Self::accumulate(grads, *a, da);
                }
            }
            Op::Tanh(a) => {
                if self.rg(*a) {
                    let y = &node.value;
                    let mut da = g.clone();
                    kernel::par_zip_apply(da.data_mut(), y.data(), |d, yy| {
                        *d *= 1.0 - yy * yy;
                    });
                    Self::accumulate(grads, *a, da);
                }
            }
            Op::SumAll(a) => {
                if self.rg(*a) {
                    let (n, c) = self.shape(*a);
                    Self::accumulate(grads, *a, Matrix::full(n, c, g.scalar()));
                }
            }
            Op::MeanAll(a) => {
                if self.rg(*a) {
                    let (n, c) = self.shape(*a);
                    let k = g.scalar() / (n * c).max(1) as f32;
                    Self::accumulate(grads, *a, Matrix::full(n, c, k));
                }
            }
            Op::BceWithLogits { logits, targets } => {
                if self.rg(*logits) {
                    let x = self.value(*logits);
                    let n = targets.len();
                    let k = g.scalar() / n.max(1) as f32;
                    let mut da = Matrix::zeros(n, 1);
                    for (r, &y) in targets.iter().enumerate() {
                        da[(r, 0)] = (stable_sigmoid(x[(r, 0)]) - y) * k;
                    }
                    Self::accumulate(grads, *logits, da);
                }
            }
        }
    }
}

/// Overflow-safe logistic sigmoid.
#[inline]
pub fn stable_sigmoid(x: f32) -> f32 {
    if x >= 0.0 {
        1.0 / (1.0 + (-x).exp())
    } else {
        let e = x.exp();
        e / (1.0 + e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forward_values_matmul_chain() {
        let mut g = Graph::new();
        let a = g.leaf(Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]));
        let b = g.constant(Matrix::identity(2));
        let c = g.matmul(a, b);
        assert_eq!(g.value(c), g.value(a));
    }

    #[test]
    fn backward_through_matmul() {
        // loss = sum(A B); dL/dA = 1 Bᵀ, dL/dB = Aᵀ 1.
        let mut g = Graph::new();
        let a = g.leaf(Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]));
        let b = g.leaf(Matrix::from_vec(2, 2, vec![5.0, 6.0, 7.0, 8.0]));
        let c = g.matmul(a, b);
        let loss = g.sum_all(c);
        let grads = g.backward(loss);
        let da = grads.get(a).unwrap();
        // Row sums of B: [11, 15] repeated per row of A.
        assert_eq!(da.data(), &[11.0, 15.0, 11.0, 15.0]);
        let db = grads.get(b).unwrap();
        // Column sums of A: [4, 6] repeated per col of B.
        assert_eq!(db.data(), &[4.0, 4.0, 6.0, 6.0]);
    }

    #[test]
    fn constants_receive_no_gradient() {
        let mut g = Graph::new();
        let a = g.leaf(Matrix::ones(1, 2));
        let b = g.constant(Matrix::ones(1, 2));
        let c = g.mul(a, b);
        let loss = g.sum_all(c);
        let grads = g.backward(loss);
        assert!(grads.get(a).is_some());
        assert!(grads.get(b).is_none());
    }

    #[test]
    fn segment_softmax_rows_sum_to_one() {
        let mut g = Graph::new();
        let x = g.leaf(Matrix::from_vec(5, 1, vec![1.0, 2.0, 3.0, -1.0, 0.5]));
        let seg = vec![0, 0, 1, 1, 1];
        let y = g.segment_softmax(x, &seg);
        let v = g.value(y);
        let s0 = v[(0, 0)] + v[(1, 0)];
        let s1 = v[(2, 0)] + v[(3, 0)] + v[(4, 0)];
        assert!((s0 - 1.0).abs() < 1e-5);
        assert!((s1 - 1.0).abs() < 1e-5);
        // Larger logits get larger weights within a segment.
        assert!(v[(1, 0)] > v[(0, 0)]);
        assert!(v[(2, 0)] > v[(4, 0)] && v[(4, 0)] > v[(3, 0)]);
    }

    #[test]
    fn segment_sum_forward() {
        let mut g = Graph::new();
        let x = g.leaf(Matrix::from_vec(
            4,
            2,
            vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0],
        ));
        let y = g.segment_sum(x, &[0, 1, 0, 1], 2);
        assert_eq!(g.value(y).row(0), &[6.0, 8.0]);
        assert_eq!(g.value(y).row(1), &[10.0, 12.0]);
    }

    #[test]
    fn gather_then_segment_sum_roundtrip_gradient() {
        // sum(segment_sum(gather(X))) — every gathered row contributes once.
        let mut g = Graph::new();
        let x = g.leaf(Matrix::from_fn(3, 2, |r, c| (r * 2 + c) as f32));
        let gathered = g.gather_rows(x, &[0, 2, 2]);
        let summed = g.segment_sum(gathered, &[0, 0, 1], 2);
        let loss = g.sum_all(summed);
        let grads = g.backward(loss);
        let dx = grads.get(x).unwrap();
        assert_eq!(dx.row(0), &[1.0, 1.0]);
        assert_eq!(dx.row(1), &[0.0, 0.0]);
        assert_eq!(dx.row(2), &[2.0, 2.0]);
    }

    #[test]
    fn bce_matches_manual_computation() {
        let mut g = Graph::new();
        let logits = g.leaf(Matrix::from_vec(2, 1, vec![0.0, 2.0]));
        let loss = g.bce_with_logits(logits, &[1.0, 0.0]);
        // -ln σ(0) = ln 2; -ln(1-σ(2)) = ln(1+e²)... = 2 + ln(1+e⁻²)
        let expected = ((2.0f32).ln() + (2.0 + (1.0f32 + (-2.0f32).exp()).ln())) / 2.0;
        assert!((g.value(loss).scalar() - expected).abs() < 1e-5);
        let grads = g.backward(loss);
        let d = grads.get(logits).unwrap();
        assert!((d[(0, 0)] - (0.5 - 1.0) / 2.0).abs() < 1e-5);
        assert!((d[(1, 0)] - (stable_sigmoid(2.0) - 0.0) / 2.0).abs() < 1e-5);
    }

    #[test]
    fn normalize_rows_produces_unit_rows() {
        let mut g = Graph::new();
        let x = g.leaf(Matrix::from_vec(2, 2, vec![3.0, 4.0, 0.0, 0.0]));
        let y = g.normalize_rows(x);
        assert!((g.value(y).row_norm(0) - 1.0).abs() < 1e-5);
        // Zero row stays (numerically) zero rather than NaN.
        assert!(g.value(y).row_norm(1) < 1e-3);
        assert!(g.value(y).all_finite());
    }

    #[test]
    fn vstack_and_concat_gradients_split() {
        let mut g = Graph::new();
        let a = g.leaf(Matrix::ones(1, 2));
        let b = g.leaf(Matrix::ones(2, 2));
        let v = g.vstack(&[a, b]);
        assert_eq!(g.shape(v), (3, 2));
        let weights = g.constant(Matrix::from_vec(3, 2, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]));
        let prod = g.mul(v, weights);
        let loss = g.sum_all(prod);
        let grads = g.backward(loss);
        assert_eq!(grads.get(a).unwrap().data(), &[1.0, 2.0]);
        assert_eq!(grads.get(b).unwrap().data(), &[3.0, 4.0, 5.0, 6.0]);

        let mut g2 = Graph::new();
        let a2 = g2.leaf(Matrix::ones(2, 1));
        let b2 = g2.leaf(Matrix::ones(2, 2));
        let cc = g2.concat_cols(&[a2, b2]);
        assert_eq!(g2.shape(cc), (2, 3));
        let w = g2.constant(Matrix::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]));
        let prod2 = g2.mul(cc, w);
        let loss2 = g2.sum_all(prod2);
        let grads2 = g2.backward(loss2);
        assert_eq!(grads2.get(a2).unwrap().data(), &[1.0, 4.0]);
        assert_eq!(grads2.get(b2).unwrap().data(), &[2.0, 3.0, 5.0, 6.0]);
    }

    #[test]
    fn slice_cols_forward_and_gradient() {
        let mut g = Graph::new();
        let a = g.leaf(Matrix::from_vec(
            2,
            4,
            vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0],
        ));
        let s = g.slice_cols(a, 1, 2);
        assert_eq!(g.shape(s), (2, 2));
        assert_eq!(g.value(s).data(), &[2.0, 3.0, 6.0, 7.0]);
        let w = g.constant(Matrix::from_vec(2, 2, vec![10.0, 20.0, 30.0, 40.0]));
        let prod = g.mul(s, w);
        let loss = g.sum_all(prod);
        let grads = g.backward(loss);
        assert_eq!(
            grads.get(a).unwrap().data(),
            &[0.0, 10.0, 20.0, 0.0, 0.0, 30.0, 40.0, 0.0]
        );
    }

    #[test]
    fn slice_cols_inverts_concat_cols() {
        let mut g = Graph::new();
        let a = g.leaf(Matrix::from_vec(2, 1, vec![1.0, 2.0]));
        let b = g.leaf(Matrix::from_vec(2, 2, vec![3.0, 4.0, 5.0, 6.0]));
        let cc = g.concat_cols(&[a, b]);
        let sa = g.slice_cols(cc, 0, 1);
        let sb = g.slice_cols(cc, 1, 2);
        assert_eq!(g.value(sa).data(), g.value(a).data());
        assert_eq!(g.value(sb).data(), g.value(b).data());
    }

    #[test]
    fn mul_scalar_var_gradient() {
        let mut g = Graph::new();
        let a = g.leaf(Matrix::from_vec(1, 2, vec![2.0, 3.0]));
        let s = g.leaf(Matrix::from_vec(1, 1, vec![4.0]));
        let y = g.mul_scalar_var(a, s);
        let loss = g.sum_all(y);
        let grads = g.backward(loss);
        assert_eq!(grads.get(a).unwrap().data(), &[4.0, 4.0]);
        assert_eq!(grads.get(s).unwrap().scalar(), 5.0);
    }

    #[test]
    fn stable_sigmoid_extremes() {
        assert!(stable_sigmoid(100.0) > 0.999);
        assert!(stable_sigmoid(-100.0) < 0.001);
        assert!((stable_sigmoid(0.0) - 0.5).abs() < 1e-6);
        assert!(stable_sigmoid(1000.0).is_finite());
        assert!(stable_sigmoid(-1000.0).is_finite());
    }
}
