//! Tape-based reverse-mode automatic differentiation.
//!
//! A [`Graph`] records every operation applied to [`Var`] handles; calling
//! [`Graph::backward`] replays the tape in reverse, producing gradients for
//! every leaf created with [`Graph::leaf`].
//!
//! The op set is tailored to graph neural networks: besides the usual dense
//! ops (matmul, element-wise arithmetic, activations) it provides the
//! message-passing primitives `gather_rows`, `segment_sum` and
//! `segment_softmax`, plus row-wise kernels (`rows_dot`, `scale_rows`,
//! `normalize_rows`) used by attention and the distance-specific scoring
//! function of the PRIM paper.
//!
//! ## Buffer pool
//!
//! Full-batch training replays a structurally identical tape every epoch, so
//! the graph owns a size-keyed pool of `f32` buffers. [`Graph::reset`] clears
//! the tape and returns every node-value buffer to the pool;
//! [`Graph::recycle`] does the same for a consumed [`Gradients`]. Every op
//! (forward and backward) draws its output from the pool first, so after the
//! first epoch the forward/backward path performs ~zero heap allocations.
//! Pooled buffers are always fully initialised (zeroed, filled, copied or
//! overwritten) before use, so reuse never changes any computed value.
//!
//! For the scatter ops, `gather_rows_planned` / `segment_sum_planned` /
//! `segment_softmax_planned` accept a shared [`SegmentPlan`] built once per
//! graph structure instead of cloning an E-sized index slice per call, and
//! run their reductions in parallel by output segment (bitwise identical to
//! serial — see [`crate::segment`]).

use std::borrow::Cow;
use std::collections::HashMap;
use std::sync::Arc;

use crate::kernel;
use crate::matrix::Matrix;
use crate::segment::{self, SegmentPlan};

/// Per-row parallel grain for an op whose rows each cost `row_work`
/// flops-ish units: chunks are sized so a thread gets at least
/// [`kernel::PAR_ELEM_CUTOFF`] units of work.
fn row_grain(row_work: usize) -> usize {
    (kernel::PAR_ELEM_CUTOFF / row_work.max(1)).max(1)
}

/// Handle to a node in a [`Graph`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Var(usize);

impl Var {
    /// Index of the node inside its graph (diagnostic use only).
    pub fn index(self) -> usize {
        self.0
    }
}

/// Recorded operation for one tape node.
enum Op {
    /// Leaf node (parameter or constant input); whether it receives a
    /// gradient is the node's `requires_grad` flag.
    Leaf,
    MatMul(Var, Var),
    Add(Var, Var),
    Sub(Var, Var),
    Mul(Var, Var),
    /// `a (n×c) + b (1×c)` broadcast over rows.
    AddRowBroadcast(Var, Var),
    Scale(Var, f32),
    /// `a + k`; the constant is irrelevant to the backward pass and not
    /// stored.
    AddScalar(Var),
    /// `a × s` where `s` is a `1×1` variable.
    MulScalarVar(Var, Var),
    ConcatCols(Vec<Var>),
    /// Column window `[start, start+width)` of the source; `width` is the
    /// node's own column count.
    SliceCols(Var, usize),
    VStack(Vec<Var>),
    /// Row gather; the plan's `segment_of_row` is the index list and its CSR
    /// groups drive the backward scatter-add.
    GatherRows(Var, Arc<SegmentPlan>),
    /// Sums rows of the input into `plan.n_segments()` output rows.
    SegmentSum {
        input: Var,
        plan: Arc<SegmentPlan>,
    },
    /// Column-wise softmax within each segment.
    SegmentSoftmax {
        input: Var,
        plan: Arc<SegmentPlan>,
    },
    /// Row-wise dot product of two equal-shape matrices → `n×1`.
    RowsDot(Var, Var),
    /// Row-wise circular correlation `(a ⋆ b)_k = Σ_i a_i·b_{(k+i) mod d}`.
    RowsCircCorr(Var, Var),
    /// `a (n×c)` with row `i` scaled by `s[i]` where `s` is `n×1`.
    ScaleRows(Var, Var),
    /// Each row divided by its L2 norm (plus epsilon).
    NormalizeRows(Var),
    Relu(Var),
    LeakyRelu(Var, f32),
    Elu(Var),
    Sigmoid(Var),
    Tanh(Var),
    SumAll(Var),
    MeanAll(Var),
    /// Mean binary cross-entropy over `n×1` logits against fixed targets.
    BceWithLogits {
        logits: Var,
        targets: Arc<[f32]>,
    },
}

struct Node {
    value: Matrix,
    op: Op,
    requires_grad: bool,
}

/// Size-keyed recycling pool of `f32` buffers.
///
/// Buffers are bucketed by element count and handed back LIFO, so a tape
/// whose structure repeats across epochs reuses exactly the allocations it
/// released on [`Graph::reset`]. Every taker fully initialises the buffer it
/// receives (zero / fill / copy / overwrite), so pooling is invisible to the
/// computed values.
#[derive(Default)]
struct BufferPool {
    buckets: HashMap<usize, Vec<Vec<f32>>>,
}

impl BufferPool {
    /// Returns a buffer to the pool (empty buffers are dropped — they carry
    /// no allocation).
    fn put(&mut self, buf: Vec<f32>) {
        if buf.capacity() == 0 {
            return;
        }
        self.buckets.entry(buf.len()).or_default().push(buf);
    }

    /// Returns a matrix's buffer to the pool.
    fn put_back(&mut self, m: Matrix) {
        self.put(m.into_vec());
    }

    /// A `rows × cols` matrix with unspecified (stale) contents; the caller
    /// must overwrite every element.
    fn uninit(&mut self, rows: usize, cols: usize) -> Matrix {
        match self
            .buckets
            .get_mut(&(rows * cols))
            .and_then(|bucket| bucket.pop())
        {
            Some(buf) => Matrix::from_vec(rows, cols, buf),
            None => Matrix::zeros(rows, cols),
        }
    }

    /// A zero-filled `rows × cols` matrix.
    fn zeroed(&mut self, rows: usize, cols: usize) -> Matrix {
        match self
            .buckets
            .get_mut(&(rows * cols))
            .and_then(|bucket| bucket.pop())
        {
            Some(buf) => {
                let mut m = Matrix::from_vec(rows, cols, buf);
                m.fill_zero();
                m
            }
            None => Matrix::zeros(rows, cols),
        }
    }

    /// A `rows × cols` matrix filled with `v`.
    fn filled(&mut self, rows: usize, cols: usize, v: f32) -> Matrix {
        let mut m = self.uninit(rows, cols);
        m.fill(v);
        m
    }

    /// A copy of `src` in a pooled buffer.
    fn copy_of(&mut self, src: &Matrix) -> Matrix {
        match self
            .buckets
            .get_mut(&src.len())
            .and_then(|bucket| bucket.pop())
        {
            Some(mut buf) => {
                buf.copy_from_slice(src.data());
                Matrix::from_vec(src.rows(), src.cols(), buf)
            }
            None => src.clone(),
        }
    }
}

/// Gradients produced by [`Graph::backward`].
pub struct Gradients {
    grads: Vec<Option<Matrix>>,
}

impl Gradients {
    /// Gradient of the loss w.r.t. `var`, if it participated in the loss.
    pub fn get(&self, var: Var) -> Option<&Matrix> {
        self.grads.get(var.0).and_then(|g| g.as_ref())
    }

    /// Gradient of the loss w.r.t. `var` — borrowed when present (never
    /// cloned), an owned zero matrix of the given shape otherwise.
    pub fn get_or_zeros(&self, var: Var, rows: usize, cols: usize) -> Cow<'_, Matrix> {
        match self.get(var) {
            Some(g) => Cow::Borrowed(g),
            None => Cow::Owned(Matrix::zeros(rows, cols)),
        }
    }
}

/// A computation tape with an epoch-persistent buffer pool.
///
/// Build the graph once per training run: register parameter matrices with
/// [`Graph::leaf`] (or, after a reset, [`Graph::leaf_ref`]), inputs with
/// [`Graph::constant`] / [`Graph::constant_ref`], chain ops, call
/// [`Graph::backward`] on the scalar loss, then [`Graph::recycle`] the
/// gradients and [`Graph::reset`] the tape before the next step — steady
/// state steps then run allocation-free.
#[derive(Default)]
pub struct Graph {
    nodes: Vec<Node>,
    pool: BufferPool,
    /// Recycled gradient-slot vector, reused by the next backward pass.
    spare_grads: Vec<Option<Matrix>>,
}

const NORM_EPS: f32 = 1e-12;

/// Scales row `i` of `dst` by `s[i]` (`s` is `n×1`), in parallel.
fn scale_rows_in_place(dst: &mut Matrix, s: &Matrix) {
    let c = dst.cols();
    if c == 0 {
        return;
    }
    kernel::par_row_chunks(dst.data_mut(), c, row_grain(c), |r0, chunk| {
        for (dr, row) in chunk.chunks_mut(c).enumerate() {
            let k = s[(r0 + dr, 0)];
            for x in row.iter_mut() {
                *x *= k;
            }
        }
    });
}

impl Graph {
    /// Creates an empty graph with an empty buffer pool.
    pub fn new() -> Self {
        Graph::default()
    }

    /// Number of recorded nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True if no node has been recorded.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Clears the tape, retaining every node-value buffer in the internal
    /// pool so the next epoch's structurally identical tape reuses them
    /// instead of allocating.
    pub fn reset(&mut self) {
        let mut nodes = std::mem::take(&mut self.nodes);
        for node in nodes.drain(..) {
            self.pool.put_back(node.value);
        }
        self.nodes = nodes;
    }

    /// Returns a consumed [`Gradients`]' buffers (and its slot vector) to
    /// the pool. Call once the optimiser has applied the step.
    pub fn recycle(&mut self, grads: Gradients) {
        let mut slots = grads.grads;
        for slot in slots.iter_mut() {
            if let Some(m) = slot.take() {
                self.pool.put_back(m);
            }
        }
        self.spare_grads = slots;
    }

    /// Number of idle buffers currently held by the pool (diagnostics).
    pub fn pooled_buffers(&self) -> usize {
        self.pool.buckets.values().map(|b| b.len()).sum()
    }

    fn push(&mut self, value: Matrix, op: Op, requires_grad: bool) -> Var {
        self.nodes.push(Node {
            value,
            op,
            requires_grad,
        });
        Var(self.nodes.len() - 1)
    }

    fn rg(&self, v: Var) -> bool {
        self.nodes[v.0].requires_grad
    }

    /// Registers a non-trainable input (no gradient is computed for it).
    pub fn constant(&mut self, m: Matrix) -> Var {
        self.push(m, Op::Leaf, false)
    }

    /// Like [`Graph::constant`], but copies the borrowed matrix into a
    /// pooled buffer — the allocation-free way to re-register an unchanged
    /// input after [`Graph::reset`].
    pub fn constant_ref(&mut self, m: &Matrix) -> Var {
        let value = self.pool.copy_of(m);
        self.push(value, Op::Leaf, false)
    }

    /// Registers a trainable leaf; [`Gradients::get`] will return its gradient.
    pub fn leaf(&mut self, m: Matrix) -> Var {
        self.push(m, Op::Leaf, true)
    }

    /// Like [`Graph::leaf`], but copies the borrowed matrix into a pooled
    /// buffer — used by parameter stores to re-bind parameters every epoch
    /// without allocating.
    pub fn leaf_ref(&mut self, m: &Matrix) -> Var {
        let value = self.pool.copy_of(m);
        self.push(value, Op::Leaf, true)
    }

    /// Value of a node.
    pub fn value(&self, v: Var) -> &Matrix {
        &self.nodes[v.0].value
    }

    /// Shape of a node's value.
    pub fn shape(&self, v: Var) -> (usize, usize) {
        self.nodes[v.0].value.shape()
    }

    /// Matrix product.
    pub fn matmul(&mut self, a: Var, b: Var) -> Var {
        let (m, n) = (self.shape(a).0, self.shape(b).1);
        let mut value = self.pool.uninit(m, n);
        self.nodes[a.0]
            .value
            .matmul_into(&self.nodes[b.0].value, &mut value);
        let rg = self.rg(a) || self.rg(b);
        self.push(value, Op::MatMul(a, b), rg)
    }

    /// Element-wise sum.
    pub fn add(&mut self, a: Var, b: Var) -> Var {
        assert_eq!(self.shape(a), self.shape(b), "add shape mismatch");
        let mut value = self.pool.copy_of(&self.nodes[a.0].value);
        kernel::par_zip_apply(value.data_mut(), self.nodes[b.0].value.data(), |x, y| {
            *x += y
        });
        let rg = self.rg(a) || self.rg(b);
        self.push(value, Op::Add(a, b), rg)
    }

    /// Element-wise difference.
    pub fn sub(&mut self, a: Var, b: Var) -> Var {
        assert_eq!(self.shape(a), self.shape(b), "sub shape mismatch");
        let mut value = self.pool.copy_of(&self.nodes[a.0].value);
        kernel::par_zip_apply(value.data_mut(), self.nodes[b.0].value.data(), |x, y| {
            *x -= y
        });
        let rg = self.rg(a) || self.rg(b);
        self.push(value, Op::Sub(a, b), rg)
    }

    /// Element-wise (Hadamard) product.
    pub fn mul(&mut self, a: Var, b: Var) -> Var {
        assert_eq!(self.shape(a), self.shape(b), "mul shape mismatch");
        let mut value = self.pool.copy_of(&self.nodes[a.0].value);
        kernel::par_zip_apply(value.data_mut(), self.nodes[b.0].value.data(), |x, y| {
            *x *= y
        });
        let rg = self.rg(a) || self.rg(b);
        self.push(value, Op::Mul(a, b), rg)
    }

    /// Adds a `1×c` row vector to every row of an `n×c` matrix.
    pub fn add_row_broadcast(&mut self, a: Var, b: Var) -> Var {
        let (_, c) = self.shape(a);
        assert_eq!(self.shape(b), (1, c), "add_row_broadcast: b must be 1x{c}");
        let mut value = self.pool.copy_of(&self.nodes[a.0].value);
        if c > 0 {
            let bm = &self.nodes[b.0].value;
            kernel::par_row_chunks(value.data_mut(), c, row_grain(c), |_, chunk| {
                for row in chunk.chunks_mut(c) {
                    for (x, &y) in row.iter_mut().zip(bm.row(0)) {
                        *x += y;
                    }
                }
            });
        }
        let rg = self.rg(a) || self.rg(b);
        self.push(value, Op::AddRowBroadcast(a, b), rg)
    }

    /// Multiplies every element by the constant `k`.
    pub fn scale(&mut self, a: Var, k: f32) -> Var {
        let mut value = self.pool.copy_of(&self.nodes[a.0].value);
        kernel::par_apply(value.data_mut(), |v| *v *= k);
        let rg = self.rg(a);
        self.push(value, Op::Scale(a, k), rg)
    }

    /// Adds the constant `k` to every element.
    pub fn add_scalar(&mut self, a: Var, k: f32) -> Var {
        let mut value = self.pool.copy_of(&self.nodes[a.0].value);
        kernel::par_apply(value.data_mut(), |v| *v += k);
        let rg = self.rg(a);
        self.push(value, Op::AddScalar(a), rg)
    }

    /// Multiplies a matrix by a `1×1` variable.
    pub fn mul_scalar_var(&mut self, a: Var, s: Var) -> Var {
        assert_eq!(self.shape(s), (1, 1), "mul_scalar_var: s must be 1x1");
        let k = self.nodes[s.0].value.scalar();
        let mut value = self.pool.copy_of(&self.nodes[a.0].value);
        kernel::par_apply(value.data_mut(), |v| *v *= k);
        let rg = self.rg(a) || self.rg(s);
        self.push(value, Op::MulScalarVar(a, s), rg)
    }

    /// Horizontal concatenation of equally-tall matrices.
    pub fn concat_cols(&mut self, parts: &[Var]) -> Var {
        assert!(!parts.is_empty(), "concat_cols of zero parts");
        let rows = self.shape(parts[0]).0;
        let mut cols = 0usize;
        for &p in parts {
            let (r, c) = self.shape(p);
            assert_eq!(r, rows, "concat_cols row mismatch");
            cols += c;
        }
        let mut value = self.pool.uninit(rows, cols);
        if cols > 0 {
            let nodes = &self.nodes;
            kernel::par_row_chunks(value.data_mut(), cols, row_grain(cols), |r0, chunk| {
                for (dr, row) in chunk.chunks_mut(cols).enumerate() {
                    let r = r0 + dr;
                    let mut offset = 0;
                    for &p in parts {
                        let m = &nodes[p.0].value;
                        row[offset..offset + m.cols()].copy_from_slice(m.row(r));
                        offset += m.cols();
                    }
                }
            });
        }
        let rg = parts.iter().any(|&v| self.rg(v));
        self.push(value, Op::ConcatCols(parts.to_vec()), rg)
    }

    /// Copies the column window `[start, start + width)` of `a` into a new
    /// node — the inverse of [`Graph::concat_cols`], used to fan a batched
    /// multi-head projection back out into per-head views.
    pub fn slice_cols(&mut self, a: Var, start: usize, width: usize) -> Var {
        let (n, c) = self.shape(a);
        assert!(
            start + width <= c,
            "slice_cols window [{start}, {}) out of range for {c} columns",
            start + width
        );
        let mut value = self.pool.uninit(n, width);
        if width > 0 {
            let input = &self.nodes[a.0].value;
            kernel::par_row_chunks(value.data_mut(), width, row_grain(width), |r0, chunk| {
                for (dr, row) in chunk.chunks_mut(width).enumerate() {
                    row.copy_from_slice(&input.row(r0 + dr)[start..start + width]);
                }
            });
        }
        let rg = self.rg(a);
        self.push(value, Op::SliceCols(a, start), rg)
    }

    /// Vertical concatenation of equally-wide matrices.
    pub fn vstack(&mut self, parts: &[Var]) -> Var {
        assert!(!parts.is_empty(), "vstack of zero parts");
        let cols = self.shape(parts[0]).1;
        let mut rows = 0usize;
        for &p in parts {
            let (r, c) = self.shape(p);
            assert_eq!(c, cols, "vstack column mismatch");
            rows += r;
        }
        let mut value = self.pool.uninit(rows, cols);
        let mut offset = 0;
        for &p in parts {
            let m = &self.nodes[p.0].value;
            value.data_mut()[offset..offset + m.len()].copy_from_slice(m.data());
            offset += m.len();
        }
        let rg = parts.iter().any(|&v| self.rg(v));
        self.push(value, Op::VStack(parts.to_vec()), rg)
    }

    /// Gathers rows by index (rows may repeat). The backward pass
    /// scatter-adds into the source.
    ///
    /// Builds a throwaway [`SegmentPlan`] per call; hot paths should build
    /// the plan once and use [`Graph::gather_rows_planned`].
    pub fn gather_rows(&mut self, a: Var, indices: &[usize]) -> Var {
        let n_rows = self.shape(a).0;
        let plan = Arc::new(SegmentPlan::new(indices.to_vec(), n_rows));
        self.gather_rows_planned(a, &plan)
    }

    /// [`Graph::gather_rows`] with a precomputed shared plan
    /// (`plan.segment_of_row()` is the index list; `plan.n_segments()` must
    /// equal the source's row count).
    pub fn gather_rows_planned(&mut self, a: Var, plan: &Arc<SegmentPlan>) -> Var {
        let (rows, c) = self.shape(a);
        assert_eq!(
            plan.n_segments(),
            rows,
            "gather_rows plan was built for a {}-row source, matrix has {rows} rows",
            plan.n_segments()
        );
        let mut value = self.pool.uninit(plan.len(), c);
        segment::broadcast_segments_into(&self.nodes[a.0].value, plan, &mut value);
        let rg = self.rg(a);
        self.push(value, Op::GatherRows(a, Arc::clone(plan)), rg)
    }

    /// Sums rows into segments: output row `s` is the sum of input rows `r`
    /// with `segment_of_row[r] == s`.
    ///
    /// Builds a throwaway [`SegmentPlan`] per call; hot paths should build
    /// the plan once and use [`Graph::segment_sum_planned`].
    pub fn segment_sum(&mut self, a: Var, segment_of_row: &[usize], n_segments: usize) -> Var {
        let plan = Arc::new(SegmentPlan::new(segment_of_row.to_vec(), n_segments));
        self.segment_sum_planned(a, &plan)
    }

    /// [`Graph::segment_sum`] with a precomputed shared plan.
    pub fn segment_sum_planned(&mut self, a: Var, plan: &Arc<SegmentPlan>) -> Var {
        let (n, c) = self.shape(a);
        assert_eq!(plan.len(), n, "segment_sum: segment map length mismatch");
        let mut value = self.pool.zeroed(plan.n_segments(), c);
        segment::segment_sum_into(&self.nodes[a.0].value, plan, &mut value);
        let rg = self.rg(a);
        self.push(
            value,
            Op::SegmentSum {
                input: a,
                plan: Arc::clone(plan),
            },
            rg,
        )
    }

    /// Softmax within each segment, applied independently per column.
    ///
    /// For every column `c` and segment `s`, the entries
    /// `{a[r][c] : segment_of_row[r] == s}` are replaced by their softmax.
    /// Numerically stabilised by subtracting the per-segment maximum.
    ///
    /// Builds a throwaway [`SegmentPlan`] per call; hot paths should build
    /// the plan once and use [`Graph::segment_softmax_planned`].
    pub fn segment_softmax(&mut self, a: Var, segment_of_row: &[usize]) -> Var {
        let n_segments = segment_of_row.iter().copied().max().map_or(0, |m| m + 1);
        let plan = Arc::new(SegmentPlan::new(segment_of_row.to_vec(), n_segments));
        self.segment_softmax_planned(a, &plan)
    }

    /// [`Graph::segment_softmax`] with a precomputed shared plan.
    pub fn segment_softmax_planned(&mut self, a: Var, plan: &Arc<SegmentPlan>) -> Var {
        let (n, c) = self.shape(a);
        assert_eq!(
            plan.len(),
            n,
            "segment_softmax: segment map length mismatch"
        );
        let n_segments = plan.n_segments();
        let mut seg_max = self.pool.filled(n_segments, c, f32::NEG_INFINITY);
        let mut seg_sum = self.pool.zeroed(n_segments, c);
        let mut value = self.pool.uninit(n, c);
        {
            let input = &self.nodes[a.0].value;
            let seg = plan.segment_of_row();
            segment::segment_max_into(input, plan, &mut seg_max);
            // The exponentiation and division passes are per-row independent;
            // the two segment reductions (max above, sum below) parallelise
            // by output segment, accumulating each segment in serial row
            // order.
            if c > 0 {
                kernel::par_row_chunks(value.data_mut(), c, row_grain(c), |r0, chunk| {
                    for (dr, row) in chunk.chunks_mut(c).enumerate() {
                        let r = r0 + dr;
                        let (irow, mrow) = (input.row(r), seg_max.row(seg[r]));
                        for ((e, &x), &mx) in row.iter_mut().zip(irow).zip(mrow) {
                            *e = (x - mx).exp();
                        }
                    }
                });
            }
            segment::segment_sum_into(&value, plan, &mut seg_sum);
            if c > 0 {
                kernel::par_row_chunks(value.data_mut(), c, row_grain(c), |r0, chunk| {
                    for (dr, row) in chunk.chunks_mut(c).enumerate() {
                        let srow = seg_sum.row(seg[r0 + dr]);
                        for (v, &s) in row.iter_mut().zip(srow) {
                            *v /= s.max(NORM_EPS);
                        }
                    }
                });
            }
        }
        self.pool.put_back(seg_max);
        self.pool.put_back(seg_sum);
        let rg = self.rg(a);
        self.push(
            value,
            Op::SegmentSoftmax {
                input: a,
                plan: Arc::clone(plan),
            },
            rg,
        )
    }

    /// Row-wise dot product of two equal-shape matrices, yielding `n×1`.
    pub fn rows_dot(&mut self, a: Var, b: Var) -> Var {
        let (n, c) = self.shape(a);
        assert_eq!(self.shape(b), (n, c), "rows_dot shape mismatch");
        let mut value = self.pool.uninit(n, 1);
        {
            let (ma, mb) = (&self.nodes[a.0].value, &self.nodes[b.0].value);
            kernel::par_row_chunks(value.data_mut(), 1, row_grain(c), |r0, chunk| {
                for (dr, out) in chunk.iter_mut().enumerate() {
                    *out = ma.row_dot(r0 + dr, mb, r0 + dr);
                }
            });
        }
        let rg = self.rg(a) || self.rg(b);
        self.push(value, Op::RowsDot(a, b), rg)
    }

    /// Row-wise circular correlation (Nickel et al.'s HolE composition,
    /// one of the relation-specific operators the PRIM paper lists for
    /// `γ(h_p, h_r)`): `out[r][k] = Σ_i a[r][i] · b[r][(k+i) mod d]`.
    pub fn rows_circ_corr(&mut self, a: Var, b: Var) -> Var {
        let (n, d) = self.shape(a);
        assert_eq!(self.shape(b), (n, d), "rows_circ_corr shape mismatch");
        let mut value = self.pool.uninit(n, d);
        if d > 0 {
            let (ma, mb) = (&self.nodes[a.0].value, &self.nodes[b.0].value);
            kernel::par_row_chunks(value.data_mut(), d, row_grain(d * d), |r0, chunk| {
                for (dr, out) in chunk.chunks_mut(d).enumerate() {
                    let (ra, rb) = (ma.row(r0 + dr), mb.row(r0 + dr));
                    for (k, o) in out.iter_mut().enumerate() {
                        let mut acc = 0.0f32;
                        for i in 0..d {
                            acc += ra[i] * rb[(k + i) % d];
                        }
                        *o = acc;
                    }
                }
            });
        }
        let rg = self.rg(a) || self.rg(b);
        self.push(value, Op::RowsCircCorr(a, b), rg)
    }

    /// Scales row `i` of `a (n×c)` by `s[i]`, where `s` is `n×1`.
    pub fn scale_rows(&mut self, a: Var, s: Var) -> Var {
        let (n, _) = self.shape(a);
        assert_eq!(self.shape(s), (n, 1), "scale_rows: scale must be {n}x1");
        let mut value = self.pool.copy_of(&self.nodes[a.0].value);
        scale_rows_in_place(&mut value, &self.nodes[s.0].value);
        let rg = self.rg(a) || self.rg(s);
        self.push(value, Op::ScaleRows(a, s), rg)
    }

    /// L2-normalises each row (rows of zeros stay zero thanks to an epsilon).
    pub fn normalize_rows(&mut self, a: Var) -> Var {
        let (_, c) = self.shape(a);
        let mut value = self.pool.copy_of(&self.nodes[a.0].value);
        if c > 0 {
            kernel::par_row_chunks(value.data_mut(), c, row_grain(2 * c), |_, chunk| {
                for row in chunk.chunks_mut(c) {
                    let norm = row.iter().map(|v| v * v).sum::<f32>().sqrt().max(NORM_EPS);
                    for x in row.iter_mut() {
                        *x /= norm;
                    }
                }
            });
        }
        let rg = self.rg(a);
        self.push(value, Op::NormalizeRows(a), rg)
    }

    /// Rectified linear unit.
    pub fn relu(&mut self, a: Var) -> Var {
        let mut value = self.pool.copy_of(&self.nodes[a.0].value);
        kernel::par_apply(value.data_mut(), |v| *v = v.max(0.0));
        let rg = self.rg(a);
        self.push(value, Op::Relu(a), rg)
    }

    /// Leaky ReLU with the given negative slope.
    pub fn leaky_relu(&mut self, a: Var, slope: f32) -> Var {
        let mut value = self.pool.copy_of(&self.nodes[a.0].value);
        kernel::par_apply(value.data_mut(), |v| {
            if *v < 0.0 {
                *v *= slope;
            }
        });
        let rg = self.rg(a);
        self.push(value, Op::LeakyRelu(a, slope), rg)
    }

    /// Exponential linear unit (α = 1).
    pub fn elu(&mut self, a: Var) -> Var {
        let mut value = self.pool.copy_of(&self.nodes[a.0].value);
        kernel::par_apply(value.data_mut(), |v| {
            if *v < 0.0 {
                *v = v.exp() - 1.0;
            }
        });
        let rg = self.rg(a);
        self.push(value, Op::Elu(a), rg)
    }

    /// Logistic sigmoid.
    pub fn sigmoid(&mut self, a: Var) -> Var {
        let mut value = self.pool.copy_of(&self.nodes[a.0].value);
        kernel::par_apply(value.data_mut(), |v| *v = stable_sigmoid(*v));
        let rg = self.rg(a);
        self.push(value, Op::Sigmoid(a), rg)
    }

    /// Hyperbolic tangent.
    pub fn tanh(&mut self, a: Var) -> Var {
        let mut value = self.pool.copy_of(&self.nodes[a.0].value);
        kernel::par_apply(value.data_mut(), |v| *v = v.tanh());
        let rg = self.rg(a);
        self.push(value, Op::Tanh(a), rg)
    }

    /// Sum of all elements → `1×1`.
    pub fn sum_all(&mut self, a: Var) -> Var {
        let s = self.nodes[a.0].value.sum();
        let mut value = self.pool.uninit(1, 1);
        value.data_mut()[0] = s;
        let rg = self.rg(a);
        self.push(value, Op::SumAll(a), rg)
    }

    /// Mean of all elements → `1×1`.
    pub fn mean_all(&mut self, a: Var) -> Var {
        let m = self.nodes[a.0].value.mean();
        let mut value = self.pool.uninit(1, 1);
        value.data_mut()[0] = m;
        let rg = self.rg(a);
        self.push(value, Op::MeanAll(a), rg)
    }

    /// Numerically stable mean binary cross-entropy with logits.
    ///
    /// `logits` must be `n×1` and `targets` must have `n` entries in `[0, 1]`.
    /// Copies the targets per call; hot paths should hold an `Arc<[f32]>`
    /// and use [`Graph::bce_with_logits_shared`].
    pub fn bce_with_logits(&mut self, logits: Var, targets: &[f32]) -> Var {
        self.bce_with_logits_shared(logits, &Arc::from(targets))
    }

    /// [`Graph::bce_with_logits`] with shared targets (no per-call copy).
    pub fn bce_with_logits_shared(&mut self, logits: Var, targets: &Arc<[f32]>) -> Var {
        let (n, c) = self.shape(logits);
        assert_eq!(c, 1, "bce_with_logits expects n×1 logits");
        assert_eq!(targets.len(), n, "bce_with_logits target length mismatch");
        let mut total = 0.0f64;
        for (r, &y) in targets.iter().enumerate() {
            let x = self.nodes[logits.0].value[(r, 0)];
            // max(x,0) - x*y + ln(1 + exp(-|x|))
            total += (x.max(0.0) - x * y + (-x.abs()).exp().ln_1p()) as f64;
        }
        let mut value = self.pool.uninit(1, 1);
        value.data_mut()[0] = (total / n.max(1) as f64) as f32;
        let rg = self.rg(logits);
        self.push(
            value,
            Op::BceWithLogits {
                logits,
                targets: Arc::clone(targets),
            },
            rg,
        )
    }

    /// Runs the reverse pass from `loss` (which must be `1×1`) and returns
    /// gradients for every participating node. Gradient buffers come from
    /// the graph's pool; hand them back with [`Graph::recycle`] once
    /// consumed.
    pub fn backward(&mut self, loss: Var) -> Gradients {
        assert_eq!(
            self.shape(loss),
            (1, 1),
            "backward: loss must be a 1×1 scalar"
        );
        let (mut grads, mut pool) = self.grad_slots();
        grads[loss.0] = Some(pool.filled(1, 1, 1.0));
        self.run_backward(loss.0, grads, pool)
    }

    /// Runs the reverse pass from externally supplied gradient *seeds*
    /// instead of a scalar loss: each `(var, seed)` pair injects `seed` as
    /// `dL/d(var)`, and the walk propagates from the highest seeded node
    /// down. Seeds at the same `var` accumulate.
    ///
    /// This is the tape half of batch-level parallelism: the scoring
    /// subgraph (gather → hyperplane projection → DistMult → BCE) is
    /// differentiated off-tape, sharded across the worker pool, and its
    /// reduced gradients re-enter here at the encoder outputs — the encoder
    /// backward then proceeds exactly as if the scoring ops had been taped.
    ///
    /// Seed buffers should come from [`Graph::scratch_uninit`] /
    /// [`Graph::scratch_zeroed`] so the round trip stays allocation-free;
    /// they are consumed into the returned [`Gradients`] and recycled by
    /// [`Graph::recycle`] as usual.
    ///
    /// # Panics
    /// Panics if a seed's shape differs from its node's value shape.
    pub fn backward_seeded(&mut self, seeds: Vec<(Var, Matrix)>) -> Gradients {
        let (mut grads, mut pool) = self.grad_slots();
        let mut top = 0usize;
        for (var, seed) in seeds {
            assert_eq!(
                self.shape(var),
                seed.shape(),
                "backward_seeded: seed shape mismatch at node {}",
                var.0
            );
            top = top.max(var.0);
            Self::accumulate(&mut pool, &mut grads, var, seed);
        }
        self.run_backward(top, grads, pool)
    }

    /// Fresh (recycled) gradient-slot vector plus the pool, detached for a
    /// backward walk.
    fn grad_slots(&mut self) -> (Vec<Option<Matrix>>, BufferPool) {
        let mut grads = std::mem::take(&mut self.spare_grads);
        grads.clear();
        grads.resize_with(self.nodes.len(), || None);
        (grads, std::mem::take(&mut self.pool))
    }

    /// The reverse walk shared by [`Graph::backward`] and
    /// [`Graph::backward_seeded`].
    fn run_backward(
        &mut self,
        top: usize,
        mut grads: Vec<Option<Matrix>>,
        mut pool: BufferPool,
    ) -> Gradients {
        for idx in (0..=top).rev() {
            if !self.nodes[idx].requires_grad {
                continue;
            }
            let g = match grads[idx].take() {
                Some(g) => g,
                None => continue,
            };
            self.backprop_node(idx, &g, &mut grads, &mut pool);
            grads[idx] = Some(g);
        }
        self.pool = pool;
        Gradients { grads }
    }

    /// A `rows × cols` matrix from the graph's buffer pool with unspecified
    /// contents — off-tape scratch (e.g. the batch-parallel scorer's
    /// per-triple gradient rows) that recycles with the tape. Return it via
    /// [`Graph::give_back`] (or hand it to [`Graph::backward_seeded`], which
    /// consumes it into the gradients).
    pub fn scratch_uninit(&mut self, rows: usize, cols: usize) -> Matrix {
        self.pool.uninit(rows, cols)
    }

    /// Zero-filled variant of [`Graph::scratch_uninit`].
    pub fn scratch_zeroed(&mut self, rows: usize, cols: usize) -> Matrix {
        self.pool.zeroed(rows, cols)
    }

    /// Returns an off-tape scratch matrix to the graph's buffer pool.
    pub fn give_back(&mut self, m: Matrix) {
        self.pool.put_back(m);
    }

    /// Adds `delta` into `var`'s gradient slot, recycling `delta`'s buffer
    /// when the slot was already populated.
    fn accumulate(pool: &mut BufferPool, grads: &mut [Option<Matrix>], var: Var, delta: Matrix) {
        match &mut grads[var.0] {
            Some(g) => {
                g.add_assign(&delta);
                pool.put_back(delta);
            }
            slot @ None => *slot = Some(delta),
        }
    }

    fn backprop_node(
        &self,
        idx: usize,
        g: &Matrix,
        grads: &mut [Option<Matrix>],
        pool: &mut BufferPool,
    ) {
        let node = &self.nodes[idx];
        match &node.op {
            Op::Leaf => {}
            Op::MatMul(a, b) => {
                if self.rg(*a) {
                    // dL/dA = G Bᵀ
                    let (rows, cols) = self.shape(*a);
                    let mut da = pool.uninit(rows, cols);
                    g.matmul_nt_into(self.value(*b), &mut da);
                    Self::accumulate(pool, grads, *a, da);
                }
                if self.rg(*b) {
                    // dL/dB = Aᵀ G
                    let (rows, cols) = self.shape(*b);
                    let mut db = pool.uninit(rows, cols);
                    self.value(*a).matmul_tn_into(g, &mut db);
                    Self::accumulate(pool, grads, *b, db);
                }
            }
            Op::Add(a, b) => {
                if self.rg(*a) {
                    let da = pool.copy_of(g);
                    Self::accumulate(pool, grads, *a, da);
                }
                if self.rg(*b) {
                    let db = pool.copy_of(g);
                    Self::accumulate(pool, grads, *b, db);
                }
            }
            Op::Sub(a, b) => {
                if self.rg(*a) {
                    let da = pool.copy_of(g);
                    Self::accumulate(pool, grads, *a, da);
                }
                if self.rg(*b) {
                    let mut db = pool.copy_of(g);
                    kernel::par_apply(db.data_mut(), |v| *v = -*v);
                    Self::accumulate(pool, grads, *b, db);
                }
            }
            Op::Mul(a, b) => {
                if self.rg(*a) {
                    let mut da = pool.copy_of(g);
                    kernel::par_zip_apply(da.data_mut(), self.value(*b).data(), |x, y| *x *= y);
                    Self::accumulate(pool, grads, *a, da);
                }
                if self.rg(*b) {
                    let mut db = pool.copy_of(g);
                    kernel::par_zip_apply(db.data_mut(), self.value(*a).data(), |x, y| *x *= y);
                    Self::accumulate(pool, grads, *b, db);
                }
            }
            Op::AddRowBroadcast(a, b) => {
                if self.rg(*a) {
                    let da = pool.copy_of(g);
                    Self::accumulate(pool, grads, *a, da);
                }
                if self.rg(*b) {
                    let (n, c) = g.shape();
                    let mut db = pool.zeroed(1, c);
                    for r in 0..n {
                        for (o, &x) in db.row_mut(0).iter_mut().zip(g.row(r).iter()) {
                            *o += x;
                        }
                    }
                    Self::accumulate(pool, grads, *b, db);
                }
            }
            Op::Scale(a, k) => {
                if self.rg(*a) {
                    let k = *k;
                    let mut da = pool.copy_of(g);
                    kernel::par_apply(da.data_mut(), |v| *v *= k);
                    Self::accumulate(pool, grads, *a, da);
                }
            }
            Op::AddScalar(a) => {
                if self.rg(*a) {
                    let da = pool.copy_of(g);
                    Self::accumulate(pool, grads, *a, da);
                }
            }
            Op::MulScalarVar(a, s) => {
                let k = self.value(*s).scalar();
                if self.rg(*a) {
                    let mut da = pool.copy_of(g);
                    kernel::par_apply(da.data_mut(), |v| *v *= k);
                    Self::accumulate(pool, grads, *a, da);
                }
                if self.rg(*s) {
                    let ds = g.hadamard(self.value(*a)).sum();
                    let mut dm = pool.uninit(1, 1);
                    dm.data_mut()[0] = ds;
                    Self::accumulate(pool, grads, *s, dm);
                }
            }
            Op::ConcatCols(parts) => {
                let mut offset = 0;
                for &p in parts {
                    let (rows, cols) = self.shape(p);
                    if self.rg(p) {
                        let mut dp = pool.uninit(rows, cols);
                        for r in 0..rows {
                            dp.row_mut(r)
                                .copy_from_slice(&g.row(r)[offset..offset + cols]);
                        }
                        Self::accumulate(pool, grads, p, dp);
                    }
                    offset += cols;
                }
            }
            Op::SliceCols(a, start) => {
                if self.rg(*a) {
                    let (rows, cols) = self.shape(*a);
                    let width = node.value.cols();
                    let mut da = pool.zeroed(rows, cols);
                    for r in 0..rows {
                        da.row_mut(r)[*start..*start + width].copy_from_slice(g.row(r));
                    }
                    Self::accumulate(pool, grads, *a, da);
                }
            }
            Op::VStack(parts) => {
                let mut offset = 0;
                for &p in parts {
                    let (rows, cols) = self.shape(p);
                    if self.rg(p) {
                        let mut dp = pool.uninit(rows, cols);
                        for r in 0..rows {
                            dp.row_mut(r).copy_from_slice(g.row(offset + r));
                        }
                        Self::accumulate(pool, grads, p, dp);
                    }
                    offset += rows;
                }
            }
            Op::GatherRows(a, plan) => {
                if self.rg(*a) {
                    // Scatter-add: source row i accumulates the gathered
                    // slots that read it, in ascending slot order — the
                    // segment-sum kernel with the gather plan.
                    let (rows, cols) = self.shape(*a);
                    let mut da = pool.zeroed(rows, cols);
                    segment::segment_sum_into(g, plan, &mut da);
                    Self::accumulate(pool, grads, *a, da);
                }
            }
            Op::SegmentSum { input, plan } => {
                if self.rg(*input) {
                    let (rows, cols) = self.shape(*input);
                    let mut da = pool.uninit(rows, cols);
                    segment::broadcast_segments_into(g, plan, &mut da);
                    Self::accumulate(pool, grads, *input, da);
                }
            }
            Op::SegmentSoftmax { input, plan } => {
                if self.rg(*input) {
                    // dx = y ⊙ (g - Σ_seg g ⊙ y)
                    let y = &node.value;
                    let (n, c) = y.shape();
                    let mut seg_dot = pool.zeroed(plan.n_segments(), c);
                    segment::segment_dot_into(g, y, plan, &mut seg_dot);
                    let mut da = pool.uninit(n, c);
                    if c > 0 {
                        let seg = plan.segment_of_row();
                        kernel::par_row_chunks(da.data_mut(), c, row_grain(c), |r0, chunk| {
                            for (dr, row) in chunk.chunks_mut(c).enumerate() {
                                let r = r0 + dr;
                                let (yrow, grow, drow) = (y.row(r), g.row(r), seg_dot.row(seg[r]));
                                for (((o, &yy), &gg), &dd) in
                                    row.iter_mut().zip(yrow).zip(grow).zip(drow)
                                {
                                    *o = yy * (gg - dd);
                                }
                            }
                        });
                    }
                    pool.put_back(seg_dot);
                    Self::accumulate(pool, grads, *input, da);
                }
            }
            Op::RowsDot(a, b) => {
                if self.rg(*a) {
                    let mut da = pool.copy_of(self.value(*b));
                    scale_rows_in_place(&mut da, g);
                    Self::accumulate(pool, grads, *a, da);
                }
                if self.rg(*b) {
                    let mut db = pool.copy_of(self.value(*a));
                    scale_rows_in_place(&mut db, g);
                    Self::accumulate(pool, grads, *b, db);
                }
            }
            Op::RowsCircCorr(a, b) => {
                let (n, d) = self.shape(*a);
                let (ma, mb) = (self.value(*a), self.value(*b));
                if self.rg(*a) && d > 0 {
                    // dL/da_i = Σ_k g_k b_{(k+i) mod d} = (g ⋆ b)_i.
                    let mut da = pool.uninit(n, d);
                    kernel::par_row_chunks(da.data_mut(), d, row_grain(d * d), |r0, chunk| {
                        for (dr, out) in chunk.chunks_mut(d).enumerate() {
                            let (gr, rb) = (g.row(r0 + dr), mb.row(r0 + dr));
                            for (i, o) in out.iter_mut().enumerate() {
                                let mut acc = 0.0f32;
                                for k in 0..d {
                                    acc += gr[k] * rb[(k + i) % d];
                                }
                                *o = acc;
                            }
                        }
                    });
                    Self::accumulate(pool, grads, *a, da);
                }
                if self.rg(*b) && d > 0 {
                    // dL/db_j = Σ_k g_k a_{(j-k) mod d} (circular convolution).
                    let mut db = pool.uninit(n, d);
                    kernel::par_row_chunks(db.data_mut(), d, row_grain(d * d), |r0, chunk| {
                        for (dr, out) in chunk.chunks_mut(d).enumerate() {
                            let (gr, ra) = (g.row(r0 + dr), ma.row(r0 + dr));
                            for (j, o) in out.iter_mut().enumerate() {
                                let mut acc = 0.0f32;
                                for k in 0..d {
                                    acc += gr[k] * ra[(j + d - k) % d];
                                }
                                *o = acc;
                            }
                        }
                    });
                    Self::accumulate(pool, grads, *b, db);
                }
            }
            Op::ScaleRows(a, s) => {
                let (n, c) = self.shape(*a);
                if self.rg(*a) && c > 0 {
                    let mut da = pool.copy_of(g);
                    scale_rows_in_place(&mut da, self.value(*s));
                    Self::accumulate(pool, grads, *a, da);
                }
                if self.rg(*s) {
                    let mut ds = pool.uninit(n, 1);
                    let ma = self.value(*a);
                    kernel::par_row_chunks(ds.data_mut(), 1, row_grain(c), |r0, chunk| {
                        for (dr, out) in chunk.iter_mut().enumerate() {
                            *out = ma
                                .row(r0 + dr)
                                .iter()
                                .zip(g.row(r0 + dr).iter())
                                .map(|(&x, &gy)| x * gy)
                                .sum();
                        }
                    });
                    Self::accumulate(pool, grads, *s, ds);
                }
            }
            Op::NormalizeRows(a) => {
                if self.rg(*a) {
                    // y = x / ‖x‖; dx = (g - y (y·g)) / ‖x‖
                    let x = self.value(*a);
                    let y = &node.value;
                    let (n, c) = x.shape();
                    let mut da = pool.zeroed(n, c);
                    if c > 0 {
                        kernel::par_row_chunks(da.data_mut(), c, row_grain(3 * c), |r0, chunk| {
                            for (dr, row) in chunk.chunks_mut(c).enumerate() {
                                let r = r0 + dr;
                                let norm = x.row_norm(r).max(NORM_EPS);
                                let ydotg: f32 = y
                                    .row(r)
                                    .iter()
                                    .zip(g.row(r).iter())
                                    .map(|(&yy, &gg)| yy * gg)
                                    .sum();
                                for (col, o) in row.iter_mut().enumerate() {
                                    *o = (g[(r, col)] - y[(r, col)] * ydotg) / norm;
                                }
                            }
                        });
                    }
                    Self::accumulate(pool, grads, *a, da);
                }
            }
            Op::Relu(a) => {
                if self.rg(*a) {
                    let x = self.value(*a);
                    let mut da = pool.copy_of(g);
                    kernel::par_zip_apply(da.data_mut(), x.data(), |d, v| {
                        if v <= 0.0 {
                            *d = 0.0;
                        }
                    });
                    Self::accumulate(pool, grads, *a, da);
                }
            }
            Op::LeakyRelu(a, slope) => {
                if self.rg(*a) {
                    let slope = *slope;
                    let x = self.value(*a);
                    let mut da = pool.copy_of(g);
                    kernel::par_zip_apply(da.data_mut(), x.data(), |d, v| {
                        if v < 0.0 {
                            *d *= slope;
                        }
                    });
                    Self::accumulate(pool, grads, *a, da);
                }
            }
            Op::Elu(a) => {
                if self.rg(*a) {
                    // y = eˣ - 1 for x < 0, so dy/dx = y + 1.
                    let y = &node.value;
                    let x = self.value(*a);
                    let mut da = pool.copy_of(g);
                    kernel::par_zip2_apply(da.data_mut(), x.data(), y.data(), |d, v, yy| {
                        if v < 0.0 {
                            *d *= yy + 1.0;
                        }
                    });
                    Self::accumulate(pool, grads, *a, da);
                }
            }
            Op::Sigmoid(a) => {
                if self.rg(*a) {
                    let y = &node.value;
                    let mut da = pool.copy_of(g);
                    kernel::par_zip_apply(da.data_mut(), y.data(), |d, yy| {
                        *d *= yy * (1.0 - yy);
                    });
                    Self::accumulate(pool, grads, *a, da);
                }
            }
            Op::Tanh(a) => {
                if self.rg(*a) {
                    let y = &node.value;
                    let mut da = pool.copy_of(g);
                    kernel::par_zip_apply(da.data_mut(), y.data(), |d, yy| {
                        *d *= 1.0 - yy * yy;
                    });
                    Self::accumulate(pool, grads, *a, da);
                }
            }
            Op::SumAll(a) => {
                if self.rg(*a) {
                    let (n, c) = self.shape(*a);
                    let da = pool.filled(n, c, g.scalar());
                    Self::accumulate(pool, grads, *a, da);
                }
            }
            Op::MeanAll(a) => {
                if self.rg(*a) {
                    let (n, c) = self.shape(*a);
                    let k = g.scalar() / (n * c).max(1) as f32;
                    let da = pool.filled(n, c, k);
                    Self::accumulate(pool, grads, *a, da);
                }
            }
            Op::BceWithLogits { logits, targets } => {
                if self.rg(*logits) {
                    let x = self.value(*logits);
                    let n = targets.len();
                    let k = g.scalar() / n.max(1) as f32;
                    let mut da = pool.uninit(n, 1);
                    for (r, &y) in targets.iter().enumerate() {
                        da[(r, 0)] = (stable_sigmoid(x[(r, 0)]) - y) * k;
                    }
                    Self::accumulate(pool, grads, *logits, da);
                }
            }
        }
    }
}

/// Overflow-safe logistic sigmoid.
#[inline]
pub fn stable_sigmoid(x: f32) -> f32 {
    if x >= 0.0 {
        1.0 / (1.0 + (-x).exp())
    } else {
        let e = x.exp();
        e / (1.0 + e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forward_values_matmul_chain() {
        let mut g = Graph::new();
        let a = g.leaf(Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]));
        let b = g.constant(Matrix::identity(2));
        let c = g.matmul(a, b);
        assert_eq!(g.value(c), g.value(a));
    }

    #[test]
    fn backward_through_matmul() {
        // loss = sum(A B); dL/dA = 1 Bᵀ, dL/dB = Aᵀ 1.
        let mut g = Graph::new();
        let a = g.leaf(Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]));
        let b = g.leaf(Matrix::from_vec(2, 2, vec![5.0, 6.0, 7.0, 8.0]));
        let c = g.matmul(a, b);
        let loss = g.sum_all(c);
        let grads = g.backward(loss);
        let da = grads.get(a).unwrap();
        // Row sums of B: [11, 15] repeated per row of A.
        assert_eq!(da.data(), &[11.0, 15.0, 11.0, 15.0]);
        let db = grads.get(b).unwrap();
        // Column sums of A: [4, 6] repeated per col of B.
        assert_eq!(db.data(), &[4.0, 4.0, 6.0, 6.0]);
    }

    #[test]
    fn constants_receive_no_gradient() {
        let mut g = Graph::new();
        let a = g.leaf(Matrix::ones(1, 2));
        let b = g.constant(Matrix::ones(1, 2));
        let c = g.mul(a, b);
        let loss = g.sum_all(c);
        let grads = g.backward(loss);
        assert!(grads.get(a).is_some());
        assert!(grads.get(b).is_none());
    }

    #[test]
    fn segment_softmax_rows_sum_to_one() {
        let mut g = Graph::new();
        let x = g.leaf(Matrix::from_vec(5, 1, vec![1.0, 2.0, 3.0, -1.0, 0.5]));
        let seg = vec![0, 0, 1, 1, 1];
        let y = g.segment_softmax(x, &seg);
        let v = g.value(y);
        let s0 = v[(0, 0)] + v[(1, 0)];
        let s1 = v[(2, 0)] + v[(3, 0)] + v[(4, 0)];
        assert!((s0 - 1.0).abs() < 1e-5);
        assert!((s1 - 1.0).abs() < 1e-5);
        // Larger logits get larger weights within a segment.
        assert!(v[(1, 0)] > v[(0, 0)]);
        assert!(v[(2, 0)] > v[(4, 0)] && v[(4, 0)] > v[(3, 0)]);
    }

    #[test]
    fn segment_sum_forward() {
        let mut g = Graph::new();
        let x = g.leaf(Matrix::from_vec(
            4,
            2,
            vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0],
        ));
        let y = g.segment_sum(x, &[0, 1, 0, 1], 2);
        assert_eq!(g.value(y).row(0), &[6.0, 8.0]);
        assert_eq!(g.value(y).row(1), &[10.0, 12.0]);
    }

    #[test]
    fn gather_then_segment_sum_roundtrip_gradient() {
        // sum(segment_sum(gather(X))) — every gathered row contributes once.
        let mut g = Graph::new();
        let x = g.leaf(Matrix::from_fn(3, 2, |r, c| (r * 2 + c) as f32));
        let gathered = g.gather_rows(x, &[0, 2, 2]);
        let summed = g.segment_sum(gathered, &[0, 0, 1], 2);
        let loss = g.sum_all(summed);
        let grads = g.backward(loss);
        let dx = grads.get(x).unwrap();
        assert_eq!(dx.row(0), &[1.0, 1.0]);
        assert_eq!(dx.row(1), &[0.0, 0.0]);
        assert_eq!(dx.row(2), &[2.0, 2.0]);
    }

    #[test]
    fn bce_matches_manual_computation() {
        let mut g = Graph::new();
        let logits = g.leaf(Matrix::from_vec(2, 1, vec![0.0, 2.0]));
        let loss = g.bce_with_logits(logits, &[1.0, 0.0]);
        // -ln σ(0) = ln 2; -ln(1-σ(2)) = ln(1+e²)... = 2 + ln(1+e⁻²)
        let expected = ((2.0f32).ln() + (2.0 + (1.0f32 + (-2.0f32).exp()).ln())) / 2.0;
        assert!((g.value(loss).scalar() - expected).abs() < 1e-5);
        let grads = g.backward(loss);
        let d = grads.get(logits).unwrap();
        assert!((d[(0, 0)] - (0.5 - 1.0) / 2.0).abs() < 1e-5);
        assert!((d[(1, 0)] - (stable_sigmoid(2.0) - 0.0) / 2.0).abs() < 1e-5);
    }

    #[test]
    fn normalize_rows_produces_unit_rows() {
        let mut g = Graph::new();
        let x = g.leaf(Matrix::from_vec(2, 2, vec![3.0, 4.0, 0.0, 0.0]));
        let y = g.normalize_rows(x);
        assert!((g.value(y).row_norm(0) - 1.0).abs() < 1e-5);
        // Zero row stays (numerically) zero rather than NaN.
        assert!(g.value(y).row_norm(1) < 1e-3);
        assert!(g.value(y).all_finite());
    }

    #[test]
    fn vstack_and_concat_gradients_split() {
        let mut g = Graph::new();
        let a = g.leaf(Matrix::ones(1, 2));
        let b = g.leaf(Matrix::ones(2, 2));
        let v = g.vstack(&[a, b]);
        assert_eq!(g.shape(v), (3, 2));
        let weights = g.constant(Matrix::from_vec(3, 2, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]));
        let prod = g.mul(v, weights);
        let loss = g.sum_all(prod);
        let grads = g.backward(loss);
        assert_eq!(grads.get(a).unwrap().data(), &[1.0, 2.0]);
        assert_eq!(grads.get(b).unwrap().data(), &[3.0, 4.0, 5.0, 6.0]);

        let mut g2 = Graph::new();
        let a2 = g2.leaf(Matrix::ones(2, 1));
        let b2 = g2.leaf(Matrix::ones(2, 2));
        let cc = g2.concat_cols(&[a2, b2]);
        assert_eq!(g2.shape(cc), (2, 3));
        let w = g2.constant(Matrix::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]));
        let prod2 = g2.mul(cc, w);
        let loss2 = g2.sum_all(prod2);
        let grads2 = g2.backward(loss2);
        assert_eq!(grads2.get(a2).unwrap().data(), &[1.0, 4.0]);
        assert_eq!(grads2.get(b2).unwrap().data(), &[2.0, 3.0, 5.0, 6.0]);
    }

    #[test]
    fn slice_cols_forward_and_gradient() {
        let mut g = Graph::new();
        let a = g.leaf(Matrix::from_vec(
            2,
            4,
            vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0],
        ));
        let s = g.slice_cols(a, 1, 2);
        assert_eq!(g.shape(s), (2, 2));
        assert_eq!(g.value(s).data(), &[2.0, 3.0, 6.0, 7.0]);
        let w = g.constant(Matrix::from_vec(2, 2, vec![10.0, 20.0, 30.0, 40.0]));
        let prod = g.mul(s, w);
        let loss = g.sum_all(prod);
        let grads = g.backward(loss);
        assert_eq!(
            grads.get(a).unwrap().data(),
            &[0.0, 10.0, 20.0, 0.0, 0.0, 30.0, 40.0, 0.0]
        );
    }

    #[test]
    fn slice_cols_inverts_concat_cols() {
        let mut g = Graph::new();
        let a = g.leaf(Matrix::from_vec(2, 1, vec![1.0, 2.0]));
        let b = g.leaf(Matrix::from_vec(2, 2, vec![3.0, 4.0, 5.0, 6.0]));
        let cc = g.concat_cols(&[a, b]);
        let sa = g.slice_cols(cc, 0, 1);
        let sb = g.slice_cols(cc, 1, 2);
        assert_eq!(g.value(sa).data(), g.value(a).data());
        assert_eq!(g.value(sb).data(), g.value(b).data());
    }

    #[test]
    fn mul_scalar_var_gradient() {
        let mut g = Graph::new();
        let a = g.leaf(Matrix::from_vec(1, 2, vec![2.0, 3.0]));
        let s = g.leaf(Matrix::from_vec(1, 1, vec![4.0]));
        let y = g.mul_scalar_var(a, s);
        let loss = g.sum_all(y);
        let grads = g.backward(loss);
        assert_eq!(grads.get(a).unwrap().data(), &[4.0, 4.0]);
        assert_eq!(grads.get(s).unwrap().scalar(), 5.0);
    }

    #[test]
    fn reset_recycles_buffers_and_reuses_them() {
        let mut g = Graph::new();
        let run = |g: &mut Graph| {
            let a = g.leaf_ref(&Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]));
            let b = g.constant_ref(&Matrix::identity(2));
            let c = g.matmul(a, b);
            let loss = g.sum_all(c);
            let grads = g.backward(loss);
            let da = grads.get(a).unwrap().clone();
            g.recycle(grads);
            da
        };
        let first = run(&mut g);
        g.reset();
        assert!(g.is_empty());
        assert!(g.pooled_buffers() > 0, "reset should retain buffers");
        let second = run(&mut g);
        assert_eq!(first.data(), second.data());
    }

    #[test]
    fn planned_ops_match_slice_ops() {
        let seg = vec![0usize, 1, 0, 2, 2, 1];
        let idx = vec![2usize, 0, 0, 2];
        let x = Matrix::from_fn(6, 3, |r, c| (r * 3 + c) as f32 * 0.25 - 1.0);

        let mut g1 = Graph::new();
        let a1 = g1.leaf(x.clone());
        let s1 = g1.segment_sum(a1, &seg, 3);
        let sm1 = g1.segment_softmax(a1, &seg);
        let gr1 = g1.gather_rows(s1, &idx);

        let mut g2 = Graph::new();
        let seg_plan = Arc::new(SegmentPlan::new(seg, 3));
        let idx_plan = Arc::new(SegmentPlan::new(idx, 3));
        let a2 = g2.leaf(x);
        let s2 = g2.segment_sum_planned(a2, &seg_plan);
        let sm2 = g2.segment_softmax_planned(a2, &seg_plan);
        let gr2 = g2.gather_rows_planned(s2, &idx_plan);

        assert_eq!(g1.value(s1).data(), g2.value(s2).data());
        assert_eq!(g1.value(sm1).data(), g2.value(sm2).data());
        assert_eq!(g1.value(gr1).data(), g2.value(gr2).data());
    }

    #[test]
    fn stable_sigmoid_extremes() {
        assert!(stable_sigmoid(100.0) > 0.999);
        assert!(stable_sigmoid(-100.0) < 0.001);
        assert!((stable_sigmoid(0.0) - 0.5).abs() < 1e-6);
        assert!(stable_sigmoid(1000.0).is_finite());
        assert!(stable_sigmoid(-1000.0).is_finite());
    }
}
