//! Finite-difference gradient checking.
//!
//! Used by the test suites of every crate that builds differentiable models
//! on top of [`crate::Graph`]: construct the loss twice per perturbed entry
//! and compare the numeric slope against the analytic gradient.

use crate::matrix::Matrix;

/// Central-difference numeric gradient of `f` w.r.t. each input matrix.
///
/// `f` must be a pure function of the inputs returning a scalar loss.
pub fn numeric_gradients(f: impl Fn(&[Matrix]) -> f32, inputs: &[Matrix], eps: f32) -> Vec<Matrix> {
    let mut grads = Vec::with_capacity(inputs.len());
    for i in 0..inputs.len() {
        let (rows, cols) = inputs[i].shape();
        let mut grad = Matrix::zeros(rows, cols);
        for k in 0..rows * cols {
            let mut plus: Vec<Matrix> = inputs.to_vec();
            plus[i].data_mut()[k] += eps;
            let mut minus: Vec<Matrix> = inputs.to_vec();
            minus[i].data_mut()[k] -= eps;
            grad.data_mut()[k] = (f(&plus) - f(&minus)) / (2.0 * eps);
        }
        grads.push(grad);
    }
    grads
}

/// Relative error between analytic and numeric gradients, suitable for
/// asserting in tests: `‖a − n‖∞ / (1 + ‖n‖∞)`.
pub fn max_relative_error(analytic: &Matrix, numeric: &Matrix) -> f32 {
    assert_eq!(analytic.shape(), numeric.shape(), "gradient shape mismatch");
    let mut worst = 0.0f32;
    for (&a, &n) in analytic.data().iter().zip(numeric.data().iter()) {
        let denom = 1.0 + a.abs().max(n.abs());
        worst = worst.max((a - n).abs() / denom);
    }
    worst
}

/// Asserts that every analytic gradient matches its numeric counterpart
/// within `tol` relative error.
///
/// # Panics
/// Panics with a diagnostic message when a gradient disagrees.
pub fn assert_gradients_match(analytic: &[Matrix], numeric: &[Matrix], tol: f32) {
    assert_eq!(analytic.len(), numeric.len(), "gradient count mismatch");
    for (i, (a, n)) in analytic.iter().zip(numeric.iter()).enumerate() {
        let err = max_relative_error(a, n);
        assert!(
            err <= tol,
            "gradient {i} mismatch: max relative error {err} > {tol}\nanalytic: {a:?}\nnumeric: {n:?}"
        );
    }
}

/// A tiny deterministic PRNG (SplitMix64) for test matrices, so `prim-tensor`
/// itself stays dependency-free.
#[derive(Clone)]
pub struct TestRng(u64);

impl TestRng {
    /// Seeds the generator.
    pub fn new(seed: u64) -> Self {
        TestRng(seed.wrapping_add(0x9E3779B97F4A7C15))
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    /// Uniform float in `[-1, 1)`.
    pub fn unit(&mut self) -> f32 {
        (self.next_u64() >> 41) as f32 / (1u64 << 23) as f32 * 2.0 - 1.0
    }

    /// Uniform usize in `[0, n)`.
    pub fn below(&mut self, n: usize) -> usize {
        (self.next_u64() % n as u64) as usize
    }

    /// Random matrix with entries in `[-1, 1)`.
    pub fn matrix(&mut self, rows: usize, cols: usize) -> Matrix {
        Matrix::from_fn(rows, cols, |_, _| self.unit())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn numeric_gradient_of_quadratic() {
        // f(x) = Σ x², df/dx = 2x.
        let x = Matrix::from_vec(2, 2, vec![1.0, -2.0, 3.0, 0.5]);
        let grads = numeric_gradients(
            |ins| ins[0].data().iter().map(|v| v * v).sum(),
            std::slice::from_ref(&x),
            1e-3,
        );
        let expected = x.scale(2.0);
        assert!(max_relative_error(&grads[0], &expected) < 1e-3);
    }

    #[test]
    fn test_rng_is_deterministic() {
        let mut a = TestRng::new(7);
        let mut b = TestRng::new(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn test_rng_unit_in_range() {
        let mut rng = TestRng::new(42);
        for _ in 0..1000 {
            let v = rng.unit();
            assert!((-1.0..1.0).contains(&v), "unit out of range: {v}");
        }
    }

    #[test]
    #[should_panic(expected = "gradient 0 mismatch")]
    fn assert_gradients_match_catches_mismatch() {
        let a = Matrix::ones(1, 1);
        let n = Matrix::zeros(1, 1);
        assert_gradients_match(&[a], &[n], 1e-4);
    }
}
