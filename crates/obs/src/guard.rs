//! Guard rails: NaN/Inf detection that turns silent divergence into a
//! structured, named error.
//!
//! A [`FiniteGuard`] is a tiny `Copy` value the training loops consult once
//! per optimisation step. When enabled (cadence ≥ 1), every due step checks
//! the batch loss and every parameter group's accumulated gradient with
//! [`prim_tensor::Matrix::all_finite`]; the first non-finite value aborts
//! training with a [`TrainAbort`] naming the epoch, step and parameter
//! group. Disabled (the default), the guard is a single integer compare per
//! step — no allocation, no matrix scans.

use prim_tensor::Matrix;

/// What kind of value went non-finite.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AbortKind {
    /// The scalar training loss.
    NonFiniteLoss,
    /// An accumulated parameter gradient.
    NonFiniteGradient,
    /// A parameter value itself.
    NonFiniteParameter,
}

impl AbortKind {
    /// Short display name.
    pub fn name(self) -> &'static str {
        match self {
            AbortKind::NonFiniteLoss => "non-finite loss",
            AbortKind::NonFiniteGradient => "non-finite gradient",
            AbortKind::NonFiniteParameter => "non-finite parameter",
        }
    }
}

/// Structured training abort: the guard tripped.
#[derive(Clone, Debug)]
pub struct TrainAbort {
    /// What went non-finite.
    pub kind: AbortKind,
    /// Epoch in which the check tripped.
    pub epoch: usize,
    /// Global optimisation step (0-based) at which the check tripped.
    pub step: u64,
    /// Parameter group name, for gradient/parameter aborts.
    pub param: Option<String>,
    /// The offending value, when it is a scalar (the loss).
    pub value: Option<f32>,
}

impl std::fmt::Display for TrainAbort {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "training aborted: {} at epoch {}, step {}",
            self.kind.name(),
            self.epoch,
            self.step
        )?;
        if let Some(p) = &self.param {
            write!(f, ", parameter group `{p}`")?;
        }
        if let Some(v) = self.value {
            write!(f, " (value {v})")?;
        }
        Ok(())
    }
}

impl std::error::Error for TrainAbort {}

/// Environment variable setting the guard cadence (`0`/unset = disabled).
pub const GUARD_ENV: &str = "PRIM_GUARD_EVERY";

/// Finite-value guard with a configurable step cadence.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FiniteGuard {
    cadence: u32,
}

impl FiniteGuard {
    /// A guard that never checks (the zero-overhead default).
    pub const fn disabled() -> Self {
        FiniteGuard { cadence: 0 }
    }

    /// A guard checking every `cadence`-th step (1 = every step).
    ///
    /// # Panics
    /// Panics when `cadence` is zero — use [`FiniteGuard::disabled`].
    pub fn every(cadence: u32) -> Self {
        assert!(cadence > 0, "guard cadence must be >= 1");
        FiniteGuard { cadence }
    }

    /// Reads `PRIM_GUARD_EVERY` (`0`, unset or unparsable = disabled).
    pub fn from_env() -> Self {
        match std::env::var(GUARD_ENV) {
            Ok(v) => match v.trim().parse::<u32>() {
                Ok(n) if n > 0 => FiniteGuard::every(n),
                _ => FiniteGuard::disabled(),
            },
            Err(_) => FiniteGuard::disabled(),
        }
    }

    /// True when the guard performs checks at all.
    pub fn is_enabled(&self) -> bool {
        self.cadence > 0
    }

    /// True when global step `step` (0-based) is due a check.
    pub fn due(&self, step: u64) -> bool {
        self.cadence > 0 && step.is_multiple_of(self.cadence as u64)
    }

    /// Checks the scalar loss.
    pub fn check_loss(&self, epoch: usize, step: u64, loss: f32) -> Result<(), TrainAbort> {
        if loss.is_finite() {
            Ok(())
        } else {
            Err(TrainAbort {
                kind: AbortKind::NonFiniteLoss,
                epoch,
                step,
                param: None,
                value: Some(loss),
            })
        }
    }

    /// Checks one parameter group's gradient matrix.
    pub fn check_gradient(
        &self,
        epoch: usize,
        step: u64,
        param: &str,
        grad: &Matrix,
    ) -> Result<(), TrainAbort> {
        self.check_matrix(AbortKind::NonFiniteGradient, epoch, step, param, grad)
    }

    /// Checks a named matrix (gradient or parameter) for non-finite entries
    /// via [`Matrix::all_finite`].
    pub fn check_matrix(
        &self,
        kind: AbortKind,
        epoch: usize,
        step: u64,
        param: &str,
        m: &Matrix,
    ) -> Result<(), TrainAbort> {
        if m.all_finite() {
            Ok(())
        } else {
            Err(TrainAbort {
                kind,
                epoch,
                step,
                param: Some(param.to_string()),
                value: None,
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cadence_schedule() {
        let g = FiniteGuard::disabled();
        assert!(!g.is_enabled());
        assert!(!g.due(0));
        let g = FiniteGuard::every(3);
        let due: Vec<u64> = (0..10).filter(|&s| g.due(s)).collect();
        assert_eq!(due, vec![0, 3, 6, 9]);
    }

    #[test]
    #[should_panic(expected = "cadence")]
    fn zero_cadence_rejected() {
        let _ = FiniteGuard::every(0);
    }

    #[test]
    fn loss_checks() {
        let g = FiniteGuard::every(1);
        assert!(g.check_loss(0, 0, 0.5).is_ok());
        assert!(g.check_loss(0, 0, -0.0).is_ok());
        let abort = g.check_loss(3, 7, f32::NAN).unwrap_err();
        assert_eq!(abort.kind, AbortKind::NonFiniteLoss);
        assert_eq!(abort.epoch, 3);
        assert_eq!(abort.step, 7);
        let msg = abort.to_string();
        assert!(msg.contains("epoch 3") && msg.contains("step 7"), "{msg}");
        assert!(g.check_loss(0, 0, f32::INFINITY).is_err());
    }

    #[test]
    fn matrix_checks_name_the_parameter() {
        let g = FiniteGuard::every(1);
        // -0.0 is finite: it must not trip the guard.
        let ok = Matrix::from_vec(1, 3, vec![1.0, -0.0, -2.5]);
        assert!(g.check_gradient(0, 0, "w_in", &ok).is_ok());
        let bad = Matrix::from_vec(1, 3, vec![1.0, f32::NEG_INFINITY, 0.0]);
        let abort = g.check_gradient(2, 5, "w_rel", &bad).unwrap_err();
        assert_eq!(abort.kind, AbortKind::NonFiniteGradient);
        assert_eq!(abort.param.as_deref(), Some("w_rel"));
        assert!(abort.to_string().contains("`w_rel`"));
    }
}
