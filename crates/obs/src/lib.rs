//! `prim-obs`: training/inference telemetry for the PRIM reproduction.
//!
//! Three pieces (DESIGN.md §8):
//!
//! * [`Recorder`] — lock-cheap, thread-safe telemetry: scoped phase timers
//!   ([`Phase`]), monotonic counters ([`Counter`]), per-epoch training
//!   records ([`EpochRecord`]) and per-split eval records ([`EvalRecord`]).
//!   The disabled recorder is allocation-free and branch-cheap so it can
//!   live inside the steady-state training step without moving the
//!   allocation budget.
//! * [`FiniteGuard`] — NaN/Inf guard rails over losses and gradients with a
//!   configurable step cadence, aborting with a structured [`TrainAbort`]
//!   that names the epoch, step and parameter group.
//! * [`JsonSink`] — append-only, schema-versioned JSON Lines run reports
//!   (path from `PRIM_RUN_REPORT`), validated by [`validate_report`].
//!
//! The hand-rolled JSON writer/reader lives in [`json`]; `prim-bench`
//! re-exports it so the bench harness and the recorder share one
//! serialisation path.

pub mod guard;
pub mod json;
pub mod recorder;
pub mod sink;

pub use guard::{AbortKind, FiniteGuard, TrainAbort, GUARD_ENV};
pub use recorder::{
    Counter, EpochRecord, EvalRecord, Phase, PhaseGuard, Recorder, SeriesSummary, N_PHASES,
};
pub use sink::{validate_report, JsonSink, ReportSummary, RUN_REPORT_ENV};

/// Schema tag every run-report line carries. Bump on breaking layout change.
pub const SCHEMA: &str = "prim-obs/v1";

/// The telemetry bundle training loops thread through: a recorder plus a
/// finite-value guard. Both default to their zero-overhead disabled forms.
#[derive(Clone, Default)]
pub struct Telemetry {
    /// Event recorder (disabled = allocation-free no-op).
    pub recorder: Recorder,
    /// NaN/Inf guard (disabled = one integer compare per step).
    pub guard: FiniteGuard,
}

impl Telemetry {
    /// Fully disabled telemetry: no recording, no guard checks, and no
    /// allocation on construction.
    pub const fn disabled() -> Self {
        Telemetry {
            recorder: Recorder::disabled(),
            guard: FiniteGuard::disabled(),
        }
    }

    /// Telemetry driven by the environment: the recorder sinks to
    /// `PRIM_RUN_REPORT` when set, and the guard cadence comes from
    /// `PRIM_GUARD_EVERY`. Unset variables leave each part disabled.
    pub fn from_env(run: &str) -> Self {
        Telemetry {
            recorder: Recorder::from_env(run),
            guard: FiniteGuard::from_env(),
        }
    }

    /// Telemetry with the given recorder and the guard checking every step.
    pub fn with_recorder(recorder: Recorder) -> Self {
        Telemetry {
            recorder,
            guard: FiniteGuard::every(1),
        }
    }

    /// True when either part does any work.
    pub fn is_enabled(&self) -> bool {
        self.recorder.is_enabled() || self.guard.is_enabled()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_telemetry_is_fully_off() {
        let t = Telemetry::disabled();
        assert!(!t.is_enabled());
        assert!(!t.recorder.is_enabled());
        assert!(!t.guard.is_enabled());
    }

    #[test]
    fn with_recorder_enables_guard() {
        let t = Telemetry::with_recorder(Recorder::enabled("x"));
        assert!(t.is_enabled());
        assert!(t.guard.due(0));
    }
}
