//! The telemetry recorder: scoped phase timers, monotonic counters,
//! per-epoch training records and per-split eval records, with an optional
//! append-only JSON sink.
//!
//! Design constraints (DESIGN.md §8):
//!
//! * **Zero overhead when disabled.** A disabled [`Recorder`] is
//!   `Option::None` behind the handle — every operation is one branch, no
//!   allocation, no clock read, no lock. The `micro_kernels` steady-state
//!   allocation budget holds with the disabled recorder compiled into the
//!   training step.
//! * **Lock-cheap when enabled.** State lives behind one `Mutex` taken at
//!   phase boundaries and epoch ends (a handful of times per epoch), never
//!   per element.
//! * **Thread-safe and clonable.** Handles are `Arc`-shared; timings from
//!   concurrent scopes accumulate atomically under the lock.

use crate::json;
use crate::sink::JsonSink;
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Training/inference phases with dedicated timers.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Phase {
    /// Negative sampling + epoch batch assembly.
    Sampling,
    /// Tape construction and forward pass.
    Forward,
    /// Backward pass (gradient tape walk).
    Backward,
    /// Gradient accumulation, clipping and the optimiser update.
    Optimizer,
    /// Validation / test-set evaluation.
    Eval,
    /// Online inference: request handling inside `prim-serve`'s engine
    /// (scoring, candidate generation, cache management).
    Serve,
}

impl Phase {
    /// All phases, in report order.
    pub const ALL: [Phase; 6] = [
        Phase::Sampling,
        Phase::Forward,
        Phase::Backward,
        Phase::Optimizer,
        Phase::Eval,
        Phase::Serve,
    ];

    /// Stable snake-case name used in JSON reports.
    pub fn name(self) -> &'static str {
        match self {
            Phase::Sampling => "sampling",
            Phase::Forward => "forward",
            Phase::Backward => "backward",
            Phase::Optimizer => "optimizer",
            Phase::Eval => "eval",
            Phase::Serve => "serve",
        }
    }
}

/// Number of phases (array sizing).
pub const N_PHASES: usize = Phase::ALL.len();

/// Monotonic counters the stack increments as it works.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Counter {
    /// Optimisation steps taken.
    Steps,
    /// Training epochs completed.
    Epochs,
    /// Labelled triples consumed (positives + negatives + φ).
    TriplesSeen,
    /// Validation accuracy checks performed.
    ValChecks,
    /// Finite-guard sweeps performed (loss + all gradients = one sweep).
    GuardChecks,
    /// Evaluation pairs scored.
    EvalPairs,
    /// Serving requests answered (score, top-k and batch alike).
    ServeRequests,
    /// POI pairs scored while serving (batch requests count every pair).
    ServePairs,
    /// Micro-batches flushed through the batched scoring kernel.
    ServeBatches,
    /// Score-cache hits.
    ServeCacheHits,
    /// Score-cache misses.
    ServeCacheMisses,
    /// Checkpoints written (rotation slots, not temp files).
    CkptSaves,
    /// Training runs restored from a checkpoint.
    Resumes,
    /// Rollbacks to a good checkpoint after a `TrainAbort`.
    Rollbacks,
    /// Client connections that ended in broken-pipe/reset (clean
    /// disconnects, not server errors).
    ServeDisconnects,
    /// Requests shed by the admission gate with an `overloaded` error.
    ServeOverloads,
    /// Requests that exhausted their deadline (`deadline_exceeded`).
    ServeDeadlines,
    /// `top_k` requests answered by the grid-only degraded path.
    ServeDegraded,
    /// Hot checkpoint reloads applied through the engine slot.
    ServeReloads,
    /// Requests naming a city this process does not host (answered with a
    /// structured `unknown_tenant` error).
    ServeUnknownTenant,
    /// Request lines exceeding `ServeLimits::max_line_bytes` (answered
    /// with `bad_request` and resynchronised at the next newline).
    ServeOversized,
    /// Parallel regions distributed to the tensor worker pool.
    PoolParallelRuns,
    /// Tensor parallel regions that took the inline/serial path (below
    /// threshold, single job, nested, or serial config).
    PoolInlineRuns,
    /// ANN graph nodes whose quantized similarity was evaluated (beam
    /// traversal plus upper-level descent).
    AnnNodesVisited,
    /// Candidates the ANN layer generated (quant-scan candidates or
    /// ground-level beam evaluations).
    AnnCandidates,
    /// ANN candidates rejected by the spatial radius filter.
    AnnRadiusPruned,
    /// ANN candidates re-scored through the exact f32 kernel.
    AnnRescored,
    /// Mutations accepted into the ingest WAL (staged, durable, not yet
    /// visible to queries).
    IngestStaged,
    /// Mutations applied to a published store (visible to queries).
    IngestApplied,
    /// Ingest apply batches published through the engine slot.
    IngestBatches,
    /// Mutations replayed from the WAL at ingest pipeline open.
    IngestReplayed,
    /// Mutations rejected with a structured error before staging.
    IngestRejected,
    /// Ingest snapshot checkpoints written (one per compacting flush).
    IngestSnapshots,
    /// WAL segment files pruned by snapshot-coupled compaction.
    WalSegmentsPruned,
    /// `repl_sync` requests answered (tail and snapshot frames alike).
    ReplSyncs,
    /// Mutations a follower applied from replication tail frames.
    ReplApplied,
    /// Followers promoted to accepting writes.
    Promotions,
}

impl Counter {
    /// All counters, in report order.
    pub const ALL: [Counter; 37] = [
        Counter::Steps,
        Counter::Epochs,
        Counter::TriplesSeen,
        Counter::ValChecks,
        Counter::GuardChecks,
        Counter::EvalPairs,
        Counter::ServeRequests,
        Counter::ServePairs,
        Counter::ServeBatches,
        Counter::ServeCacheHits,
        Counter::ServeCacheMisses,
        Counter::CkptSaves,
        Counter::Resumes,
        Counter::Rollbacks,
        Counter::ServeDisconnects,
        Counter::ServeOverloads,
        Counter::ServeDeadlines,
        Counter::ServeDegraded,
        Counter::ServeReloads,
        Counter::ServeUnknownTenant,
        Counter::ServeOversized,
        Counter::PoolParallelRuns,
        Counter::PoolInlineRuns,
        Counter::AnnNodesVisited,
        Counter::AnnCandidates,
        Counter::AnnRadiusPruned,
        Counter::AnnRescored,
        Counter::IngestStaged,
        Counter::IngestApplied,
        Counter::IngestBatches,
        Counter::IngestReplayed,
        Counter::IngestRejected,
        Counter::IngestSnapshots,
        Counter::WalSegmentsPruned,
        Counter::ReplSyncs,
        Counter::ReplApplied,
        Counter::Promotions,
    ];

    /// Stable snake-case name used in JSON reports.
    pub fn name(self) -> &'static str {
        match self {
            Counter::Steps => "steps",
            Counter::Epochs => "epochs",
            Counter::TriplesSeen => "triples_seen",
            Counter::ValChecks => "val_checks",
            Counter::GuardChecks => "guard_checks",
            Counter::EvalPairs => "eval_pairs",
            Counter::ServeRequests => "serve_requests",
            Counter::ServePairs => "serve_pairs",
            Counter::ServeBatches => "serve_batches",
            Counter::ServeCacheHits => "serve_cache_hits",
            Counter::ServeCacheMisses => "serve_cache_misses",
            Counter::CkptSaves => "ckpt_saves",
            Counter::Resumes => "resumes",
            Counter::Rollbacks => "rollbacks",
            Counter::ServeDisconnects => "serve_disconnects",
            Counter::ServeOverloads => "serve_overloads",
            Counter::ServeDeadlines => "serve_deadlines",
            Counter::ServeDegraded => "serve_degraded",
            Counter::ServeReloads => "serve_reloads",
            Counter::ServeUnknownTenant => "serve_unknown_tenant",
            Counter::ServeOversized => "serve_oversized_lines",
            Counter::PoolParallelRuns => "pool_parallel_runs",
            Counter::PoolInlineRuns => "pool_inline_runs",
            Counter::AnnNodesVisited => "ann_nodes_visited",
            Counter::AnnCandidates => "ann_candidates",
            Counter::AnnRadiusPruned => "ann_radius_pruned",
            Counter::AnnRescored => "ann_rescored",
            Counter::IngestStaged => "ingest_staged",
            Counter::IngestApplied => "ingest_applied",
            Counter::IngestBatches => "ingest_batches",
            Counter::IngestReplayed => "ingest_replayed",
            Counter::IngestRejected => "ingest_rejected",
            Counter::IngestSnapshots => "ingest_snapshots",
            Counter::WalSegmentsPruned => "wal_segments_pruned",
            Counter::ReplSyncs => "repl_syncs",
            Counter::ReplApplied => "repl_applied",
            Counter::Promotions => "promotions",
        }
    }
}

const N_COUNTERS: usize = Counter::ALL.len();

/// One epoch's training telemetry.
///
/// `loss`, `grad_norm`, `lr` and `param_grad_norms` are exact model
/// quantities — with deterministic kernels they are bitwise reproducible
/// across thread counts. `phase_ns` and `pooled_buffers` are runtime
/// diagnostics and excluded from determinism comparisons.
#[derive(Clone, Debug)]
pub struct EpochRecord {
    /// Epoch index (0-based).
    pub epoch: usize,
    /// Mean training loss over the epoch's steps.
    pub loss: f32,
    /// Global gradient norm at the epoch's last step, pre-clipping.
    pub grad_norm: f32,
    /// Optimiser learning rate during the epoch.
    pub lr: f32,
    /// Per-parameter-group gradient norms at the epoch's last step.
    pub param_grad_norms: Vec<(String, f32)>,
    /// Idle buffers held by the tape arena at epoch end
    /// (see `prim_tensor::Graph::pooled_buffers`).
    pub pooled_buffers: usize,
    /// Per-phase nanoseconds accrued during this epoch. Filled in by
    /// [`Recorder::record_epoch`] from the phase accumulators; any value
    /// passed in is overwritten.
    pub phase_ns: [u64; N_PHASES],
}

impl EpochRecord {
    /// A record with only the exact model quantities filled in.
    pub fn new(epoch: usize, loss: f32, grad_norm: f32, lr: f32) -> Self {
        EpochRecord {
            epoch,
            loss,
            grad_norm,
            lr,
            param_grad_norms: Vec::new(),
            pooled_buffers: 0,
            phase_ns: [0; N_PHASES],
        }
    }

    fn json(&self) -> String {
        let phase_ms: Vec<(&str, String)> = Phase::ALL
            .iter()
            .map(|&p| (p.name(), json::num(self.phase_ns[p as usize] as f64 / 1e6)))
            .collect();
        let params: Vec<String> = self
            .param_grad_norms
            .iter()
            .map(|(name, n)| json::arr(&[json::str(name), json::num(*n as f64)]))
            .collect();
        json::obj(&[
            ("epoch", json::int(self.epoch as u64)),
            ("loss", json::num(self.loss as f64)),
            ("grad_norm", json::num(self.grad_norm as f64)),
            ("lr", json::num(self.lr as f64)),
            ("pooled_buffers", json::int(self.pooled_buffers as u64)),
            ("phase_ms", json::obj(&phase_ms)),
            ("param_grad_norms", json::arr(&params)),
        ])
    }
}

/// One evaluation's telemetry: split label, timing and a confusion summary.
#[derive(Clone, Debug)]
pub struct EvalRecord {
    /// Split label (`"val"`, `"test"`, a bench-specific tag, …).
    pub label: String,
    /// Pairs scored.
    pub n_pairs: usize,
    /// Macro-averaged F1.
    pub macro_f1: f64,
    /// Micro-averaged F1 (accuracy).
    pub micro_f1: f64,
    /// Wall-clock seconds spent scoring.
    pub seconds: f64,
    /// Per-class `(support, f1)` — the confusion-matrix summary.
    pub per_class: Vec<(usize, f64)>,
}

impl EvalRecord {
    fn json(&self) -> String {
        let per_class: Vec<String> = self
            .per_class
            .iter()
            .map(|&(support, f1)| json::arr(&[json::int(support as u64), json::num(f1)]))
            .collect();
        json::obj(&[
            ("label", json::str(&self.label)),
            ("n_pairs", json::int(self.n_pairs as u64)),
            ("macro_f1", json::num(self.macro_f1)),
            ("micro_f1", json::num(self.micro_f1)),
            ("seconds", json::num(self.seconds)),
            ("per_class", json::arr(&per_class)),
        ])
    }
}

/// Summary statistics of one recorded scalar series.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct SeriesSummary {
    /// Number of recorded values.
    pub count: u64,
    /// Last recorded value.
    pub last: f64,
    /// Mean of recorded values.
    pub mean: f64,
    /// Maximum recorded value.
    pub max: f64,
}

#[derive(Clone, Debug, Default)]
struct Series {
    count: u64,
    sum: f64,
    last: f64,
    max: f64,
}

struct State {
    phase_acc: [u64; N_PHASES],
    phase_total: [u64; N_PHASES],
    counters: [u64; N_COUNTERS],
    epochs: Vec<EpochRecord>,
    evals: Vec<EvalRecord>,
    // Named scalar series (e.g. `adam/update_norm`), summarised in reports.
    scalars: Vec<(&'static str, Series)>,
    // Extra `key → raw JSON` metadata for the run line.
    meta: Vec<(String, String)>,
}

// Manual: `Default` is not derivable past 32-element arrays.
impl Default for State {
    fn default() -> Self {
        State {
            phase_acc: [0; N_PHASES],
            phase_total: [0; N_PHASES],
            counters: [0; N_COUNTERS],
            epochs: Vec::new(),
            evals: Vec::new(),
            scalars: Vec::new(),
            meta: Vec::new(),
        }
    }
}

struct Inner {
    run: String,
    state: Mutex<State>,
    sink: Option<JsonSink>,
}

/// Telemetry recorder handle. Cloning shares the underlying state.
///
/// The default handle is *disabled*: every method is a no-op costing one
/// branch, and constructing it performs no allocation.
#[derive(Clone, Default)]
pub struct Recorder {
    inner: Option<Arc<Inner>>,
}

impl Recorder {
    /// The disabled recorder (all operations are branch-cheap no-ops).
    pub const fn disabled() -> Self {
        Recorder { inner: None }
    }

    /// An enabled in-memory recorder (no sink) for run `run`.
    pub fn enabled(run: impl Into<String>) -> Self {
        Recorder {
            inner: Some(Arc::new(Inner {
                run: run.into(),
                state: Mutex::new(State::default()),
                sink: None,
            })),
        }
    }

    /// An enabled recorder that appends its run report to `sink` on
    /// [`Recorder::finish`].
    pub fn with_sink(run: impl Into<String>, sink: JsonSink) -> Self {
        Recorder {
            inner: Some(Arc::new(Inner {
                run: run.into(),
                state: Mutex::new(State::default()),
                sink: Some(sink),
            })),
        }
    }

    /// Recorder driven by the environment: enabled with a sink when
    /// `PRIM_RUN_REPORT` names a path, disabled (and allocation-free)
    /// otherwise.
    pub fn from_env(run: &str) -> Self {
        match JsonSink::from_env() {
            Some(sink) => Recorder::with_sink(run, sink),
            None => Recorder::disabled(),
        }
    }

    /// True when this handle records anything.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// The run name (empty when disabled).
    pub fn run_name(&self) -> &str {
        self.inner.as_deref().map(|i| i.run.as_str()).unwrap_or("")
    }

    /// Starts a scoped phase timer; the elapsed time is added to `phase`
    /// when the returned guard drops. Disabled recorders return an inert
    /// guard without reading the clock.
    #[inline]
    pub fn phase(&self, phase: Phase) -> PhaseGuard<'_> {
        PhaseGuard {
            active: self.inner.as_deref().map(|i| (i, phase, Instant::now())),
        }
    }

    /// Adds `n` to a monotonic counter.
    #[inline]
    pub fn add(&self, counter: Counter, n: u64) {
        if let Some(inner) = self.inner.as_deref() {
            inner.state.lock().unwrap().counters[counter as usize] += n;
        }
    }

    /// Current value of a counter (0 when disabled).
    pub fn counter(&self, counter: Counter) -> u64 {
        self.inner
            .as_deref()
            .map(|i| i.state.lock().unwrap().counters[counter as usize])
            .unwrap_or(0)
    }

    /// Appends a value to a named scalar series (summarised in the report).
    #[inline]
    pub fn record_scalar(&self, key: &'static str, value: f64) {
        if let Some(inner) = self.inner.as_deref() {
            let mut state = inner.state.lock().unwrap();
            let series = match state.scalars.iter_mut().find(|(k, _)| *k == key) {
                Some((_, s)) => s,
                None => {
                    state.scalars.push((key, Series::default()));
                    &mut state.scalars.last_mut().unwrap().1
                }
            };
            series.count += 1;
            series.sum += value;
            series.last = value;
            series.max = if series.count == 1 {
                value
            } else {
                series.max.max(value)
            };
        }
    }

    /// Summary of a recorded scalar series, if present.
    pub fn scalar_summary(&self, key: &str) -> Option<SeriesSummary> {
        let inner = self.inner.as_deref()?;
        let state = inner.state.lock().unwrap();
        state
            .scalars
            .iter()
            .find(|(k, _)| *k == key)
            .map(|(_, s)| SeriesSummary {
                count: s.count,
                last: s.last,
                mean: if s.count == 0 {
                    0.0
                } else {
                    s.sum / s.count as f64
                },
                max: s.max,
            })
    }

    /// Attaches raw-JSON metadata to the run line (last write per key wins).
    pub fn set_meta(&self, key: &str, raw_json_value: String) {
        if let Some(inner) = self.inner.as_deref() {
            let mut state = inner.state.lock().unwrap();
            if let Some(slot) = state.meta.iter_mut().find(|(k, _)| k == key) {
                slot.1 = raw_json_value;
            } else {
                state.meta.push((key.to_string(), raw_json_value));
            }
        }
    }

    /// Records one epoch. The record's `phase_ns` is overwritten with the
    /// per-phase time accrued since the previous epoch record.
    pub fn record_epoch(&self, mut record: EpochRecord) {
        if let Some(inner) = self.inner.as_deref() {
            let mut state = inner.state.lock().unwrap();
            record.phase_ns = state.phase_acc;
            for p in 0..N_PHASES {
                state.phase_total[p] += state.phase_acc[p];
                state.phase_acc[p] = 0;
            }
            state.counters[Counter::Epochs as usize] += 1;
            state.epochs.push(record);
        }
    }

    /// Records one evaluation.
    pub fn record_eval(&self, record: EvalRecord) {
        if let Some(inner) = self.inner.as_deref() {
            inner.state.lock().unwrap().evals.push(record);
        }
    }

    /// Copies out the recorded epoch stream (empty when disabled).
    pub fn epochs(&self) -> Vec<EpochRecord> {
        self.inner
            .as_deref()
            .map(|i| i.state.lock().unwrap().epochs.clone())
            .unwrap_or_default()
    }

    /// Copies out the recorded eval stream (empty when disabled).
    pub fn evals(&self) -> Vec<EvalRecord> {
        self.inner
            .as_deref()
            .map(|i| i.state.lock().unwrap().evals.clone())
            .unwrap_or_default()
    }

    /// Renders the run-report line for the current state.
    pub fn render_report(&self) -> Option<String> {
        let inner = self.inner.as_deref()?;
        let mut state = inner.state.lock().unwrap();
        // Fold un-recorded phase time into the totals so short runs that
        // never call `record_epoch` still report their timings.
        for p in 0..N_PHASES {
            state.phase_total[p] += state.phase_acc[p];
            state.phase_acc[p] = 0;
        }
        let epochs: Vec<String> = state.epochs.iter().map(EpochRecord::json).collect();
        let evals: Vec<String> = state.evals.iter().map(EvalRecord::json).collect();
        let counters: Vec<(&str, String)> = Counter::ALL
            .iter()
            .map(|&c| (c.name(), json::int(state.counters[c as usize])))
            .collect();
        let phase_ms: Vec<(&str, String)> = Phase::ALL
            .iter()
            .map(|&p| {
                (
                    p.name(),
                    json::num(state.phase_total[p as usize] as f64 / 1e6),
                )
            })
            .collect();
        let scalars: Vec<(&str, String)> = state
            .scalars
            .iter()
            .map(|(k, s)| {
                (
                    *k,
                    json::obj(&[
                        ("count", json::int(s.count)),
                        ("last", json::num(s.last)),
                        (
                            "mean",
                            json::num(if s.count == 0 {
                                0.0
                            } else {
                                s.sum / s.count as f64
                            }),
                        ),
                        ("max", json::num(s.max)),
                    ]),
                )
            })
            .collect();
        let meta: Vec<(&str, String)> = state
            .meta
            .iter()
            .map(|(k, v)| (k.as_str(), v.clone()))
            .collect();
        Some(json::obj(&[
            ("schema", json::str(crate::SCHEMA)),
            ("kind", json::str("run")),
            ("run", json::str(&inner.run)),
            ("epochs", json::arr(&epochs)),
            ("evals", json::arr(&evals)),
            ("counters", json::obj(&counters)),
            ("phase_ms_total", json::obj(&phase_ms)),
            ("scalars", json::obj(&scalars)),
            ("meta", json::obj(&meta)),
        ]))
    }

    /// Appends the run report to the sink (if any) and clears the recorded
    /// state, so a reused handle starts the next run fresh. No-op when
    /// disabled. Returns the rendered line when a sink write happened.
    pub fn finish(&self) -> Option<String> {
        let inner = self.inner.as_deref()?;
        let line = self.render_report()?;
        *inner.state.lock().unwrap() = State::default();
        if let Some(sink) = &inner.sink {
            sink.append_line(&line);
            Some(line)
        } else {
            None
        }
    }
}

/// RAII guard accumulating elapsed time into a phase timer on drop.
pub struct PhaseGuard<'a> {
    active: Option<(&'a Inner, Phase, Instant)>,
}

impl Drop for PhaseGuard<'_> {
    fn drop(&mut self) {
        if let Some((inner, phase, start)) = self.active.take() {
            let ns = start.elapsed().as_nanos() as u64;
            inner.state.lock().unwrap().phase_acc[phase as usize] += ns;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sink::validate_report;

    #[test]
    fn disabled_recorder_is_inert() {
        let rec = Recorder::disabled();
        assert!(!rec.is_enabled());
        {
            let _t = rec.phase(Phase::Forward);
        }
        rec.add(Counter::Steps, 5);
        rec.record_scalar("x", 1.0);
        rec.record_epoch(EpochRecord::new(0, 0.5, 1.0, 0.01));
        assert_eq!(rec.counter(Counter::Steps), 0);
        assert!(rec.epochs().is_empty());
        assert!(rec.render_report().is_none());
        assert!(rec.finish().is_none());
    }

    #[test]
    fn counters_epochs_and_phases_accumulate() {
        let rec = Recorder::enabled("test-run");
        rec.add(Counter::Steps, 2);
        rec.add(Counter::Steps, 3);
        assert_eq!(rec.counter(Counter::Steps), 5);
        {
            let _t = rec.phase(Phase::Forward);
            std::thread::sleep(std::time::Duration::from_millis(2));
        }
        let mut e0 = EpochRecord::new(0, 0.7, 2.0, 0.01);
        e0.param_grad_norms.push(("w_in".into(), 1.5));
        rec.record_epoch(e0);
        rec.record_epoch(EpochRecord::new(1, 0.6, 1.8, 0.01));
        let epochs = rec.epochs();
        assert_eq!(epochs.len(), 2);
        // Epoch counter is maintained by record_epoch itself.
        assert_eq!(rec.counter(Counter::Epochs), 2);
        // The forward time landed in epoch 0's delta, and epoch 1 saw none.
        assert!(epochs[0].phase_ns[Phase::Forward as usize] > 0);
        assert_eq!(epochs[1].phase_ns[Phase::Forward as usize], 0);
    }

    #[test]
    fn scalar_series_summary() {
        let rec = Recorder::enabled("s");
        rec.record_scalar("adam/grad_norm", 1.0);
        rec.record_scalar("adam/grad_norm", 3.0);
        let s = rec.scalar_summary("adam/grad_norm").unwrap();
        assert_eq!(s.count, 2);
        assert_eq!(s.last, 3.0);
        assert_eq!(s.mean, 2.0);
        assert_eq!(s.max, 3.0);
        assert!(rec.scalar_summary("missing").is_none());
    }

    #[test]
    fn clones_share_state() {
        let rec = Recorder::enabled("shared");
        let clone = rec.clone();
        clone.add(Counter::TriplesSeen, 7);
        assert_eq!(rec.counter(Counter::TriplesSeen), 7);
    }

    #[test]
    fn report_renders_and_validates() {
        let rec = Recorder::enabled("render");
        rec.set_meta("n_pois", json::int(100));
        rec.set_meta("n_pois", json::int(200)); // overwrite wins
        {
            let _t = rec.phase(Phase::Sampling);
        }
        rec.record_epoch(EpochRecord::new(0, 0.69, 2.5, 0.01));
        rec.record_eval(EvalRecord {
            label: "test".into(),
            n_pairs: 10,
            macro_f1: 0.8,
            micro_f1: 0.9,
            seconds: 0.01,
            per_class: vec![(5, 0.8), (5, 0.9)],
        });
        let line = rec.render_report().unwrap();
        let summary = validate_report(&line).unwrap();
        assert_eq!(summary.epoch_records, 1);
        assert_eq!(summary.eval_records, 1);
        let v = json::parse(&line).unwrap();
        assert_eq!(v.get("run").unwrap().as_str(), Some("render"));
        assert_eq!(
            v.get("meta").unwrap().get("n_pois").unwrap().as_f64(),
            Some(200.0)
        );
    }

    #[test]
    fn finish_appends_to_sink_and_resets() {
        let dir = std::env::temp_dir().join("prim_obs_recorder_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("finish.jsonl");
        let _ = std::fs::remove_file(&path);
        let rec = Recorder::with_sink("r1", JsonSink::new(&path));
        rec.record_epoch(EpochRecord::new(0, 0.7, 1.0, 0.1));
        assert!(rec.finish().is_some());
        // State cleared: a second finish appends an epoch-less line.
        assert!(rec.epochs().is_empty());
        rec.add(Counter::Steps, 1);
        rec.finish();
        let text = std::fs::read_to_string(&path).unwrap();
        let summary = validate_report(&text).unwrap();
        assert_eq!(summary.lines, 2);
        assert_eq!(summary.runs_with_epochs, 1);
        let _ = std::fs::remove_file(&path);
    }
}
