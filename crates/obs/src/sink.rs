//! Append-only JSON event sink.
//!
//! Run reports are JSON Lines: every completed run (and every bench start
//! marker) appends exactly one self-contained object, written with a single
//! `write_all` on a file opened in append mode so concurrent test processes
//! sharing one `PRIM_RUN_REPORT` path do not interleave records. The file is
//! never rewritten — history across runs and commits accumulates and each
//! line carries its own schema tag ([`crate::SCHEMA`]).

use crate::json::{self, Value};
use std::fs::OpenOptions;
use std::io::Write;
use std::path::{Path, PathBuf};

/// Environment variable naming the run-report path.
pub const RUN_REPORT_ENV: &str = "PRIM_RUN_REPORT";

/// An append-only JSONL sink.
#[derive(Clone, Debug)]
pub struct JsonSink {
    path: PathBuf,
}

impl JsonSink {
    /// A sink writing to `path`.
    pub fn new(path: impl Into<PathBuf>) -> Self {
        JsonSink { path: path.into() }
    }

    /// The sink named by `PRIM_RUN_REPORT`, if set.
    pub fn from_env() -> Option<JsonSink> {
        std::env::var_os(RUN_REPORT_ENV).map(JsonSink::new)
    }

    /// The file this sink appends to.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Appends one JSON object as a single line. Errors are reported to
    /// stderr and swallowed — telemetry must never take down a run.
    pub fn append_line(&self, body: &str) {
        debug_assert!(!body.contains('\n'), "sink lines must be single-line");
        let mut line = String::with_capacity(body.len() + 1);
        line.push_str(body);
        line.push('\n');
        let write = || -> std::io::Result<()> {
            if let Some(dir) = self.path.parent() {
                if !dir.as_os_str().is_empty() {
                    std::fs::create_dir_all(dir)?;
                }
            }
            let mut f = OpenOptions::new()
                .create(true)
                .append(true)
                .open(&self.path)?;
            f.write_all(line.as_bytes())
        };
        if let Err(e) = write() {
            eprintln!(
                "prim-obs: failed to append run report to {}: {e}",
                self.path.display()
            );
        }
    }
}

/// Summary of a validated run-report file.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct ReportSummary {
    /// Total parsed lines.
    pub lines: usize,
    /// Lines with a non-empty `epochs` array (training runs).
    pub runs_with_epochs: usize,
    /// Total epoch records across all runs.
    pub epoch_records: usize,
    /// Total eval records across all runs.
    pub eval_records: usize,
}

/// Parses and validates a run-report file (JSONL).
///
/// Every non-empty line must parse as a JSON object whose `schema` field is
/// [`crate::SCHEMA`]; epoch records must carry finite-or-null `loss`,
/// `grad_norm` and a `phase_ms` object. Returns per-file totals.
pub fn validate_report(text: &str) -> Result<ReportSummary, String> {
    let mut summary = ReportSummary::default();
    for (i, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let v = json::parse(line).map_err(|e| format!("line {}: {e}", i + 1))?;
        let schema = v.get("schema").and_then(Value::as_str);
        if schema != Some(crate::SCHEMA) {
            return Err(format!(
                "line {}: schema tag {:?} != {:?}",
                i + 1,
                schema,
                crate::SCHEMA
            ));
        }
        summary.lines += 1;
        if let Some(epochs) = v.get("epochs").and_then(Value::as_arr) {
            if !epochs.is_empty() {
                summary.runs_with_epochs += 1;
            }
            for (k, e) in epochs.iter().enumerate() {
                for key in ["epoch", "loss", "grad_norm"] {
                    if e.get(key).is_none() {
                        return Err(format!("line {}: epoch record {k} lacks `{key}`", i + 1));
                    }
                }
                if !matches!(e.get("phase_ms"), Some(Value::Obj(_))) {
                    return Err(format!("line {}: epoch record {k} lacks `phase_ms`", i + 1));
                }
                summary.epoch_records += 1;
            }
        }
        if let Some(evals) = v.get("evals").and_then(Value::as_arr) {
            summary.eval_records += evals.len();
        }
    }
    Ok(summary)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn append_and_validate() {
        let dir = std::env::temp_dir().join("prim_obs_sink_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("report.jsonl");
        let _ = std::fs::remove_file(&path);
        let sink = JsonSink::new(&path);
        sink.append_line(&json::obj(&[
            ("schema", json::str(crate::SCHEMA)),
            ("kind", json::str("bench_start")),
        ]));
        sink.append_line(&json::obj(&[
            ("schema", json::str(crate::SCHEMA)),
            ("kind", json::str("run")),
            (
                "epochs",
                json::arr(&[json::obj(&[
                    ("epoch", json::int(0)),
                    ("loss", json::num(0.7)),
                    ("grad_norm", json::num(1.0)),
                    ("phase_ms", json::obj(&[("forward", json::num(1.0))])),
                ])]),
            ),
        ]));
        let text = std::fs::read_to_string(&path).unwrap();
        let summary = validate_report(&text).unwrap();
        assert_eq!(summary.lines, 2);
        assert_eq!(summary.runs_with_epochs, 1);
        assert_eq!(summary.epoch_records, 1);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn validate_rejects_wrong_schema_and_bad_epochs() {
        assert!(validate_report("{\"schema\": \"other/v9\"}").is_err());
        assert!(validate_report("not json").is_err());
        let missing_loss = format!(
            "{{\"schema\": \"{}\", \"epochs\": [{{\"epoch\": 0}}]}}",
            crate::SCHEMA
        );
        assert!(validate_report(&missing_loss).is_err());
    }
}
