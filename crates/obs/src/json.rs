//! Hand-rolled JSON writing and a minimal reader.
//!
//! The writer half (originally grown in `prim-bench` for
//! `BENCH_kernels.json`, now shared from here) renders values verbatim —
//! numbers via [`num`], strings via [`str`] — and maintains section-per-line
//! record files via [`update_section`]. The reader half is a small
//! recursive-descent parser used to validate run reports emitted by the
//! [`crate::Recorder`] sink: CI parses every appended line and checks the
//! schema tag and epoch records without an external JSON dependency.

use std::collections::BTreeMap;
use std::path::Path;

/// Renders an object from `(key, raw-JSON-value)` pairs. Values are
/// inserted verbatim — pass numbers via [`num`] and strings via [`str`].
pub fn obj(pairs: &[(&str, String)]) -> String {
    let body: Vec<String> = pairs.iter().map(|(k, v)| format!("\"{k}\": {v}")).collect();
    format!("{{{}}}", body.join(", "))
}

/// A JSON number with stable formatting.
pub fn num(v: f64) -> String {
    if v.is_finite() {
        format!("{v:.6}")
    } else {
        "null".to_string()
    }
}

/// A JSON integer (no fractional digits, never `null`).
pub fn int(v: u64) -> String {
    format!("{v}")
}

/// A JSON string (escapes quotes, backslashes and control characters).
pub fn str(v: &str) -> String {
    let mut out = String::with_capacity(v.len() + 2);
    out.push('"');
    for c in v.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// An array of raw JSON values.
pub fn arr(items: &[String]) -> String {
    format!("[{}]", items.join(", "))
}

fn parse_sections(text: &str) -> BTreeMap<String, String> {
    // The file is always written by `write_sections` below: one section
    // per line, `  "name": {...}` with an optional trailing comma.
    let mut sections = BTreeMap::new();
    for line in text.lines() {
        let line = line.trim();
        if let Some((head, rest)) = line.split_once(": ") {
            let name = head.trim().trim_matches('"');
            if !name.is_empty() && rest.starts_with('{') {
                sections.insert(name.to_string(), rest.trim_end_matches(',').to_string());
            }
        }
    }
    sections
}

fn write_sections(path: &Path, sections: &BTreeMap<String, String>) {
    let mut out = String::from("{\n");
    let last = sections.len().saturating_sub(1);
    for (i, (name, body)) in sections.iter().enumerate() {
        out.push_str(&format!(
            "  \"{name}\": {body}{}\n",
            if i == last { "" } else { "," }
        ));
    }
    out.push_str("}\n");
    std::fs::write(path, out).unwrap_or_else(|e| panic!("writing {}: {e}", path.display()));
}

/// Inserts or replaces one bench's section (a single-line JSON object)
/// in the record file, preserving every other section.
pub fn update_section(path: &Path, section: &str, body: &str) {
    assert!(!body.contains('\n'), "section body must be a single line");
    let mut sections = std::fs::read_to_string(path)
        .map(|t| parse_sections(&t))
        .unwrap_or_default();
    sections.insert(section.to_string(), body.to_string());
    write_sections(path, &sections);
}

/// A parsed JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (parsed as `f64`).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object, in source order.
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// Object field lookup (`None` for non-objects / missing keys).
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The number inside, if any.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(v) => Some(*v),
            _ => None,
        }
    }

    /// The string inside, if any.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The array inside, if any.
    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(items) => Some(items),
            _ => None,
        }
    }
}

/// Parses one JSON document (rejecting trailing garbage).
pub fn parse(text: &str) -> Result<Value, String> {
    let bytes = text.as_bytes();
    let mut pos = 0usize;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing characters at byte {pos}"));
    }
    Ok(value)
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, c: u8) -> Result<(), String> {
    if *pos < bytes.len() && bytes[*pos] == c {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("expected `{}` at byte {}", c as char, *pos))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Value, String> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err("unexpected end of input".into()),
        Some(b'{') => parse_obj(bytes, pos),
        Some(b'[') => parse_arr(bytes, pos),
        Some(b'"') => Ok(Value::Str(parse_string(bytes, pos)?)),
        Some(b't') => parse_lit(bytes, pos, "true", Value::Bool(true)),
        Some(b'f') => parse_lit(bytes, pos, "false", Value::Bool(false)),
        Some(b'n') => parse_lit(bytes, pos, "null", Value::Null),
        Some(_) => parse_num(bytes, pos),
    }
}

fn parse_lit(bytes: &[u8], pos: &mut usize, lit: &str, value: Value) -> Result<Value, String> {
    if bytes[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(value)
    } else {
        Err(format!("invalid literal at byte {}", *pos))
    }
}

fn parse_num(bytes: &[u8], pos: &mut usize) -> Result<Value, String> {
    let start = *pos;
    while *pos < bytes.len()
        && matches!(bytes[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
    {
        *pos += 1;
    }
    std::str::from_utf8(&bytes[start..*pos])
        .ok()
        .and_then(|s| s.parse::<f64>().ok())
        .map(Value::Num)
        .ok_or_else(|| format!("invalid number at byte {start}"))
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    expect(bytes, pos, b'"')?;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err("unterminated string".into()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .and_then(|h| std::str::from_utf8(h).ok())
                            .ok_or("truncated \\u escape")?;
                        let code =
                            u32::from_str_radix(hex, 16).map_err(|_| "invalid \\u escape")?;
                        // Lone surrogates degrade to the replacement char —
                        // the recorder never emits them.
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    _ => return Err(format!("invalid escape at byte {}", *pos)),
                }
                *pos += 1;
            }
            Some(_) => {
                // Copy one UTF-8 scalar (multi-byte sequences pass through).
                let s = std::str::from_utf8(&bytes[*pos..]).map_err(|e| e.to_string())?;
                let c = s.chars().next().unwrap();
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_arr(bytes: &[u8], pos: &mut usize) -> Result<Value, String> {
    expect(bytes, pos, b'[')?;
    let mut items = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Value::Arr(items));
    }
    loop {
        items.push(parse_value(bytes, pos)?);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Value::Arr(items));
            }
            _ => return Err(format!("expected `,` or `]` at byte {}", *pos)),
        }
    }
}

fn parse_obj(bytes: &[u8], pos: &mut usize) -> Result<Value, String> {
    expect(bytes, pos, b'{')?;
    let mut fields = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Value::Obj(fields));
    }
    loop {
        skip_ws(bytes, pos);
        let key = parse_string(bytes, pos)?;
        skip_ws(bytes, pos);
        expect(bytes, pos, b':')?;
        let value = parse_value(bytes, pos)?;
        fields.push((key, value));
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Value::Obj(fields));
            }
            _ => return Err(format!("expected `,` or `}}` at byte {}", *pos)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn writer_reader_round_trip() {
        let line = obj(&[
            ("schema", str("prim-obs/v1")),
            ("loss", num(0.5)),
            ("steps", int(42)),
            ("tags", arr(&[str("a\"b"), str("c\\d")])),
            ("none", num(f64::NAN)),
        ]);
        let v = parse(&line).unwrap();
        assert_eq!(v.get("schema").unwrap().as_str(), Some("prim-obs/v1"));
        assert_eq!(v.get("loss").unwrap().as_f64(), Some(0.5));
        assert_eq!(v.get("steps").unwrap().as_f64(), Some(42.0));
        let tags = v.get("tags").unwrap().as_arr().unwrap();
        assert_eq!(tags[0].as_str(), Some("a\"b"));
        assert_eq!(tags[1].as_str(), Some("c\\d"));
        assert_eq!(v.get("none"), Some(&Value::Null));
    }

    #[test]
    fn parser_handles_nesting_and_whitespace() {
        let v = parse(" { \"a\" : [ 1 , { \"b\" : true } , null ] } ").unwrap();
        let a = v.get("a").unwrap().as_arr().unwrap();
        assert_eq!(a[0].as_f64(), Some(1.0));
        assert_eq!(a[1].get("b"), Some(&Value::Bool(true)));
        assert_eq!(a[2], Value::Null);
    }

    #[test]
    fn parser_rejects_garbage() {
        assert!(parse("{").is_err());
        assert!(parse("{}extra").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("nul").is_err());
    }

    #[test]
    fn string_escapes_round_trip() {
        let original = "line\nbreak\ttab \"quoted\" back\\slash \u{1} é";
        let v = parse(&str(original)).unwrap();
        assert_eq!(v.as_str(), Some(original));
    }

    #[test]
    fn sections_round_trip() {
        let dir = std::env::temp_dir().join("prim_obs_json_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("bench.json");
        let _ = std::fs::remove_file(&path);

        let a = obj(&[("ms", num(1.5))]);
        update_section(&path, "alpha", &a);
        let b = obj(&[("per_query_ms", num(0.61))]);
        update_section(&path, "beta", &b);
        let a2 = obj(&[("ms", num(2.0))]);
        update_section(&path, "alpha", &a2);

        let text = std::fs::read_to_string(&path).unwrap();
        assert!(text.contains("\"alpha\": {\"ms\": 2.000000}"), "{text}");
        assert!(
            text.contains("\"beta\": {\"per_query_ms\": 0.610000}"),
            "{text}"
        );
        assert!(parse(&text).is_ok(), "section file must itself be JSON");
        let _ = std::fs::remove_file(&path);
    }
}
