//! Offline stand-in for the [`rand`](https://crates.io/crates/rand) crate.
//!
//! The build environment for this workspace has no access to a crates
//! registry, so the small slice of the `rand 0.8` API the workspace actually
//! uses is reimplemented here and wired in as a path dependency:
//!
//! * [`Rng`] — `gen_range` over half-open and inclusive numeric ranges,
//!   `gen_bool`, `gen::<f32/f64>()`;
//! * [`SeedableRng::seed_from_u64`] and [`rngs::StdRng`];
//! * [`seq::SliceRandom`] — `shuffle` and `choose`.
//!
//! The generator behind [`rngs::StdRng`] is xoshiro256++ seeded through
//! SplitMix64 — *not* the ChaCha12 stream of the real crate, so fixed-seed
//! sequences differ from upstream `rand`. Everything in this workspace that
//! consumes randomness is calibrated statistically (distribution shapes,
//! tolerance-based assertions), not against exact upstream streams, so the
//! substitution is observationally equivalent for our purposes while keeping
//! determinism: a given seed always produces the same sequence.

pub mod rngs;
pub mod seq;

/// Low-level generator interface: a source of uniformly random bits.
pub trait RngCore {
    /// Next uniformly random 64-bit value.
    fn next_u64(&mut self) -> u64;

    /// Next uniformly random 32-bit value.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Generators that can be deterministically constructed from a seed.
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed (SplitMix64 expansion).
    fn seed_from_u64(seed: u64) -> Self;
}

/// High-level sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform sample from a half-open (`a..b`) or inclusive (`a..=b`) range.
    ///
    /// # Panics
    /// Panics if the range is empty.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p = {p} out of [0, 1]");
        unit_f64(self.next_u64()) < p
    }

    /// A uniform sample of the full type domain (`f32`/`f64`: `[0, 1)`).
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Types samplable by [`Rng::gen`].
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        unit_f32(rng.next_u64())
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        unit_f64(rng.next_u64())
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Uniform `f64` in `[0, 1)` from 53 random bits.
#[inline]
fn unit_f64(bits: u64) -> f64 {
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Uniform `f32` in `[0, 1)` from 24 random bits.
#[inline]
fn unit_f32(bits: u64) -> f32 {
    (bits >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
}

/// Types uniformly samplable from a range. The blanket
/// `impl SampleRange<T> for Range<T>` below mirrors upstream `rand`'s
/// structure — a single generic impl is what lets the compiler infer the
/// type of untyped float/int literals in `gen_range(-0.1..0.1)` from the
/// surrounding expression.
pub trait SampleUniform: PartialOrd + Copy {
    /// Uniform sample from `[lo, hi)`.
    fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
    /// Uniform sample from `[lo, hi]`.
    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
}

/// Ranges a value of type `T` can be uniformly sampled from.
pub trait SampleRange<T> {
    /// Draws one value from `rng`.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for core::ops::Range<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "gen_range: empty range");
        T::sample_half_open(rng, self.start, self.end)
    }
}

impl<T: SampleUniform> SampleRange<T> for core::ops::RangeInclusive<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = self.into_inner();
        assert!(lo <= hi, "gen_range: empty range");
        T::sample_inclusive(rng, lo, hi)
    }
}

/// Maps a random `u64` into `[0, span)` with the widening-multiply trick
/// (Lemire); bias is < 2⁻⁶⁴·span, irrelevant at our sample counts.
#[inline]
fn below(bits: u64, span: u64) -> u64 {
    ((bits as u128 * span as u128) >> 64) as u64
}

macro_rules! int_uniform_impls {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                let span = hi.wrapping_sub(lo) as u64;
                lo.wrapping_add(below(rng.next_u64(), span) as $t)
            }
            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                let span = hi.wrapping_sub(lo) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add(below(rng.next_u64(), span + 1) as $t)
            }
        }
    )*};
}

int_uniform_impls!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_uniform_impls {
    ($($t:ty, $unit:ident);*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                let u = $unit(rng.next_u64()) as $t;
                let v = lo + u * (hi - lo);
                // Floating rounding can land exactly on `hi`; fold back into
                // the half-open contract.
                if v >= hi { lo } else { v }
            }
            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                lo + $unit(rng.next_u64()) as $t * (hi - lo)
            }
        }
    )*};
}

float_uniform_impls!(f32, unit_f32; f64, unit_f64);

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::StdRng;

    #[test]
    fn seeded_streams_are_deterministic() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        assert_ne!(
            (0..8).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..8).map(|_| b.next_u64()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..2000 {
            let v = rng.gen_range(3usize..17);
            assert!((3..17).contains(&v));
            let f = rng.gen_range(-2.5f32..2.5);
            assert!((-2.5..2.5).contains(&f));
            let i = rng.gen_range(-4i64..=4);
            assert!((-4..=4).contains(&i));
        }
    }

    #[test]
    fn gen_range_covers_the_domain() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut seen = [false; 8];
        for _ in 0..512 {
            seen[rng.gen_range(0usize..8)] = true;
        }
        assert!(
            seen.iter().all(|&s| s),
            "some buckets never sampled: {seen:?}"
        );
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(13);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!(
            (2000..3000).contains(&hits),
            "p=0.25 produced {hits}/10000 hits"
        );
    }

    #[test]
    fn unit_floats_in_range() {
        let mut rng = StdRng::seed_from_u64(17);
        for _ in 0..1000 {
            let f: f64 = rng.gen();
            assert!((0.0..1.0).contains(&f));
            let g: f32 = rng.gen();
            assert!((0.0..1.0).contains(&g));
        }
    }
}
