//! Concrete generators.

use crate::{RngCore, SeedableRng};

/// The workspace's standard generator: xoshiro256++ (Blackman & Vigna),
/// seeded through SplitMix64. Fast, passes BigCrush, and — unlike the real
/// `rand::rngs::StdRng` — fully reproducible from this crate alone.
#[derive(Clone, Debug)]
pub struct StdRng {
    s: [u64; 4],
}

#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E3779B97F4A7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

impl SeedableRng for StdRng {
    fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let mut s = [0u64; 4];
        for slot in s.iter_mut() {
            *slot = splitmix64(&mut sm);
        }
        // xoshiro's all-zero state is absorbing; SplitMix64 cannot produce
        // four zeros from any seed, but guard anyway.
        if s == [0, 0, 0, 0] {
            s[0] = 0x9E3779B97F4A7C15;
        }
        StdRng { s }
    }
}

impl StdRng {
    /// Captures the full generator state. Restoring via
    /// [`StdRng::from_state`] continues the exact output stream, which is
    /// what checkpoint/resume needs for bitwise-identical training.
    pub fn state(&self) -> [u64; 4] {
        self.s
    }

    /// Rebuilds a generator from a captured state.
    pub fn from_state(s: [u64; 4]) -> Self {
        // The all-zero state is xoshiro's absorbing fixed point; it can
        // only arrive here through corrupted checkpoint data, so map it to
        // the same escape value seeding uses.
        if s == [0, 0, 0, 0] {
            return StdRng {
                s: [0x9E3779B97F4A7C15, 0, 0, 0],
            };
        }
        StdRng { s }
    }
}

impl RngCore for StdRng {
    fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }
}
