//! The case runner: deterministic RNG, config, and failure plumbing.

/// Runner configuration (the `with_cases` subset of proptest's).
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of successful cases required for the test to pass.
    pub cases: u32,
    /// Upper bound on `prop_assume!` rejections before giving up.
    pub max_global_rejects: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig {
            cases: 64,
            max_global_rejects: 4096,
        }
    }
}

impl ProptestConfig {
    /// A config running `cases` cases per test.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig {
            cases,
            ..Default::default()
        }
    }
}

/// Why a single case did not succeed.
#[derive(Debug)]
pub enum TestCaseError {
    /// `prop_assume!` was not satisfied: skip the case without failing.
    Reject,
    /// An assertion failed with the given message.
    Fail(String),
}

impl TestCaseError {
    /// Builds the failure variant.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }
}

/// Deterministic generation RNG (SplitMix64). Strategies draw from this.
#[derive(Clone, Debug)]
pub struct TestRng(u64);

impl TestRng {
    /// Seeds the generator.
    pub fn new(seed: u64) -> Self {
        TestRng(seed)
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform `usize` in `[0, n)`; `n` must be positive.
    pub fn below(&mut self, n: usize) -> usize {
        debug_assert!(n > 0);
        ((self.next_u64() as u128 * n as u128) >> 64) as usize
    }
}

/// FNV-1a, used to derive a per-test base seed from the test name so every
/// property test explores its own deterministic sequence.
fn fnv1a(name: &str) -> u64 {
    let mut h = 0xcbf29ce484222325u64;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

/// Runs `f` until `config.cases` cases succeed, panicking on the first
/// failure with enough context to reproduce it.
pub fn run(
    config: &ProptestConfig,
    name: &str,
    mut f: impl FnMut(&mut TestRng) -> Result<(), TestCaseError>,
) {
    let base = fnv1a(name);
    let mut passed = 0u32;
    let mut rejected = 0u32;
    let mut case = 0u64;
    while passed < config.cases {
        let seed = base ^ case.wrapping_mul(0xA24BAED4963EE407);
        let mut rng = TestRng::new(seed);
        match f(&mut rng) {
            Ok(()) => passed += 1,
            Err(TestCaseError::Reject) => {
                rejected += 1;
                assert!(
                    rejected <= config.max_global_rejects,
                    "proptest `{name}`: too many prop_assume! rejections \
                     ({rejected} rejects for {passed} passes)"
                );
            }
            Err(TestCaseError::Fail(msg)) => {
                panic!("proptest `{name}` failed at case {case} (seed {seed:#x}): {msg}");
            }
        }
        case += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn runner_counts_cases() {
        let mut calls = 0;
        run(&ProptestConfig::with_cases(10), "counting", |_| {
            calls += 1;
            Ok(())
        });
        assert_eq!(calls, 10);
    }

    #[test]
    fn rejections_do_not_count_as_passes() {
        let mut total = 0u32;
        run(&ProptestConfig::with_cases(5), "rejecting", |rng| {
            total += 1;
            if rng.next_u64() % 2 == 0 {
                Err(TestCaseError::Reject)
            } else {
                Ok(())
            }
        });
        assert!(total >= 5);
    }

    #[test]
    #[should_panic(expected = "failed at case")]
    fn failures_panic_with_context() {
        run(&ProptestConfig::with_cases(5), "failing", |_| {
            Err(TestCaseError::fail("boom"))
        });
    }

    #[test]
    fn rng_below_is_in_range_and_deterministic() {
        let mut a = TestRng::new(3);
        let mut b = TestRng::new(3);
        for _ in 0..100 {
            let x = a.below(7);
            assert_eq!(x, b.below(7));
            assert!(x < 7);
        }
    }
}
