//! Offline stand-in for the [`proptest`](https://crates.io/crates/proptest)
//! property-testing crate.
//!
//! The build environment has no crates registry, so this crate reimplements
//! the subset of the proptest API the workspace's test suites use:
//!
//! * the [`proptest!`] macro (with `#![proptest_config(..)]` support);
//! * [`strategy::Strategy`] with `prop_map`, implemented for numeric ranges,
//!   tuples, [`strategy::Just`] and [`collection::vec`];
//! * [`prop_assert!`], [`prop_assert_eq!`], [`prop_assert_ne!`] and
//!   [`prop_assume!`];
//! * a deterministic [`test_runner`] (seeded per test name, no shrinking —
//!   failures report the case index and generated seed instead).
//!
//! Determinism is a feature here: CI and local runs explore the same cases,
//! so a red property test reproduces everywhere.

pub mod collection;
pub mod prelude;
pub mod strategy;
pub mod test_runner;

/// Declares property tests.
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///     #[test]
///     fn addition_commutes(a in 0u32..100, b in 0u32..100) {
///         prop_assert_eq!(a + b, b + a);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { @cfg($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { @cfg($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (@cfg($cfg:expr) $( $(#[$meta:meta])* fn $name:ident ( $($arg:ident in $strat:expr),* $(,)? ) $body:block )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config = $cfg;
                $crate::test_runner::run(&__config, stringify!($name), |__rng| {
                    $(let $arg = $crate::strategy::Strategy::generate(&($strat), __rng);)*
                    #[allow(clippy::redundant_closure_call)]
                    (|| -> ::core::result::Result<(), $crate::test_runner::TestCaseError> {
                        $body
                        Ok(())
                    })()
                });
            }
        )*
    };
}

/// Fails the current case with a message unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)*),
            ));
        }
    };
}

/// Fails the current case unless `left == right`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {
        match (&$left, &$right) {
            (__l, __r) => {
                $crate::prop_assert!(
                    *__l == *__r,
                    "assertion failed: `{} == {}` (left: `{:?}`, right: `{:?}`)",
                    stringify!($left), stringify!($right), __l, __r
                );
            }
        }
    };
    ($left:expr, $right:expr, $($fmt:tt)*) => {
        match (&$left, &$right) {
            (__l, __r) => {
                $crate::prop_assert!(*__l == *__r, $($fmt)*);
            }
        }
    };
}

/// Fails the current case unless `left != right`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {
        match (&$left, &$right) {
            (__l, __r) => {
                $crate::prop_assert!(
                    *__l != *__r,
                    "assertion failed: `{} != {}` (both: `{:?}`)",
                    stringify!($left),
                    stringify!($right),
                    __l
                );
            }
        }
    };
}

/// Rejects the current case (does not count as a failure) unless `cond`.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::Reject);
        }
    };
}
