//! Value-generation strategies.

use crate::test_runner::TestRng;

/// Generates values of `Self::Value` from a [`TestRng`].
///
/// Unlike real proptest there is no shrinking: `generate` directly yields
/// the final value for a case.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Regenerates until `f` accepts, up to an attempt cap.
    fn prop_filter<F>(self, whence: &'static str, f: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter {
            inner: self,
            f,
            whence,
        }
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

/// Always generates a clone of one value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_filter`].
pub struct Filter<S, F> {
    inner: S,
    f: F,
    whence: &'static str,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..1024 {
            let v = self.inner.generate(rng);
            if (self.f)(&v) {
                return v;
            }
        }
        panic!(
            "prop_filter `{}` rejected 1024 consecutive values",
            self.whence
        );
    }
}

macro_rules! int_strategies {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "strategy range is empty");
                let span = self.end.wrapping_sub(self.start) as u64;
                let off = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                self.start.wrapping_add(off as $t)
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "strategy range is empty");
                let span = hi.wrapping_sub(lo) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                let off = ((rng.next_u64() as u128 * (span + 1) as u128) >> 64) as u64;
                lo.wrapping_add(off as $t)
            }
        }
    )*};
}

int_strategies!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_strategies {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "strategy range is empty");
                let u = rng.unit_f64() as $t;
                let v = self.start + u * (self.end - self.start);
                if v >= self.end { self.start } else { v }
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "strategy range is empty");
                lo + rng.unit_f64() as $t * (hi - lo)
            }
        }
    )*};
}

float_strategies!(f32, f64);

macro_rules! tuple_strategies {
    ($(($($s:ident . $idx:tt),+);)*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategies! {
    (A.0);
    (A.0, B.1);
    (A.0, B.1, C.2);
    (A.0, B.1, C.2, D.3);
    (A.0, B.1, C.2, D.3, E.4);
    (A.0, B.1, C.2, D.3, E.4, F.5);
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> TestRng {
        TestRng::new(99)
    }

    #[test]
    fn ranges_generate_in_bounds() {
        let mut r = rng();
        for _ in 0..500 {
            assert!((5..9).contains(&(5usize..9).generate(&mut r)));
            let f = (-1.0f32..1.0).generate(&mut r);
            assert!((-1.0..1.0).contains(&f));
        }
    }

    #[test]
    fn map_and_just() {
        let mut r = rng();
        let s = (0u32..10).prop_map(|v| v * 2);
        for _ in 0..100 {
            assert_eq!(s.generate(&mut r) % 2, 0);
        }
        assert_eq!(Just(7i32).generate(&mut r), 7);
    }

    #[test]
    fn tuples_compose() {
        let mut r = rng();
        let (a, b) = ((0u8..4), (10usize..20)).generate(&mut r);
        assert!(a < 4 && (10..20).contains(&b));
    }

    #[test]
    fn filter_retries() {
        let mut r = rng();
        let s = (0u32..100).prop_filter("even", |v| v % 2 == 0);
        for _ in 0..50 {
            assert_eq!(s.generate(&mut r) % 2, 0);
        }
    }
}
