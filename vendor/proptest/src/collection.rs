//! Collection strategies (`prop::collection::vec`).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// A length specification: a fixed size or a half-open range of sizes.
#[derive(Clone, Debug)]
pub struct SizeRange {
    lo: usize,
    hi: usize, // exclusive
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { lo: n, hi: n + 1 }
    }
}

impl From<core::ops::Range<usize>> for SizeRange {
    fn from(r: core::ops::Range<usize>) -> Self {
        assert!(r.start < r.end, "empty vec size range");
        SizeRange {
            lo: r.start,
            hi: r.end,
        }
    }
}

impl From<core::ops::RangeInclusive<usize>> for SizeRange {
    fn from(r: core::ops::RangeInclusive<usize>) -> Self {
        assert!(r.start() <= r.end(), "empty vec size range");
        SizeRange {
            lo: *r.start(),
            hi: *r.end() + 1,
        }
    }
}

/// Strategy producing `Vec`s of values drawn from `element`.
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let span = self.size.hi - self.size.lo;
        let len = if span <= 1 {
            self.size.lo
        } else {
            self.size.lo + rng.below(span)
        };
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

/// `vec(strategy, len)` / `vec(strategy, lo..hi)`: a vector whose elements
/// come from `element` and whose length is drawn from `size`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixed_len() {
        let mut rng = TestRng::new(1);
        let v = vec(0u32..5, 12).generate(&mut rng);
        assert_eq!(v.len(), 12);
        assert!(v.iter().all(|&x| x < 5));
    }

    #[test]
    fn ranged_len() {
        let mut rng = TestRng::new(2);
        for _ in 0..100 {
            let v = vec(0.0f32..1.0, 3..9).generate(&mut rng);
            assert!((3..9).contains(&v.len()));
        }
    }
}
