//! Property-based cross-crate invariants (proptest): metrics bounds,
//! taxonomy metric axioms on *generated* taxonomies, split conservation,
//! spatial-neighbour symmetry, and distance-bin totality.

use prim_data::generator::generate_taxonomy;
use prim_data::{Dataset, Scale, TaxonomyConfig};
use prim_eval::F1Pair;
use prim_geo::DistanceBins;
use prim_graph::{split_edges, CategoryId, SpatialNeighbors};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// F1 metrics are always within [0, 1] for arbitrary predictions.
    #[test]
    fn f1_bounded(preds in prop::collection::vec(0usize..4, 1..200), seed in 0u64..1000) {
        let mut rng = StdRng::seed_from_u64(seed);
        use rand::Rng;
        let actual: Vec<usize> = preds.iter().map(|_| rng.gen_range(0..4)).collect();
        let f1 = F1Pair::compute(&preds, &actual, 4);
        prop_assert!((0.0..=1.0).contains(&f1.macro_f1));
        prop_assert!((0.0..=1.0).contains(&f1.micro_f1));
    }

    /// Taxonomy path distance is a metric on generated taxonomies:
    /// identity, symmetry, triangle inequality, evenness.
    #[test]
    fn taxonomy_path_distance_is_a_metric(seed in 0u64..50, a in 0u32..100, b in 0u32..100, c in 0u32..100) {
        let tax = generate_taxonomy(&TaxonomyConfig {
            n_groups: 3, n_subgroups: 3, n_leaves: 12, seed,
        });
        let t = &tax.taxonomy;
        let n = t.num_categories() as u32;
        let (a, b, c) = (CategoryId(a % n), CategoryId(b % n), CategoryId(c % n));
        prop_assert_eq!(t.path_distance(a, a), 0);
        prop_assert_eq!(t.path_distance(a, b), t.path_distance(b, a));
        prop_assert!(t.path_distance(a, c) <= t.path_distance(a, b) + t.path_distance(b, c));
        // All leaves sit at the same depth, so leaf-to-leaf distances are even.
        prop_assert_eq!(t.path_distance(a, b) % 2, 0);
    }

    /// Edge splits conserve edges and never overlap.
    #[test]
    fn splits_conserve_edges(frac in 0.1f64..0.7, seed in 0u64..100) {
        let ds = Dataset::beijing(Scale::Quick).subsample(0.15, 1);
        let mut rng = StdRng::seed_from_u64(seed);
        let split = split_edges(&ds.graph, frac, &mut rng);
        prop_assert!(split.total() <= ds.graph.num_edges());
        let mut seen = std::collections::HashSet::new();
        for e in split.train.iter().chain(&split.val).chain(&split.test) {
            prop_assert!(seen.insert((e.src, e.dst, e.rel)));
        }
    }

    /// Distance bins are total and monotone: every distance maps to exactly
    /// one bin, and bins never decrease with distance.
    #[test]
    fn distance_bins_total_and_monotone(width in 0.2f64..3.0, count in 1usize..8, d1 in 0.0f64..50.0, d2 in 0.0f64..50.0) {
        let bins = DistanceBins::uniform(width, count);
        let (b1, b2) = (bins.bin(d1), bins.bin(d2));
        prop_assert!(b1 < bins.len() && b2 < bins.len());
        if d1 <= d2 {
            prop_assert!(b1 <= b2);
        }
    }
}

/// Spatial neighbourhood relation is symmetric when no fan-out cap binds:
/// if j ∈ S_i then i ∈ S_j.
#[test]
fn spatial_neighbours_symmetric_without_cap() {
    let ds = Dataset::beijing(Scale::Quick).subsample(0.25, 9);
    let sn = SpatialNeighbors::build(&ds.graph, 1.15, 2.0, usize::MAX);
    let pairs: std::collections::HashSet<(u32, u32)> = sn
        .src()
        .iter()
        .zip(sn.dst().iter())
        .map(|(&s, &d)| (s, d))
        .collect();
    for &(s, d) in &pairs {
        assert!(
            pairs.contains(&(d, s)),
            "asymmetric spatial pair ({s}, {d})"
        );
    }
}

/// RBF weights decrease with distance along each neighbour list.
#[test]
fn rbf_weights_reflect_proximity() {
    let ds = Dataset::beijing(Scale::Quick).subsample(0.25, 10);
    let sn = SpatialNeighbors::build(&ds.graph, 1.15, 2.0, 16);
    // Within each segment, neighbours are sorted nearest-first, so their
    // RBF weights must be non-increasing.
    let mut prev_seg = usize::MAX;
    let mut prev_w = f32::INFINITY;
    for k in 0..sn.num_edges() {
        let seg = sn.segment()[k];
        let w = sn.rbf()[k];
        if seg == prev_seg {
            assert!(w <= prev_w + 1e-6, "RBF weights not sorted within segment");
        }
        prev_seg = seg;
        prev_w = w;
    }
}
