//! Permutation equivariance: relabelling the POIs must permute the model's
//! outputs identically (with node embeddings disabled, nothing in the
//! architecture may depend on POI ids). This is a strong end-to-end
//! correctness check on the gather/segment machinery of every layer.

use prim_core::{ModelInputs, PrimConfig, PrimModel};
use prim_data::{Dataset, Scale};
use prim_graph::{Edge, HeteroGraph, Poi, PoiId};
use prim_tensor::Matrix;

/// Applies a POI permutation to a dataset: `new_id = perm[old_id]`.
fn permute_dataset(ds: &Dataset, perm: &[u32]) -> Dataset {
    let n = ds.graph.num_pois();
    let mut pois: Vec<Poi> = vec![*ds.graph.poi(PoiId(0)); n];
    for old in 0..n {
        pois[perm[old] as usize] = *ds.graph.poi(PoiId(old as u32));
    }
    let mut graph = HeteroGraph::new(pois, ds.graph.num_relations());
    graph.add_edges(ds.graph.edges().iter().map(|e| {
        Edge::new(
            PoiId(perm[e.src.0 as usize]),
            PoiId(perm[e.dst.0 as usize]),
            e.rel,
        )
    }));
    let mut attrs = Matrix::zeros(n, ds.attrs.cols());
    let mut regions = ds.regions.clone();
    let mut context = ds.context.clone();
    for (old, &new) in perm.iter().enumerate() {
        let new = new as usize;
        attrs.row_mut(new).copy_from_slice(ds.attrs.row(old));
        regions[new] = ds.regions[old];
        context[new] = ds.context[old];
    }
    Dataset {
        name: ds.name.clone(),
        graph,
        taxonomy: ds.taxonomy.clone(),
        group_of_category: ds.group_of_category.clone(),
        attrs,
        regions,
        context,
        relation_names: ds.relation_names.clone(),
    }
}

#[test]
fn wrgnn_outputs_are_permutation_equivariant() {
    let ds = Dataset::beijing(Scale::Quick).subsample(0.15, 321);
    let n = ds.graph.num_pois();
    // A deterministic non-trivial permutation: rotate by n/3.
    let shift = n / 3;
    let perm: Vec<u32> = (0..n).map(|i| ((i + shift) % n) as u32).collect();
    let permuted = permute_dataset(&ds, &perm);

    let cfg = PrimConfig {
        dim: 12,
        cat_dim: 6,
        n_layers: 2,
        n_heads: 2,
        ..PrimConfig::quick()
    };
    assert!(
        !cfg.use_node_embeddings,
        "equivariance requires feature-only inputs"
    );
    let inputs_a = ModelInputs::build(
        &ds.graph,
        &ds.taxonomy,
        &ds.attrs,
        ds.graph.edges(),
        None,
        &cfg,
    );
    let inputs_b = ModelInputs::build(
        &permuted.graph,
        &permuted.taxonomy,
        &permuted.attrs,
        permuted.graph.edges(),
        None,
        &cfg,
    );
    // Same config seed → identical parameters (dims are unchanged).
    let model_a = PrimModel::new(cfg.clone(), &inputs_a);
    let model_b = PrimModel::new(cfg, &inputs_b);

    let table_a = model_a.embed(&inputs_a);
    let table_b = model_b.embed(&inputs_b);
    for (old, &new) in perm.iter().enumerate() {
        let new = new as usize;
        let (ra, rb) = (table_a.pois.row(old), table_b.pois.row(new));
        for (x, y) in ra.iter().zip(rb.iter()) {
            assert!(
                (x - y).abs() < 2e-3,
                "representation of POI {old} changed under relabelling: {x} vs {y}"
            );
        }
    }
    // Relation embeddings are id-independent.
    for r in 0..=model_a.phi() {
        for (x, y) in table_a
            .relations
            .row(r)
            .iter()
            .zip(table_b.relations.row(r))
        {
            assert!((x - y).abs() < 2e-3);
        }
    }
}
