//! End-to-end integration tests: dataset generation → task construction →
//! PRIM training → inference → metrics, across the public APIs of every
//! crate in the workspace.

use prim_core::{fit, ModelInputs, PrimConfig, PrimModel, Variant};
use prim_data::{Dataset, Scale};
use prim_eval::transductive_task;

fn small_dataset() -> Dataset {
    Dataset::beijing(Scale::Quick).subsample(0.45, 2024)
}

fn quick_cfg() -> PrimConfig {
    PrimConfig {
        epochs: 50,
        ..PrimConfig::quick()
    }
}

#[test]
fn prim_learns_the_synthetic_city() {
    let dataset = small_dataset();
    let task = transductive_task(&dataset, 0.6, 5);
    let cfg = quick_cfg();
    let inputs = ModelInputs::build(
        &dataset.graph,
        &dataset.taxonomy,
        &dataset.attrs,
        &task.train,
        None,
        &cfg,
    );
    let mut model = PrimModel::new(cfg, &inputs);
    let report = fit(
        &mut model,
        &inputs,
        &dataset.graph,
        &task.train,
        None,
        Some(&task.val),
    );
    assert!(report.losses.iter().all(|l| l.is_finite()));

    let table = model.embed(&inputs);
    let predictions = model.predict_pairs(&table, &inputs, &task.eval_pairs);
    let f1 = task.score(&predictions);
    // Three classes (comp/compl/φ): anything ≥ 0.55 macro demonstrates real
    // learning; the full quick dataset reaches ~0.7.
    assert!(
        f1.macro_f1 > 0.5 && f1.micro_f1 > 0.55,
        "PRIM failed to learn: macro {:.3}, micro {:.3}",
        f1.macro_f1,
        f1.micro_f1
    );
}

#[test]
fn training_is_deterministic_given_seeds() {
    let dataset = small_dataset();
    let task = transductive_task(&dataset, 0.5, 9);
    let cfg = PrimConfig {
        epochs: 8,
        val_check_every: 0,
        ..PrimConfig::quick()
    };
    let inputs = ModelInputs::build(
        &dataset.graph,
        &dataset.taxonomy,
        &dataset.attrs,
        &task.train,
        None,
        &cfg,
    );
    let run = |cfg: PrimConfig| {
        let mut model = PrimModel::new(cfg, &inputs);
        fit(&mut model, &inputs, &dataset.graph, &task.train, None, None);
        let table = model.embed(&inputs);
        model.predict_pairs(&table, &inputs, &task.eval_pairs)
    };
    let a = run(cfg.clone());
    let b = run(cfg);
    assert_eq!(a, b, "identical seeds must give identical predictions");
}

#[test]
fn ablated_variants_run_and_stay_sane() {
    let dataset = small_dataset();
    let task = transductive_task(&dataset, 0.6, 12);
    for variant in Variant::all() {
        let cfg = PrimConfig {
            epochs: 12,
            ..PrimConfig::quick()
        }
        .with_variant(variant);
        let inputs = ModelInputs::build(
            &dataset.graph,
            &dataset.taxonomy,
            &dataset.attrs,
            &task.train,
            None,
            &cfg,
        );
        let mut model = PrimModel::new(cfg, &inputs);
        let report = fit(&mut model, &inputs, &dataset.graph, &task.train, None, None);
        assert!(
            report.final_loss().is_finite() && report.final_loss() < 0.7,
            "variant {} diverged (loss {})",
            variant.name(),
            report.final_loss()
        );
        let table = model.embed(&inputs);
        assert!(
            table.pois.all_finite(),
            "variant {} produced NaNs",
            variant.name()
        );
    }
}

#[test]
fn distance_ablation_changes_predictions() {
    // The -D variant must actually change behaviour, not just skip an op.
    let dataset = small_dataset();
    let task = transductive_task(&dataset, 0.6, 31);
    let mk = |variant| {
        let cfg = PrimConfig {
            epochs: 20,
            ..PrimConfig::quick()
        }
        .with_variant(variant);
        let inputs = ModelInputs::build(
            &dataset.graph,
            &dataset.taxonomy,
            &dataset.attrs,
            &task.train,
            None,
            &cfg,
        );
        let mut model = PrimModel::new(cfg, &inputs);
        fit(&mut model, &inputs, &dataset.graph, &task.train, None, None);
        let table = model.embed(&inputs);
        model.predict_pairs(&table, &inputs, &task.eval_pairs)
    };
    let full = mk(Variant::full());
    let no_d = mk(Variant::from_name("-D"));
    assert_ne!(full, no_d, "removing the distance projection had no effect");
}
