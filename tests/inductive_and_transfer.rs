//! Integration tests for the inductive (unseen POI) protocol and the
//! cross-city transfer used by Tables 4 and 5.

use prim_core::{fit, ModelInputs, PrimConfig, PrimModel};
use prim_data::{Dataset, Scale};
use prim_eval::{inductive_task, transductive_task};

#[test]
fn inductive_training_never_touches_hidden_pois() {
    let dataset = Dataset::beijing(Scale::Quick).subsample(0.4, 501);
    let task = inductive_task(&dataset, 0.2, 3);
    let visible = task.visible.clone().unwrap();

    let cfg = PrimConfig {
        epochs: 10,
        ..PrimConfig::quick()
    };
    let inputs = ModelInputs::build(
        &dataset.graph,
        &dataset.taxonomy,
        &dataset.attrs,
        &task.train,
        Some(&visible),
        &cfg,
    );
    // Spatial graph excludes hidden POIs entirely.
    for &s in inputs.spatial.src() {
        assert!(visible.contains(&prim_graph::PoiId(s)));
    }
    for &d in inputs.spatial.dst() {
        assert!(visible.contains(&prim_graph::PoiId(d)));
    }
    // Adjacency over training edges excludes them too.
    for &s in inputs.adjacency.src() {
        assert!(visible.contains(&prim_graph::PoiId(s)));
    }
}

#[test]
fn unseen_pois_get_useful_predictions() {
    let dataset = Dataset::beijing(Scale::Quick);
    let task = inductive_task(&dataset, 0.2, 4);
    let visible = task.visible.clone().unwrap();

    let cfg = PrimConfig {
        epochs: 60,
        ..PrimConfig::quick()
    };
    let train_inputs = ModelInputs::build(
        &dataset.graph,
        &dataset.taxonomy,
        &dataset.attrs,
        &task.train,
        Some(&visible),
        &cfg,
    );
    let mut model = PrimModel::new(cfg.clone(), &train_inputs);
    fit(
        &mut model,
        &train_inputs,
        &dataset.graph,
        &task.train,
        Some(&visible),
        Some(&task.val),
    );

    // Inference with the full spatial graph restored.
    let infer_inputs = ModelInputs::build(
        &dataset.graph,
        &dataset.taxonomy,
        &dataset.attrs,
        &task.train,
        None,
        &cfg,
    );
    let table = model.embed(&infer_inputs);
    let predictions = model.predict_pairs(&table, &infer_inputs, &task.eval_pairs);
    let f1 = task.score(&predictions);
    assert!(
        f1.micro_f1 > 0.45,
        "inductive inference collapsed: micro {:.3}",
        f1.micro_f1
    );
}

#[test]
fn beijing_model_transfers_to_shanghai() {
    let (bj, sh) = Dataset::city_pair(Scale::Quick);
    // Same taxonomy → same attribute dimensionality → transferable weights.
    assert_eq!(bj.attr_dim(), sh.attr_dim());

    let cfg = PrimConfig {
        epochs: 60,
        ..PrimConfig::quick()
    };
    let bj_task = transductive_task(&bj, 0.6, 21);
    let bj_inputs = ModelInputs::build(
        &bj.graph,
        &bj.taxonomy,
        &bj.attrs,
        &bj_task.train,
        None,
        &cfg,
    );
    let mut model = PrimModel::new(cfg.clone(), &bj_inputs);
    fit(
        &mut model,
        &bj_inputs,
        &bj.graph,
        &bj_task.train,
        None,
        Some(&bj_task.val),
    );

    let sh_task = transductive_task(&sh, 0.6, 22);
    let sh_inputs = ModelInputs::build(
        &sh.graph,
        &sh.taxonomy,
        &sh.attrs,
        &sh_task.train,
        None,
        &cfg,
    );
    let sh_table = model.embed(&sh_inputs);
    let preds = model.predict_pairs(&sh_table, &sh_inputs, &sh_task.eval_pairs);
    let transfer = sh_task.score(&preds);
    assert!(
        transfer.micro_f1 > 0.4,
        "cross-city transfer collapsed: micro {:.3}",
        transfer.micro_f1
    );
}
