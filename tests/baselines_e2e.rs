//! Integration tests for the baseline registry: every method of the
//! paper's comparison runs end-to-end through the shared task pipeline,
//! on both the binary and the six-relation scenarios.

use prim_baselines::{run_method, Method, RunConfig};
use prim_core::Variant;
use prim_data::{Dataset, Scale};
use prim_eval::{transductive_task, Confusion};

fn tiny_cfg() -> RunConfig {
    let mut cfg = RunConfig::quick();
    cfg.prim.epochs = 12;
    cfg.prim.dim = 12;
    cfg.prim.cat_dim = 6;
    cfg.baseline.epochs = 12;
    cfg.baseline.dim = 12;
    cfg.deepwalk.walks_per_node = 4;
    cfg.deepwalk.walk_length = 10;
    cfg.node2vec.walks_per_node = 4;
    cfg.node2vec.walk_length = 10;
    cfg
}

#[test]
fn all_table2_methods_produce_valid_predictions() {
    let dataset = Dataset::beijing(Scale::Quick).subsample(0.2, 77);
    let task = transductive_task(&dataset, 0.5, 6);
    let cfg = tiny_cfg();
    for method in Method::table2() {
        let run = run_method(method, &dataset, &task, &cfg);
        assert_eq!(
            run.predictions.len(),
            task.eval_pairs.len(),
            "{}",
            method.name()
        );
        // Confusion matrix must be constructible (labels in range).
        let c = Confusion::from_predictions(&run.predictions, &task.expected, task.n_classes());
        assert_eq!(c.total(), task.eval_pairs.len());
        assert!(run.train_seconds >= 0.0);
    }
}

#[test]
fn six_relation_scenario_runs_for_gnn_methods() {
    let dataset = Dataset::beijing_six(Scale::Quick).subsample(0.2, 78);
    assert_eq!(dataset.graph.num_relations(), 6);
    let task = transductive_task(&dataset, 0.5, 8);
    assert_eq!(task.n_classes(), 7);
    let cfg = tiny_cfg();
    for method in [
        Method::Hgt,
        Method::CompGcn,
        Method::DeepR,
        Method::Prim(Variant::full()),
    ] {
        let run = run_method(method, &dataset, &task, &cfg);
        assert!(
            run.predictions.iter().all(|&p| p <= 6),
            "{} produced an out-of-range class",
            method.name()
        );
    }
}

#[test]
fn learned_methods_beat_random_guessing() {
    let dataset = Dataset::beijing(Scale::Quick).subsample(0.45, 79);
    let task = transductive_task(&dataset, 0.6, 10);
    let mut cfg = tiny_cfg();
    cfg.prim.epochs = 40;
    cfg.prim.dim = 24;
    cfg.prim.cat_dim = 12;
    cfg.baseline.epochs = 40;
    cfg.baseline.dim = 24;
    // Random over 3 classes ≈ 1/3 micro. Demand clear improvements.
    for method in [Method::Gcn, Method::CompGcn, Method::Prim(Variant::full())] {
        let run = run_method(method, &dataset, &task, &cfg);
        let f1 = task.score(&run.predictions);
        assert!(
            f1.micro_f1 > 0.45,
            "{} barely beats chance: micro {:.3}",
            method.name(),
            f1.micro_f1
        );
    }
}

#[test]
fn rules_are_deterministic_and_fast() {
    let dataset = Dataset::beijing(Scale::Quick).subsample(0.3, 80);
    let task = transductive_task(&dataset, 0.5, 13);
    let cfg = tiny_cfg();
    let a = run_method(Method::CatD, &dataset, &task, &cfg);
    let b = run_method(Method::CatD, &dataset, &task, &cfg);
    assert_eq!(a.predictions, b.predictions);
    assert!(
        a.train_seconds < 5.0,
        "rule fitting too slow: {}s",
        a.train_seconds
    );
}
