//! Smoke test for the `prim` umbrella crate: the prelude must expose a
//! complete, working pipeline.

use prim::prelude::*;

#[test]
fn prelude_covers_the_whole_pipeline() {
    let dataset = Dataset::beijing(Scale::Quick).subsample(0.12, 9);
    let task = transductive_task(&dataset, 0.5, 1);
    let mut cfg = RunConfig::quick();
    cfg.prim.epochs = 6;
    cfg.prim.dim = 12;
    cfg.prim.cat_dim = 6;
    let run = run_method(Method::Prim(Variant::full()), &dataset, &task, &cfg);
    let f1: F1Pair = task.score(&run.predictions);
    assert!(f1.micro_f1 >= 0.0 && f1.micro_f1 <= 1.0);
    // Graph types round-trip through the facade too.
    let e: Edge = dataset.graph.edges()[0];
    assert!(dataset.graph.num_relations() > e.rel.0 as usize);
    let _: &HeteroGraph = &dataset.graph;
    let _: PoiId = e.src;
    let _: RelationId = e.rel;
}

#[test]
fn module_reexports_resolve() {
    // One symbol per re-exported module proves the paths stay valid.
    let _ = prim::tensor::Matrix::zeros(1, 1);
    let _ = prim::nn::ParamStore::new();
    let _ = prim::geo::Location::new(116.0, 40.0);
    let _ = prim::graph::Taxonomy::new("root");
    let _ = prim::eval::Table::new("t", &["a"]);
    let _ = prim::model::PrimConfig::quick();
    let _ = prim::baselines::Method::table2();
    let _ = prim::data::Scale::Quick;
}
