//! # prim — PRIM reproduction meta-crate
//!
//! Umbrella crate for the Rust reproduction of *"Points-of-Interest
//! Relationship Inference with Spatial-enriched Graph Neural Networks"*
//! (VLDB 2021). It re-exports the workspace crates under one roof so
//! downstream users can depend on a single crate:
//!
//! * [`tensor`] — dense matrices + tape-based autodiff with GNN primitives;
//! * [`nn`] — parameter store, initialisers, Adam/SGD, layers;
//! * [`geo`] — distances, bearings, RBF kernel, grid spatial index;
//! * [`graph`] — taxonomy, heterogeneous POI graph, splits, sampling;
//! * [`data`] — calibrated synthetic city datasets (Meituan substitute);
//! * [`model`] — the PRIM model itself (training, inference, ablations);
//! * [`baselines`] — all twelve comparison methods behind one registry;
//! * [`eval`] — Macro/Micro-F1, evaluation tasks, report tables;
//! * [`obs`] — telemetry: phase timers, run reports, NaN/Inf guard rails;
//! * [`serve`] — checkpoint persistence + the online inference engine.
//!
//! See the [README](https://example.com/prim) and `examples/` for usage;
//! `cargo bench -p prim-bench` regenerates the paper's tables and figures.

pub use prim_baselines as baselines;
pub use prim_core as model;
pub use prim_data as data;
pub use prim_eval as eval;
pub use prim_geo as geo;
pub use prim_graph as graph;
pub use prim_nn as nn;
pub use prim_obs as obs;
pub use prim_serve as serve;
pub use prim_tensor as tensor;

/// Convenience prelude importing the types most programs need.
pub mod prelude {
    pub use prim_baselines::{run_method, Method, RunConfig};
    pub use prim_core::{fit, ModelInputs, PrimConfig, PrimModel, Variant};
    pub use prim_data::{Dataset, Scale};
    pub use prim_eval::{inductive_task, sparse_task, transductive_task, F1Pair, Task};
    pub use prim_graph::{Edge, HeteroGraph, PoiId, RelationId};
    pub use prim_obs::{FiniteGuard, Recorder, Telemetry, TrainAbort};
    pub use prim_serve::{
        load_checkpoint, save_checkpoint, EmbeddingStore, EngineOpts, ServeEngine,
    };
}
